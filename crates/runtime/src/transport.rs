//! The real communicator substrate for distributed training: framed,
//! CRC-checked gradient chunks moved over an exchangeable [`Wire`], with
//! membership tracking and retransmission on top.
//!
//! Layers, bottom to top:
//!
//! * [`Frame`] — the wire format (v2): a fixed little-endian header
//!   (magic, protocol version, kind, sender, step/bucket/phase/ring-step
//!   /chunk key, alive mask, failed mask, contributors mask), an `f32`
//!   payload, and a CRC32 trailer computed by the *same*
//!   [`crate::checkpoint::crc32`] that guards checkpoints.
//! * [`Wire`] — "push these bytes toward peer `p`", unreliable by
//!   design. Two real wires live here ([`ChannelWire`] over in-process
//!   `mpsc` channels, [`TcpWire`] over sockets) and
//!   [`crate::fault::FaultyTransport`] wraps any of them to inject the
//!   deterministic fault plans.
//! * [`Router`] — the shared receive side: per-peer frame queues fed by
//!   reader threads, the membership masks, and the retransmit buffer
//!   that services [`FrameKind::Resend`] requests — reliability is
//!   receiver-driven: a receiver that times out or sees a corrupt frame
//!   asks the sender to re-send, which keeps the ring deadlock-free
//!   (nobody ever blocks waiting for an ack).
//! * [`Transport`] — the high-level trait the ring all-reduce
//!   ([`crate::ring`]) drives: framed send, deadline-bounded receive
//!   (with a fail-watch that aborts the wait the instant a watched rank
//!   is declared dead), resend requests, Busy liveness signalling, and
//!   eviction broadcast.
//!
//! Membership is two masks with different laws. `alive` shrinks on both
//! graceful [`FrameKind::Goodbye`] departures and failures; `failed` is
//! a grow-only CRDT set only ever fed by hard evidence — a local
//! eviction, a received [`FrameKind::Evict`], or in-band adoption of the
//! `failed` mask stamped on every data frame (union on receive). Death
//! news therefore rides the data path itself and cannot be confused
//! with a peer that merely finished early and said goodbye. A data
//! frame whose alive mask still includes a rank the receiver knows to
//! have failed is a stale pre-healing frame and is dropped; frames and
//! evictions from senders whose own alive bit is already cleared are
//! discarded outright, so an evicted rank cannot poison the survivors.
//! [`FrameKind::Busy`] frames ("alive, but blocked waiting upstream")
//! let a stalled-but-live chain hold its waiters' patience without
//! resetting anyone's corruption budget. Rejoin within a run is not
//! supported — a worker that lost its seat restarts the job.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::RuntimeError;
use crate::frame::{read_frame, seal, verify, write_frame, FrameIntegrity, CRC_LEN};
use crate::metrics::FaultMetrics;

/// Version stamped into every frame and checked during the handshake.
pub const PROTOCOL_VERSION: u16 = 2;

/// Largest supported world size (the alive mask is a `u32`).
pub const MAX_WORLD: usize = 32;

const MAGIC: u16 = 0x4C54; // "LT"
pub(crate) const HEADER_LEN: usize = 36;
const TRAILER_LEN: usize = CRC_LEN;
/// Sanity cap on frame payloads (64 MiB of gradients per chunk).
const MAX_PAYLOAD: usize = 1 << 26;

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A gradient chunk (reduce-scatter running sum or all-gather copy).
    Data,
    /// "Re-send the frame with my key": receiver-driven retransmission.
    Resend,
    /// "The rank in my `chunk` field is dead": eviction broadcast.
    Evict,
    /// Handshake: `contributors` holds the net fingerprint, `chunk` the
    /// world size.
    Hello,
    /// Graceful leave; receivers drop the sender without counting an
    /// eviction.
    Goodbye,
    /// "I'm alive but blocked waiting upstream": a stuck waiter sends
    /// this to its downstream neighbor each silent deadline, so patient
    /// peers don't evict a live rank whose own upstream stalled. The
    /// true failure detector — the rank adjacent to a dead node — hears
    /// no Busy and evicts at its budget, ending the chain.
    Busy,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Resend => 1,
            FrameKind::Evict => 2,
            FrameKind::Hello => 3,
            FrameKind::Goodbye => 4,
            FrameKind::Busy => 5,
        }
    }

    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            0 => FrameKind::Data,
            1 => FrameKind::Resend,
            2 => FrameKind::Evict,
            3 => FrameKind::Hello,
            4 => FrameKind::Goodbye,
            5 => FrameKind::Busy,
            _ => return None,
        })
    }
}

/// Identifies one ring operation: frames, resend requests, and the
/// retransmit buffer are all keyed by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    /// Training step.
    pub step: u32,
    /// Gradient bucket (backward group) within the step.
    pub bucket: u16,
    /// 0 = reduce-scatter, 1 = all-gather.
    pub phase: u8,
    /// Position in the ring schedule (`0..k-1`).
    pub ring_step: u16,
}

/// A decoded transport frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Sender rank.
    pub from: u16,
    /// Ring-operation key.
    pub key: Key,
    /// Which chunk of the bucket the payload is (also: the victim rank
    /// for [`FrameKind::Evict`], the world size for [`FrameKind::Hello`]).
    pub chunk: u16,
    /// Sender's alive mask at send time.
    pub alive: u32,
    /// Sender's *failed* mask at send time: the in-band channel for
    /// death news. Receivers adopt these bits directly, so graceful
    /// departures (which shrink `alive` but not `failed`) are never
    /// mistaken for failures.
    pub failed: u32,
    /// Ranks whose gradients are folded into the payload (also: the net
    /// fingerprint for [`FrameKind::Hello`]).
    pub contributors: u32,
    /// Gradient values (empty for control frames).
    pub payload: Vec<f32>,
}

/// Why a byte string failed to decode as a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than a header + trailer, or truncated payload.
    Truncated,
    /// Magic bytes wrong.
    BadMagic,
    /// Protocol version mismatch (carries the sender's version).
    BadVersion(u16),
    /// Unknown frame kind.
    BadKind,
    /// CRC32 trailer mismatch: the payload was corrupted in flight.
    BadCrc,
}

impl Frame {
    /// A control frame (no payload).
    pub fn control(kind: FrameKind, from: u16, key: Key, chunk: u16) -> Frame {
        Frame {
            kind,
            from,
            key,
            chunk,
            alive: 0,
            failed: 0,
            contributors: 0,
            payload: Vec::new(),
        }
    }

    /// Serializes to header + payload + CRC32 trailer.
    pub fn encode(&self) -> Vec<u8> {
        let plen = self.payload.len() * 4;
        let mut out = Vec::with_capacity(HEADER_LEN + plen + TRAILER_LEN);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        out.push(self.kind.to_u8());
        out.push(self.key.phase);
        out.extend_from_slice(&self.from.to_le_bytes());
        out.extend_from_slice(&self.key.step.to_le_bytes());
        out.extend_from_slice(&self.key.bucket.to_le_bytes());
        out.extend_from_slice(&self.key.ring_step.to_le_bytes());
        out.extend_from_slice(&self.chunk.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.extend_from_slice(&self.alive.to_le_bytes());
        out.extend_from_slice(&self.failed.to_le_bytes());
        out.extend_from_slice(&self.contributors.to_le_bytes());
        out.extend_from_slice(&(plen as u32).to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);
        for v in &self.payload {
            out.extend_from_slice(&v.to_le_bytes());
        }
        seal(out)
    }

    /// Parses and CRC-verifies an encoded frame.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; [`FrameError::BadCrc`] is the corruption
    /// signal the retransmission path reacts to.
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(FrameError::Truncated);
        }
        let u16_at = |o: usize| u16::from_le_bytes([bytes[o], bytes[o + 1]]);
        let u32_at =
            |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        if u16_at(0) != MAGIC {
            return Err(FrameError::BadMagic);
        }
        let version = u16_at(2);
        if version != PROTOCOL_VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let kind = FrameKind::from_u8(bytes[4]).ok_or(FrameError::BadKind)?;
        let plen = u32_at(32) as usize;
        if plen > MAX_PAYLOAD || !plen.is_multiple_of(4) {
            return Err(FrameError::Truncated);
        }
        if bytes.len() != HEADER_LEN + plen + TRAILER_LEN {
            return Err(FrameError::Truncated);
        }
        verify(bytes).map_err(|e| match e {
            FrameIntegrity::BadCrc => FrameError::BadCrc,
            FrameIntegrity::Truncated => FrameError::Truncated,
        })?;
        let mut payload = Vec::with_capacity(plen / 4);
        for i in 0..plen / 4 {
            let o = HEADER_LEN + 4 * i;
            payload.push(f32::from_le_bytes([
                bytes[o],
                bytes[o + 1],
                bytes[o + 2],
                bytes[o + 3],
            ]));
        }
        Ok(Frame {
            kind,
            from: u16_at(6),
            key: Key {
                step: u32_at(8),
                bucket: u16_at(12),
                phase: bytes[5],
                ring_step: u16_at(14),
            },
            chunk: u16_at(16),
            alive: u32_at(20),
            failed: u32_at(24),
            contributors: u32_at(28),
            payload,
        })
    }

    /// Reads just the header of an encoded frame, without CRC
    /// verification — used by the fault injector to key injections by
    /// `(sender, step, bucket)` without paying a full decode.
    pub fn peek(bytes: &[u8]) -> Option<PeekedFrame> {
        if bytes.len() < HEADER_LEN {
            return None;
        }
        let u16_at = |o: usize| u16::from_le_bytes([bytes[o], bytes[o + 1]]);
        let u32_at =
            |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        if u16_at(0) != MAGIC {
            return None;
        }
        Some(PeekedFrame {
            kind: FrameKind::from_u8(bytes[4])?,
            from: u16_at(6),
            key: Key {
                step: u32_at(8),
                bucket: u16_at(12),
                phase: bytes[5],
                ring_step: u16_at(14),
            },
            payload_len: u32_at(32) as usize,
        })
    }
}

/// Header fields surfaced by [`Frame::peek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeekedFrame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Sender rank.
    pub from: u16,
    /// Ring-operation key.
    pub key: Key,
    /// Payload length in bytes.
    pub payload_len: usize,
}

/// Flips one payload bit of an encoded [`FrameKind::Data`] frame in
/// place (no-op for control frames or payload-free frames). The CRC
/// trailer is left alone, so the receiver's decode fails — this is how
/// [`crate::fault::Fault::TransferCorrupt`] reaches the real wire.
pub fn corrupt_payload(bytes: &mut [u8]) -> bool {
    match Frame::peek(bytes) {
        Some(p) if p.kind == FrameKind::Data && p.payload_len > 0 => {
            let at = HEADER_LEN + p.payload_len / 2;
            if at < bytes.len() {
                bytes[at] ^= 0x10;
                true
            } else {
                false
            }
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A transport-level failure. Retryable variants (timeout, corruption)
/// are absorbed by the ring layer's retry/eviction policy; terminal ones
/// surface as [`RuntimeError::Transport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The per-op deadline expired with nothing delivered.
    Timeout {
        /// Peer being waited on.
        peer: usize,
    },
    /// The peer is marked dead in the alive mask.
    PeerDead {
        /// The dead peer.
        peer: usize,
    },
    /// The link to the peer broke (connection reset / channel closed).
    Disconnected {
        /// The unreachable peer.
        peer: usize,
    },
    /// Handshake rejected (version or fingerprint mismatch, bad rank).
    Handshake {
        /// Why.
        detail: String,
    },
    /// The requested world exceeds the transport's membership-mask
    /// capacity: alive/failed masks are a single `u32` word, so one
    /// group supports at most [`MAX_WORLD`] ranks. A rank ≥ 32 would
    /// silently corrupt mask arithmetic, so group construction refuses
    /// it up front (scaling beyond this needs wider masks or
    /// hierarchical rings — see DESIGN.md §12).
    TooManyRanks {
        /// The requested world size.
        world: usize,
        /// The supported maximum ([`MAX_WORLD`]).
        max: usize,
    },
    /// Socket-level failure outside a particular peer conversation.
    Io {
        /// Why.
        detail: String,
    },
    /// A rank in the receiver's fail-watch mask was declared failed
    /// while the receive was blocked — the ring must heal before the
    /// wait can meaningfully continue.
    DeathNotice,
    /// The endpoint was shut down.
    Closed,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Timeout { peer } => write!(f, "deadline expired waiting on peer {peer}"),
            TransportError::PeerDead { peer } => write!(f, "peer {peer} is dead"),
            TransportError::Disconnected { peer } => write!(f, "link to peer {peer} is down"),
            TransportError::Handshake { detail } => write!(f, "handshake rejected: {detail}"),
            TransportError::TooManyRanks { world, max } => write!(
                f,
                "world of {world} exceeds the {max}-rank membership-mask capacity"
            ),
            TransportError::Io { detail } => write!(f, "transport i/o: {detail}"),
            TransportError::DeathNotice => write!(f, "a watched peer failed mid-receive"),
            TransportError::Closed => write!(f, "endpoint closed"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<TransportError> for RuntimeError {
    fn from(e: TransportError) -> Self {
        RuntimeError::Transport {
            detail: e.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire
// ---------------------------------------------------------------------------

/// The lowest layer: push encoded bytes toward a peer. Implementations
/// are free to lose, delay, or corrupt them ([`crate::fault::FaultyTransport`]
/// does so on purpose); reliability lives above, in the resend protocol.
pub trait Wire: Send + Sync + 'static {
    /// Attempts to move `bytes` to peer `to`. An `Ok` return means the
    /// bytes were accepted for delivery, not that they arrived.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when the link is known down.
    fn send(&self, to: usize, bytes: Vec<u8>) -> Result<(), TransportError>;

    /// Tears down the wire's links so reader threads blocked on it can
    /// exit. Called from [`Endpoint`]'s drop; wrappers must forward it.
    fn close(&self) {}
}

// ---------------------------------------------------------------------------
// Router: shared receive side
// ---------------------------------------------------------------------------

/// What a deadline-bounded receive yields.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivery {
    /// A verified frame.
    Frame(Frame),
    /// Bytes arrived but failed CRC/decode — the caller should request a
    /// resend (this is the corruption-is-retryable path).
    Corrupt,
}

struct RouterState {
    alive: u32,
    /// Ranks declared dead by *failure* (eviction or in-band death
    /// adoption) — a subset of the cleared `alive` bits. A graceful
    /// Goodbye clears `alive` but not this: the leaver's already-queued
    /// frames stay valid and nobody restarts a bucket over it.
    failed: u32,
    queues: Vec<VecDeque<Delivery>>,
    link_down: Vec<bool>,
    /// Encoded frames we sent, for servicing resend requests. Pruned to
    /// the two most recent steps.
    sent: HashMap<(usize, Key), Vec<u8>>,
    closed: bool,
}

struct RouterInner {
    rank: usize,
    world: usize,
    state: Mutex<RouterState>,
    cv: Condvar,
    metrics: Arc<FaultMetrics>,
}

/// The shared receive side of an endpoint: per-peer queues, the alive
/// mask, and the retransmit buffer. Reader threads push into it via
/// [`Router::deliver`]; the ring layer pulls via [`Router::recv`].
#[derive(Clone)]
pub struct Router {
    inner: Arc<RouterInner>,
}

fn full_mask(world: usize) -> u32 {
    debug_assert!(world <= MAX_WORLD, "world {world} exceeds the mask capacity");
    if world >= 32 {
        u32::MAX
    } else {
        (1u32 << world) - 1
    }
}

impl Router {
    /// A router for `rank` in a world of `world` ranks, all initially
    /// alive.
    ///
    /// # Errors
    ///
    /// [`TransportError::TooManyRanks`] when `world` exceeds
    /// [`MAX_WORLD`] (the `u32` membership masks hold at most 32 ranks);
    /// [`TransportError::Handshake`] for other degenerate geometry
    /// (world `0`, or `rank` out of range).
    pub fn new(
        rank: usize,
        world: usize,
        metrics: Arc<FaultMetrics>,
    ) -> Result<Router, TransportError> {
        if world > MAX_WORLD {
            return Err(TransportError::TooManyRanks { world, max: MAX_WORLD });
        }
        if world == 0 || rank >= world {
            return Err(TransportError::Handshake {
                detail: format!("bad geometry: rank {rank} of world {world} (max {MAX_WORLD})"),
            });
        }
        Ok(Router {
            inner: Arc::new(RouterInner {
                rank,
                world,
                state: Mutex::new(RouterState {
                    alive: full_mask(world),
                    failed: 0,
                    queues: (0..world).map(|_| VecDeque::new()).collect(),
                    link_down: vec![false; world],
                    sent: HashMap::new(),
                    closed: false,
                }),
                cv: Condvar::new(),
                metrics,
            }),
        })
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.inner.rank
    }

    /// The configured world size.
    pub fn world(&self) -> usize {
        self.inner.world
    }

    /// Current alive mask (bit `r` set = rank `r` believed alive).
    pub fn alive_mask(&self) -> u32 {
        self.inner.state.lock().unwrap().alive
    }

    /// Ranks declared dead by failure (bit set = failed). Gracefully
    /// departed ranks are absent from [`Router::alive_mask`] but not
    /// set here.
    pub fn failed_mask(&self) -> u32 {
        self.inner.state.lock().unwrap().failed
    }

    /// The shared fault counters.
    pub fn metrics(&self) -> &Arc<FaultMetrics> {
        &self.inner.metrics
    }

    /// Blocks until a rank in `mask` is declared failed or `deadline`
    /// passes; returns whether one failed. Consumes nothing from the
    /// delivery queues — safe to call between operations.
    pub fn wait_failure(&self, mask: u32, deadline: Instant) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.failed & mask != 0 {
                return true;
            }
            if st.closed {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.inner.cv.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Marks a peer dead locally. Returns whether the mask changed;
    /// counts `peers_evicted` when `counted`.
    fn mark_dead(&self, peer: usize, counted: bool) -> bool {
        let bit = 1u32 << peer;
        let mut st = self.inner.state.lock().unwrap();
        if st.alive & bit == 0 {
            return false;
        }
        st.alive &= !bit;
        if counted {
            st.failed |= bit;
        }
        drop(st);
        if counted {
            FaultMetrics::bump(&self.inner.metrics.peers_evicted);
            FaultMetrics::bump(&self.inner.metrics.nodes_failed);
        }
        self.inner.cv.notify_all();
        true
    }

    /// Marks the link to `peer` down (reader thread hit EOF/error) so
    /// blocked receivers fail fast instead of waiting out the deadline.
    pub fn mark_link_down(&self, peer: usize) {
        let mut st = self.inner.state.lock().unwrap();
        st.link_down[peer] = true;
        drop(st);
        self.inner.cv.notify_all();
    }

    /// Clears the link-down flag after a successful reconnect.
    pub fn mark_link_up(&self, peer: usize) {
        self.inner.state.lock().unwrap().link_down[peer] = false;
    }

    /// Remembers an encoded data frame for resend servicing and prunes
    /// entries older than the previous step.
    fn note_sent(&self, to: usize, key: Key, bytes: Vec<u8>) {
        let mut st = self.inner.state.lock().unwrap();
        let floor = key.step.saturating_sub(1);
        st.sent.retain(|(_, k), _| k.step >= floor);
        st.sent.insert((to, key), bytes);
    }

    /// Ingests raw bytes read off the wire from `from`. Reader threads
    /// call this; `wire` is borrowed to service resend requests.
    pub fn deliver(&self, from: usize, bytes: &[u8], wire: &dyn Wire) {
        let frame = match Frame::decode(bytes) {
            Ok(f) => f,
            Err(_) => {
                FaultMetrics::bump(&self.inner.metrics.transfers_corrupted);
                let mut st = self.inner.state.lock().unwrap();
                st.queues[from].push_back(Delivery::Corrupt);
                drop(st);
                self.inner.cv.notify_all();
                return;
            }
        };
        match frame.kind {
            FrameKind::Data => {
                let mut st = self.inner.state.lock().unwrap();
                if st.alive & (1u32 << from) == 0 {
                    // A peer we already consider gone has no say: its
                    // frames (and the mask they carry) are void.
                    return;
                }
                let news = frame.failed & st.alive;
                if news != 0 {
                    // The sender knows about *failures* we haven't seen:
                    // adopt them (grow-only CRDT merge on the failed
                    // mask). The alive mask alone can't carry this news —
                    // it also shrinks on graceful departures, which must
                    // never be mistaken for deaths.
                    let removed = news.count_ones() as u64;
                    st.failed |= news;
                    st.alive &= !news;
                    drop(st);
                    for _ in 0..removed {
                        FaultMetrics::bump(&self.inner.metrics.peers_evicted);
                        FaultMetrics::bump(&self.inner.metrics.nodes_failed);
                    }
                    st = self.inner.state.lock().unwrap();
                }
                if frame.alive & st.failed != 0 {
                    // The sender believes someone we know *failed* is
                    // alive: a stale pre-healing frame. Drop it; the
                    // sender converges via the Evict broadcast / its
                    // timeouts. (A mask still naming a gracefully
                    // departed peer is fine — departure doesn't restart
                    // buckets.)
                    drop(st);
                    self.inner.cv.notify_all();
                    return;
                }
                st.queues[from].push_back(Delivery::Frame(frame));
                drop(st);
                self.inner.cv.notify_all();
            }
            FrameKind::Resend => {
                let buf = {
                    let st = self.inner.state.lock().unwrap();
                    st.sent.get(&(from, frame.key)).cloned()
                };
                if let Some(b) = buf {
                    FaultMetrics::bump(&self.inner.metrics.send_retries);
                    let _ = wire.send(from, b);
                }
                // A miss means the frame predates our retransmit window;
                // the requester escalates (evicts us or gives up) on its
                // own clock.
            }
            FrameKind::Evict => {
                // Only live peers may evict others — an evicted rank
                // wrongly evicting the survivors it can no longer hear
                // must not cascade through the healed ring.
                if self.inner.state.lock().unwrap().alive & (1u32 << from) == 0 {
                    return;
                }
                let victim = frame.chunk as usize;
                if victim < self.inner.world {
                    self.mark_dead(victim, true);
                }
            }
            FrameKind::Goodbye => {
                self.mark_dead(from, false);
            }
            FrameKind::Busy => {
                // A pure liveness signal: queue it so a blocked receiver
                // restarts its patience window (its mask is ignored — a
                // laggard's view of the ring may be stale).
                let mut st = self.inner.state.lock().unwrap();
                if st.alive & (1u32 << from) != 0 {
                    st.queues[from].push_back(Delivery::Frame(frame));
                }
                drop(st);
                self.inner.cv.notify_all();
            }
            FrameKind::Hello => {
                // Handshakes are consumed before reader threads start;
                // a stray Hello is harmless.
            }
        }
    }

    /// Pops the next delivery from `from`, waiting until `deadline`.
    /// `fail_watch` is a rank mask: if any of those ranks is declared
    /// failed while the wait blocks, the call aborts immediately with
    /// [`TransportError::DeathNotice`] instead of sitting out the
    /// deadline — healing must not wait on a timeout.
    ///
    /// # Errors
    ///
    /// [`TransportError::PeerDead`] when the mask says so,
    /// [`TransportError::Disconnected`] when the link broke with nothing
    /// queued, [`TransportError::Timeout`] at the deadline,
    /// [`TransportError::DeathNotice`] on watched-rank failure, and
    /// [`TransportError::Closed`] after shutdown.
    pub fn recv(
        &self,
        from: usize,
        deadline: Instant,
        fail_watch: u32,
    ) -> Result<Delivery, TransportError> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(TransportError::Closed);
            }
            if st.failed & fail_watch != 0 {
                return Err(TransportError::DeathNotice);
            }
            if let Some(d) = st.queues[from].pop_front() {
                return Ok(d);
            }
            if st.alive & (1 << from) == 0 {
                return Err(TransportError::PeerDead { peer: from });
            }
            if st.link_down[from] {
                return Err(TransportError::Disconnected { peer: from });
            }
            let now = Instant::now();
            if now >= deadline {
                FaultMetrics::bump(&self.inner.metrics.timeouts);
                return Err(TransportError::Timeout { peer: from });
            }
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap();
            st = guard;
        }
    }

    fn close(&self) {
        self.inner.state.lock().unwrap().closed = true;
        self.inner.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Transport: the high-level trait
// ---------------------------------------------------------------------------

/// The communicator handle the ring all-reduce drives. Implemented by
/// [`Endpoint`] over any [`Wire`].
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;
    /// Configured world size.
    fn world(&self) -> usize;
    /// Current alive mask.
    fn alive_mask(&self) -> u32;
    /// Ranks declared dead by failure (eviction / adopted deaths);
    /// excludes graceful departures.
    fn failed_mask(&self) -> u32;
    /// The endpoint's fault counters.
    fn metrics(&self) -> &Arc<FaultMetrics>;
    /// Declares `peer` dead: shrinks the local mask, counts the
    /// eviction, and broadcasts [`FrameKind::Evict`] to the survivors.
    /// Returns whether the mask changed.
    fn evict(&self, peer: usize) -> bool;
    /// Sends a data frame (stamping `from` and the current alive mask)
    /// and retains it for resend servicing.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when the link is down.
    fn send_data(&self, to: usize, frame: Frame) -> Result<(), TransportError>;
    /// Asks `from` to re-send the frame with `key`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when the link is down.
    fn request_resend(&self, from: usize, key: Key) -> Result<(), TransportError>;
    /// Waits for the next delivery from `from` until `deadline`,
    /// aborting early with [`TransportError::DeathNotice`] if a rank in
    /// `fail_watch` is declared failed meanwhile.
    ///
    /// # Errors
    ///
    /// See [`Router::recv`].
    fn recv(
        &self,
        from: usize,
        deadline: Instant,
        fail_watch: u32,
    ) -> Result<Delivery, TransportError>;
    /// Tells `to` "I'm alive but blocked waiting upstream" (best
    /// effort, fire-and-forget): lets a patient downstream neighbor
    /// extend its timeout instead of counting silence as our death.
    fn send_busy(&self, to: usize, key: Key);
    /// Blocks until a rank in `mask` is declared failed or `deadline`
    /// passes; returns whether one failed. Consumes no deliveries.
    fn wait_failure(&self, mask: u32, deadline: Instant) -> bool;
    /// Announces a graceful leave to all live peers (best effort).
    fn goodbye(&self);
}

/// A [`Transport`] built from a [`Router`] and a [`Wire`].
pub struct Endpoint<W: Wire> {
    router: Router,
    wire: Arc<W>,
}

impl<W: Wire> Endpoint<W> {
    /// Assembles an endpoint; reader threads feeding `router` are the
    /// constructor's (e.g. [`channel_group_with`]'s) responsibility.
    pub fn new(router: Router, wire: Arc<W>) -> Endpoint<W> {
        Endpoint { router, wire }
    }

    /// The underlying wire (used by tests and the worker binary).
    pub fn wire(&self) -> &Arc<W> {
        &self.wire
    }

    /// The shared router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    fn live_peers(&self) -> Vec<usize> {
        let mask = self.router.alive_mask();
        (0..self.router.world())
            .filter(|&r| r != self.router.rank() && mask & (1 << r) != 0)
            .collect()
    }
}

impl<W: Wire> Transport for Endpoint<W> {
    fn rank(&self) -> usize {
        self.router.rank()
    }

    fn world(&self) -> usize {
        self.router.world()
    }

    fn alive_mask(&self) -> u32 {
        self.router.alive_mask()
    }

    fn failed_mask(&self) -> u32 {
        self.router.failed_mask()
    }

    fn metrics(&self) -> &Arc<FaultMetrics> {
        self.router.metrics()
    }

    fn evict(&self, peer: usize) -> bool {
        if !self.router.mark_dead(peer, true) {
            return false;
        }
        let key = Key {
            step: 0,
            bucket: 0,
            phase: 0,
            ring_step: 0,
        };
        for p in self.live_peers() {
            let mut f = Frame::control(FrameKind::Evict, self.router.rank() as u16, key, peer as u16);
            f.alive = self.router.alive_mask();
            f.failed = self.router.failed_mask();
            let _ = self.wire.send(p, f.encode());
        }
        true
    }

    fn send_data(&self, to: usize, mut frame: Frame) -> Result<(), TransportError> {
        frame.kind = FrameKind::Data;
        frame.from = self.router.rank() as u16;
        frame.alive = self.router.alive_mask();
        frame.failed = self.router.failed_mask();
        let bytes = frame.encode();
        self.router.note_sent(to, frame.key, bytes.clone());
        self.wire.send(to, bytes)
    }

    fn request_resend(&self, from: usize, key: Key) -> Result<(), TransportError> {
        let mut f = Frame::control(FrameKind::Resend, self.router.rank() as u16, key, 0);
        f.alive = self.router.alive_mask();
        self.wire.send(from, f.encode())
    }

    fn recv(
        &self,
        from: usize,
        deadline: Instant,
        fail_watch: u32,
    ) -> Result<Delivery, TransportError> {
        self.router.recv(from, deadline, fail_watch)
    }

    fn send_busy(&self, to: usize, key: Key) {
        let mut f = Frame::control(FrameKind::Busy, self.router.rank() as u16, key, 0);
        f.alive = self.router.alive_mask();
        f.failed = self.router.failed_mask();
        let _ = self.wire.send(to, f.encode());
    }

    fn wait_failure(&self, mask: u32, deadline: Instant) -> bool {
        self.router.wait_failure(mask, deadline)
    }

    fn goodbye(&self) {
        let key = Key {
            step: u32::MAX,
            bucket: 0,
            phase: 0,
            ring_step: 0,
        };
        for p in self.live_peers() {
            let f = Frame::control(FrameKind::Goodbye, self.router.rank() as u16, key, 0);
            let _ = self.wire.send(p, f.encode());
        }
        self.router.close();
    }
}

// ---------------------------------------------------------------------------
// Channel wire: deterministic in-process transport
// ---------------------------------------------------------------------------

/// One take-able sender per peer: taken on eviction/goodbye so later
/// sends fail fast instead of queueing into a dead endpoint.
type PeerSenders = Vec<Mutex<Option<mpsc::Sender<(usize, Vec<u8>)>>>>;

/// In-process wire: one `mpsc` channel per receiving endpoint, FIFO and
/// lossless (until wrapped by [`crate::fault::FaultyTransport`]).
pub struct ChannelWire {
    rank: usize,
    peers: PeerSenders,
}

impl Wire for ChannelWire {
    fn send(&self, to: usize, bytes: Vec<u8>) -> Result<(), TransportError> {
        let slot = self
            .peers
            .get(to)
            .ok_or(TransportError::Disconnected { peer: to })?;
        let guard = slot.lock().unwrap();
        match guard.as_ref() {
            Some(tx) => tx
                .send((self.rank, bytes))
                .map_err(|_| TransportError::Disconnected { peer: to }),
            None => Err(TransportError::Disconnected { peer: to }),
        }
    }

    fn close(&self) {
        // Dropping the senders lets every peer's reader thread observe a
        // channel disconnect and exit (threads hold `Arc<ChannelWire>`,
        // so this cannot wait for `Drop`).
        for slot in &self.peers {
            slot.lock().unwrap().take();
        }
    }
}

/// Builds a fully-connected in-process group of `world` endpoints, each
/// with its own [`FaultMetrics`], wrapping each rank's raw
/// [`ChannelWire`] through `wrap` (identity for a clean group, a
/// [`crate::fault::FaultyTransport`] constructor for fault testing).
///
/// # Errors
///
/// [`TransportError::TooManyRanks`] for a world over [`MAX_WORLD`];
/// [`TransportError::Handshake`] for a degenerate world size.
pub fn channel_group_with<W: Wire>(
    world: usize,
    mut wrap: impl FnMut(usize, ChannelWire) -> W,
) -> Result<Vec<Endpoint<W>>, TransportError> {
    let mut txs = Vec::with_capacity(world);
    let mut rxs = Vec::with_capacity(world);
    for _ in 0..world {
        let (tx, rx) = mpsc::channel::<(usize, Vec<u8>)>();
        txs.push(tx);
        rxs.push(rx);
    }
    let mut out = Vec::with_capacity(world);
    for (rank, rx) in rxs.into_iter().enumerate() {
        let peers = txs
            .iter()
            .enumerate()
            .map(|(r, tx)| Mutex::new((r != rank).then(|| tx.clone())))
            .collect();
        let wire = Arc::new(wrap(rank, ChannelWire { rank, peers }));
        let metrics = Arc::new(FaultMetrics::new());
        let router = Router::new(rank, world, metrics)?;
        let r2 = router.clone();
        let w2 = Arc::clone(&wire);
        std::thread::Builder::new()
            .name(format!("latte-chan-rx-{rank}"))
            .spawn(move || {
                while let Ok((from, bytes)) = rx.recv() {
                    r2.deliver(from, &bytes, w2.as_ref());
                }
            })
            .expect("spawn channel reader");
        out.push(Endpoint::new(router, wire));
    }
    Ok(out)
}

/// [`channel_group_with`] with the identity wrap: a clean, lossless
/// in-process group.
///
/// # Errors
///
/// [`TransportError::TooManyRanks`] for a world over [`MAX_WORLD`];
/// [`TransportError::Handshake`] for a degenerate world size.
pub fn channel_group(world: usize) -> Result<Vec<Endpoint<ChannelWire>>, TransportError> {
    channel_group_with(world, |_, w| w)
}

// ---------------------------------------------------------------------------
// TCP wire: multi-process transport
// ---------------------------------------------------------------------------

/// TCP transport configuration for [`tcp_rendezvous`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This process's rank (index into `addrs`).
    pub rank: usize,
    /// One `host:port` per rank; rank `r` listens on `addrs[r]`.
    pub addrs: Vec<String>,
    /// Net fingerprint every peer must match (see
    /// [`crate::dist::net_fingerprint`]).
    pub fingerprint: u32,
    /// How long rendezvous may take before giving up.
    pub rendezvous_timeout: Duration,
    /// Reconnect attempts a reader makes after a broken link before
    /// declaring the peer unreachable.
    pub reconnect_attempts: u32,
    /// Pause between reconnect attempts.
    pub reconnect_backoff: Duration,
}

impl TcpConfig {
    /// A config with default timeouts (10 s rendezvous, 2 reconnect
    /// attempts 50 ms apart).
    pub fn new(rank: usize, addrs: Vec<String>, fingerprint: u32) -> TcpConfig {
        TcpConfig {
            rank,
            addrs,
            fingerprint,
            rendezvous_timeout: Duration::from_secs(10),
            reconnect_attempts: 2,
            reconnect_backoff: Duration::from_millis(50),
        }
    }
}

struct TcpPeerSlot {
    stream: Mutex<Option<TcpStream>>,
}

/// Socket wire: one TCP connection per peer, length-prefixed frames,
/// per-peer write locks. Lower ranks accept, higher ranks dial (and
/// redial on a broken link); the handshake checks protocol version and
/// net fingerprint in both directions.
pub struct TcpWire {
    peers: Vec<TcpPeerSlot>,
    closing: AtomicBool,
    own_addr: String,
}

impl TcpWire {
    fn install(&self, peer: usize, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        *self.peers[peer].stream.lock().unwrap() = Some(stream);
    }

    fn drop_stream(&self, peer: usize) {
        *self.peers[peer].stream.lock().unwrap() = None;
    }
}

fn write_wire_frame(stream: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    write_frame(stream, bytes)
}

fn read_wire_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    read_frame(stream, HEADER_LEN + MAX_PAYLOAD + TRAILER_LEN)
}

fn hello_frame(rank: usize, world: usize, fingerprint: u32) -> Vec<u8> {
    let mut f = Frame::control(
        FrameKind::Hello,
        rank as u16,
        Key {
            step: 0,
            bucket: 0,
            phase: 0,
            ring_step: 0,
        },
        world as u16,
    );
    f.contributors = fingerprint;
    f.alive = full_mask(world);
    f.encode()
}

/// Validates a peer's hello; returns its rank.
fn check_hello(bytes: &[u8], world: usize, fingerprint: u32) -> Result<usize, TransportError> {
    let f = Frame::decode(bytes).map_err(|e| TransportError::Handshake {
        detail: match e {
            FrameError::BadVersion(v) => {
                format!("protocol version mismatch: peer speaks v{v}, we speak v{PROTOCOL_VERSION}")
            }
            other => format!("undecodable hello: {other:?}"),
        },
    })?;
    if f.kind != FrameKind::Hello {
        return Err(TransportError::Handshake {
            detail: format!("expected hello, got {:?}", f.kind),
        });
    }
    if f.chunk as usize != world {
        return Err(TransportError::Handshake {
            detail: format!("world mismatch: peer says {}, we say {world}", f.chunk),
        });
    }
    if f.contributors != fingerprint {
        return Err(TransportError::Handshake {
            detail: format!(
                "net fingerprint mismatch: peer {:08x}, ours {fingerprint:08x} — refusing to \
                 average gradients across different programs",
                f.contributors
            ),
        });
    }
    let rank = f.from as usize;
    if rank >= world {
        return Err(TransportError::Handshake {
            detail: format!("peer rank {rank} out of range"),
        });
    }
    Ok(rank)
}

fn spawn_tcp_reader(router: Router, wire: Arc<TcpWire>, peer: usize, cfg: TcpConfig) {
    let mut stream = {
        let guard = wire.peers[peer].stream.lock().unwrap();
        guard.as_ref().and_then(|s| s.try_clone().ok())
    };
    std::thread::Builder::new()
        .name(format!("latte-tcp-rx-{}-{peer}", cfg.rank))
        .spawn(move || loop {
            let Some(s) = stream.as_mut() else { return };
            match read_wire_frame(s) {
                Ok(bytes) => router.deliver(peer, &bytes, wire.as_ref()),
                Err(_) => {
                    if wire.closing.load(Ordering::Relaxed) {
                        return;
                    }
                    wire.drop_stream(peer);
                    // Only the dialing side (peer rank below ours) can
                    // re-establish; the accepting side waits for the
                    // peer to redial through the listener.
                    if peer >= cfg.rank {
                        router.mark_link_down(peer);
                        return;
                    }
                    let mut revived = None;
                    for _ in 0..cfg.reconnect_attempts {
                        FaultMetrics::bump(&router.metrics().reconnects);
                        std::thread::sleep(cfg.reconnect_backoff);
                        if let Ok(s) = dial_peer(&cfg, peer) {
                            revived = Some(s);
                            break;
                        }
                    }
                    match revived {
                        Some(s) => {
                            stream = s.try_clone().ok();
                            wire.install(peer, s);
                            router.mark_link_up(peer);
                        }
                        None => {
                            router.mark_link_down(peer);
                            return;
                        }
                    }
                }
            }
        })
        .expect("spawn tcp reader");
}

/// Dials `peer`, performs the bidirectional hello exchange, and returns
/// the connected stream.
fn dial_peer(cfg: &TcpConfig, peer: usize) -> Result<TcpStream, TransportError> {
    let world = cfg.addrs.len();
    let mut stream = TcpStream::connect(&cfg.addrs[peer]).map_err(|e| TransportError::Io {
        detail: format!("connect {}: {e}", cfg.addrs[peer]),
    })?;
    write_wire_frame(&mut stream, &hello_frame(cfg.rank, world, cfg.fingerprint)).map_err(|e| {
        TransportError::Io {
            detail: format!("hello to peer {peer}: {e}"),
        }
    })?;
    let reply = read_wire_frame(&mut stream).map_err(|e| TransportError::Io {
        detail: format!("hello-ack from peer {peer}: {e}"),
    })?;
    let got = check_hello(&reply, world, cfg.fingerprint)?;
    if got != peer {
        return Err(TransportError::Handshake {
            detail: format!("dialed peer {peer} but rank {got} answered"),
        });
    }
    Ok(stream)
}

/// Runs the full TCP rendezvous: binds `addrs[rank]`, dials every lower
/// rank, accepts every higher rank, handshakes each connection
/// (protocol version + net fingerprint + world size, both directions),
/// and returns a ready [`Transport`]. A persistent accept thread keeps
/// servicing redials from higher ranks for the life of the endpoint.
///
/// # Errors
///
/// [`TransportError::Handshake`] on any validation failure or when the
/// rendezvous deadline expires; [`TransportError::Io`] on socket
/// failures.
pub fn tcp_rendezvous(cfg: TcpConfig) -> Result<Endpoint<TcpWire>, TransportError> {
    let world = cfg.addrs.len();
    if cfg.rank >= world {
        return Err(TransportError::Handshake {
            detail: format!("rank {} out of range for {world} addrs", cfg.rank),
        });
    }
    let metrics = Arc::new(FaultMetrics::new());
    let router = Router::new(cfg.rank, world, metrics)?;
    let wire = Arc::new(TcpWire {
        peers: (0..world)
            .map(|_| TcpPeerSlot {
                stream: Mutex::new(None),
            })
            .collect(),
        closing: AtomicBool::new(false),
        own_addr: cfg.addrs[cfg.rank].clone(),
    });
    let listener = TcpListener::bind(&cfg.addrs[cfg.rank]).map_err(|e| TransportError::Io {
        detail: format!("bind {}: {e}", cfg.addrs[cfg.rank]),
    })?;

    // Accept thread: greets higher ranks, both at rendezvous and on any
    // later redial. Runs until the endpoint closes.
    let accepted: Arc<(Mutex<u32>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
    {
        let router = router.clone();
        let wire = Arc::clone(&wire);
        let cfg = cfg.clone();
        let accepted = Arc::clone(&accepted);
        std::thread::Builder::new()
            .name(format!("latte-tcp-accept-{}", cfg.rank))
            .spawn(move || {
                for conn in listener.incoming() {
                    if wire.closing.load(Ordering::Relaxed) {
                        return;
                    }
                    let Ok(mut stream) = conn else { continue };
                    let Ok(hello) = read_wire_frame(&mut stream) else {
                        continue;
                    };
                    let peer = match check_hello(&hello, cfg.addrs.len(), cfg.fingerprint) {
                        Ok(p) if p > cfg.rank => p,
                        // Wrong direction, bad version, or bad
                        // fingerprint: refuse by closing the socket.
                        _ => continue,
                    };
                    if write_wire_frame(
                        &mut stream,
                        &hello_frame(cfg.rank, cfg.addrs.len(), cfg.fingerprint),
                    )
                    .is_err()
                    {
                        continue;
                    }
                    wire.install(peer, stream);
                    router.mark_link_up(peer);
                    spawn_tcp_reader(router.clone(), Arc::clone(&wire), peer, cfg.clone());
                    let (lock, cv) = &*accepted;
                    *lock.lock().unwrap() |= 1 << peer;
                    cv.notify_all();
                }
            })
            .expect("spawn tcp acceptor");
    }

    // Dial every lower rank, retrying until the rendezvous deadline
    // (peers may not have bound their listeners yet).
    let deadline = Instant::now() + cfg.rendezvous_timeout;
    for peer in 0..cfg.rank {
        loop {
            match dial_peer(&cfg, peer) {
                Ok(stream) => {
                    wire.install(peer, stream);
                    spawn_tcp_reader(router.clone(), Arc::clone(&wire), peer, cfg.clone());
                    break;
                }
                Err(e @ TransportError::Handshake { .. }) => return Err(e),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::Handshake {
                            detail: format!("rendezvous with peer {peer} timed out: {e}"),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    // Wait for every higher rank to dial in.
    let want = full_mask(world) & !full_mask(cfg.rank + 1);
    let (lock, cv) = &*accepted;
    let mut got = lock.lock().unwrap();
    while *got & want != want {
        let now = Instant::now();
        if now >= deadline {
            return Err(TransportError::Handshake {
                detail: format!(
                    "rendezvous timed out waiting for higher ranks (mask {:08b} of {want:08b})",
                    *got
                ),
            });
        }
        let (guard, _) = cv.wait_timeout(got, deadline - now).unwrap();
        got = guard;
    }
    drop(got);
    Ok(Endpoint::new(router, wire))
}

impl<W: Wire> Drop for Endpoint<W> {
    fn drop(&mut self) {
        self.goodbye();
        self.wire.close();
    }
}

impl Wire for TcpWire {
    fn send(&self, to: usize, bytes: Vec<u8>) -> Result<(), TransportError> {
        let mut guard = self.peers[to].stream.lock().unwrap();
        let Some(stream) = guard.as_mut() else {
            return Err(TransportError::Disconnected { peer: to });
        };
        match write_wire_frame(stream, &bytes) {
            Ok(()) => Ok(()),
            Err(_) => {
                *guard = None;
                Err(TransportError::Disconnected { peer: to })
            }
        }
    }

    fn close(&self) {
        self.closing.store(true, Ordering::Relaxed);
        for slot in &self.peers {
            if let Some(s) = slot.stream.lock().unwrap().take() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        // Unblock the accept loop so its thread can observe `closing`.
        let _ = TcpStream::connect(&self.own_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(step: u32, ring_step: u16) -> Key {
        Key {
            step,
            bucket: 0,
            phase: 0,
            ring_step,
        }
    }

    #[test]
    fn frame_roundtrip_preserves_everything() {
        let f = Frame {
            kind: FrameKind::Data,
            from: 3,
            key: Key {
                step: 7,
                bucket: 2,
                phase: 1,
                ring_step: 5,
            },
            chunk: 4,
            alive: 0b1011,
            failed: 0b0100,
            contributors: 0b0011,
            payload: vec![1.0, -2.5, f32::MIN_POSITIVE, 0.0],
        };
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
        let p = Frame::peek(&bytes).unwrap();
        assert_eq!(p.kind, FrameKind::Data);
        assert_eq!(p.from, 3);
        assert_eq!(p.key, f.key);
        assert_eq!(p.payload_len, 16);
    }

    #[test]
    fn flipped_bit_is_caught_by_crc() {
        // The negative control for the corruption path: any single
        // flipped bit anywhere in the frame must fail decode.
        let f = Frame {
            kind: FrameKind::Data,
            from: 1,
            key: key(3, 0),
            chunk: 0,
            alive: 0b11,
            failed: 0,
            contributors: 0b01,
            payload: vec![0.25, 0.5, 0.75],
        };
        let clean = f.encode();
        assert!(Frame::decode(&clean).is_ok());
        for byte in 0..clean.len() {
            let mut bad = clean.clone();
            bad[byte] ^= 0x01;
            assert!(
                Frame::decode(&bad).is_err(),
                "flipping byte {byte} went undetected"
            );
        }
        // The injector's canonical corruption helper, too.
        let mut bad = clean.clone();
        assert!(corrupt_payload(&mut bad));
        assert_eq!(Frame::decode(&bad), Err(FrameError::BadCrc));
    }

    #[test]
    fn decode_rejects_malformed_inputs() {
        assert_eq!(Frame::decode(&[]), Err(FrameError::Truncated));
        let f = Frame::control(FrameKind::Data, 0, key(0, 0), 0);
        let mut bytes = f.encode();
        bytes[0] = 0xFF;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadMagic));
        let mut bytes = f.encode();
        bytes[2] = 0xEE;
        assert!(matches!(Frame::decode(&bytes), Err(FrameError::BadVersion(_))));
        let mut bytes = f.encode();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(Frame::decode(&bytes), Err(FrameError::Truncated));
    }

    #[test]
    fn channel_group_delivers_and_services_resends() {
        let group = channel_group(2).unwrap();
        let mut f = Frame::control(FrameKind::Data, 0, key(1, 0), 0);
        f.payload = vec![1.0, 2.0];
        group[0].send_data(1, f.clone()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        match group[1].recv(0, deadline, 0).unwrap() {
            Delivery::Frame(got) => assert_eq!(got.payload, vec![1.0, 2.0]),
            other => panic!("unexpected {other:?}"),
        }
        // Resend: endpoint 1 asks 0 to replay the frame it already sent.
        group[1].request_resend(0, key(1, 0)).unwrap();
        match group[1].recv(0, deadline, 0).unwrap() {
            Delivery::Frame(got) => assert_eq!(got.payload, vec![1.0, 2.0]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(group[0].metrics().snapshot().send_retries, 1);
    }

    #[test]
    fn world_of_32_is_the_mask_boundary() {
        // 32 ranks fill the u32 masks exactly and must be accepted.
        let router = Router::new(31, MAX_WORLD, Arc::new(FaultMetrics::new())).unwrap();
        assert_eq!(router.world(), MAX_WORLD);
        assert_eq!(full_mask(MAX_WORLD), u32::MAX);
        // Rank 33+ would corrupt the alive/failed masks: structured
        // refusal, not silent truncation.
        let err = match Router::new(0, MAX_WORLD + 1, Arc::new(FaultMetrics::new())) {
            Ok(_) => panic!("a 33-rank router must be refused"),
            Err(e) => e,
        };
        assert_eq!(
            err,
            TransportError::TooManyRanks { world: MAX_WORLD + 1, max: MAX_WORLD }
        );
        // Group constructors propagate the same error.
        let err = match channel_group(MAX_WORLD + 1) {
            Ok(_) => panic!("a 33-rank group must be refused"),
            Err(e) => e,
        };
        assert!(matches!(err, TransportError::TooManyRanks { world: 33, .. }));
        // Degenerate-but-small geometry still reports Handshake.
        assert!(matches!(
            Router::new(5, 2, Arc::new(FaultMetrics::new())),
            Err(TransportError::Handshake { .. })
        ));
    }

    #[test]
    fn recv_times_out_and_counts_it() {
        let group = channel_group(2).unwrap();
        let t0 = Instant::now();
        let err = group[0]
            .recv(1, t0 + Duration::from_millis(30), 0)
            .unwrap_err();
        assert_eq!(err, TransportError::Timeout { peer: 1 });
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert_eq!(group[0].metrics().snapshot().timeouts, 1);
    }

    #[test]
    fn eviction_broadcast_shrinks_every_mask() {
        let group = channel_group(3).unwrap();
        assert!(group[0].evict(2));
        assert!(!group[0].evict(2), "double eviction is a no-op");
        // Peer 1 learns about it from the broadcast.
        let deadline = Instant::now() + Duration::from_secs(2);
        while group[1].alive_mask() & (1 << 2) != 0 {
            assert!(Instant::now() < deadline, "evict broadcast never arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(group[0].alive_mask(), 0b011);
        assert_eq!(group[1].alive_mask(), 0b011);
        assert_eq!(group[0].metrics().snapshot().peers_evicted, 1);
        assert_eq!(group[1].metrics().snapshot().peers_evicted, 1);
        // recv from the dead peer fails immediately.
        let err = group[1]
            .recv(2, Instant::now() + Duration::from_secs(5), 0)
            .unwrap_err();
        assert_eq!(err, TransportError::PeerDead { peer: 2 });
    }

    #[test]
    fn stale_masks_are_dropped_and_news_is_adopted() {
        let group = channel_group(3).unwrap();
        // Node 0 evicts node 2 locally only (simulate a lost broadcast
        // by using the router directly).
        group[0].router().mark_dead(2, true);
        // A data frame from 0 now carries mask 0b011; node 1 adopts it.
        let mut f = Frame::control(FrameKind::Data, 0, key(5, 0), 0);
        f.payload = vec![9.0];
        group[0].send_data(1, f).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        match group[1].recv(0, deadline, 0).unwrap() {
            Delivery::Frame(got) => assert_eq!(got.payload, vec![9.0]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(group[1].alive_mask(), 0b011, "death news adopted in-band");
        // A stale frame from 2 (whose mask still includes itself) is
        // dropped at node 1 — never delivered.
        let mut stale = Frame::control(FrameKind::Data, 2, key(5, 0), 0);
        stale.payload = vec![7.0];
        group[2].send_data(1, stale).unwrap();
        let err = group[1]
            .recv(2, Instant::now() + Duration::from_millis(50), 0)
            .unwrap_err();
        assert_eq!(err, TransportError::PeerDead { peer: 2 });
    }

    #[test]
    fn tcp_pair_handshakes_and_exchanges_frames() {
        let ports = super::tests::reserve_ports(2);
        let addrs: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
        let a0 = addrs.clone();
        let h = std::thread::spawn(move || {
            tcp_rendezvous(TcpConfig::new(0, a0, 0xABCD)).expect("rank 0 rendezvous")
        });
        let t1 = tcp_rendezvous(TcpConfig::new(1, addrs, 0xABCD)).expect("rank 1 rendezvous");
        let t0 = h.join().unwrap();
        let mut f = Frame::control(FrameKind::Data, 0, key(1, 0), 0);
        f.payload = vec![1.5, -2.5];
        t0.send_data(1, f).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        match t1.recv(0, deadline, 0).unwrap() {
            Delivery::Frame(got) => {
                assert_eq!(got.payload, vec![1.5, -2.5]);
                assert_eq!(got.from, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // And the reverse direction.
        let mut g = Frame::control(FrameKind::Data, 1, key(1, 1), 0);
        g.payload = vec![4.0];
        t1.send_data(0, g).unwrap();
        match t0.recv(1, deadline, 0).unwrap() {
            Delivery::Frame(got) => assert_eq!(got.payload, vec![4.0]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tcp_handshake_rejects_fingerprint_mismatch() {
        let ports = super::tests::reserve_ports(2);
        let addrs: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
        let a0 = addrs.clone();
        let h = std::thread::spawn(move || {
            let mut cfg = TcpConfig::new(0, a0, 0x1111);
            cfg.rendezvous_timeout = Duration::from_millis(900);
            tcp_rendezvous(cfg)
        });
        let mut cfg = TcpConfig::new(1, addrs, 0x2222);
        cfg.rendezvous_timeout = Duration::from_millis(900);
        let r1 = tcp_rendezvous(cfg);
        assert!(r1.is_err(), "mismatched fingerprint must not rendezvous");
        assert!(h.join().unwrap().is_err());
    }

    /// Reserves `n` distinct loopback ports by binding and dropping
    /// listeners (a small race window, fine for tests).
    pub(crate) fn reserve_ports(n: usize) -> Vec<u16> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
            .collect();
        listeners
            .iter()
            .map(|l| l.local_addr().unwrap().port())
            .collect()
    }
}
