//! Solvers: the training-loop coordinators of the paper's Section 2.5.
//!
//! A [`Solver`] owns the update rule; [`SolverParams`] carries the
//! learning-rate and momentum policies (the paper's `LRPolicy.Inv`,
//! `MomPolicy.Fixed`, …) plus weight decay. [`solve`] drives the
//! forward/backward/update loop over a data source, exactly like the
//! paper's `solve(sgd, net)`.

use crate::data::BatchSource;
use crate::error::RuntimeError;
use crate::exec::Executor;
use crate::metrics::FaultMetrics;

/// Learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrPolicy {
    /// Constant rate.
    Fixed {
        /// The rate.
        lr: f32,
    },
    /// `lr = base * (1 + gamma * iter)^(-power)` (the paper's
    /// `LRPolicy.Inv(0.01, 0.0001, 0.75)`).
    Inv {
        /// Base rate.
        base: f32,
        /// Decay factor per iteration.
        gamma: f32,
        /// Decay exponent.
        power: f32,
    },
    /// `lr = base * gamma^(iter / step)`.
    Step {
        /// Base rate.
        base: f32,
        /// Multiplier applied every `step` iterations.
        gamma: f32,
        /// Iterations per step.
        step: usize,
    },
}

impl LrPolicy {
    /// The learning rate at a given iteration.
    pub fn at(&self, iter: usize) -> f32 {
        match *self {
            LrPolicy::Fixed { lr } => lr,
            LrPolicy::Inv { base, gamma, power } => {
                base * (1.0 + gamma * iter as f32).powf(-power)
            }
            LrPolicy::Step { base, gamma, step } => base * gamma.powi((iter / step) as i32),
        }
    }

    /// The same schedule with its rate multiplied by `factor` — how the
    /// supervisor's health policies cut (or fault injection spikes) the
    /// learning rate without knowing which schedule is in use.
    pub fn scaled(self, factor: f32) -> LrPolicy {
        match self {
            LrPolicy::Fixed { lr } => LrPolicy::Fixed { lr: lr * factor },
            LrPolicy::Inv { base, gamma, power } => LrPolicy::Inv {
                base: base * factor,
                gamma,
                power,
            },
            LrPolicy::Step { base, gamma, step } => LrPolicy::Step {
                base: base * factor,
                gamma,
                step,
            },
        }
    }
}

/// Momentum schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MomPolicy {
    /// No momentum.
    None,
    /// Constant momentum (the paper's `MomPolicy.Fixed(0.9)`).
    Fixed {
        /// The coefficient.
        mom: f32,
    },
}

impl MomPolicy {
    /// The momentum coefficient at a given iteration.
    pub fn at(&self, _iter: usize) -> f32 {
        match *self {
            MomPolicy::None => 0.0,
            MomPolicy::Fixed { mom } => mom,
        }
    }
}

/// Hyper-parameters shared by all solvers (the paper's
/// `SolverParameters`).
#[derive(Debug, Clone, Copy)]
pub struct SolverParams {
    /// Learning-rate policy.
    pub lr_policy: LrPolicy,
    /// Momentum policy.
    pub mom_policy: MomPolicy,
    /// L2 regularization coefficient (the paper's `regu_coef`).
    pub regu_coef: f32,
    /// Training epochs for [`solve`].
    pub max_epoch: usize,
}

impl Default for SolverParams {
    fn default() -> Self {
        SolverParams {
            lr_policy: LrPolicy::Fixed { lr: 0.01 },
            mom_policy: MomPolicy::Fixed { mom: 0.9 },
            regu_coef: 0.0,
            max_epoch: 1,
        }
    }
}

/// A snapshot of a solver's mutable state: the iteration counter plus
/// every per-parameter accumulator, named so a checkpoint written by one
/// solver kind is rejected when restored into another.
///
/// Produced by [`Solver::export_state`], persisted by
/// [`crate::checkpoint::save_checkpoint_full`], and replayed by
/// [`Solver::import_state`] — the round trip is bit-exact, so a stateful
/// solver (momentum, RMS accumulators) resumes on the identical update
/// trajectory after a restart.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverState {
    /// Solver kind tag (`"sgd"`, `"rmsprop"`, …); empty for stateless
    /// solvers.
    pub kind: String,
    /// Iterations already applied (drives the LR/momentum schedules).
    pub iter: u64,
    /// Named accumulator groups, each holding one vector per parameter
    /// in executor parameter order.
    pub groups: Vec<(String, Vec<Vec<f32>>)>,
}

impl SolverState {
    fn group(&self, name: &str, kind: &str) -> Result<Vec<Vec<f32>>, RuntimeError> {
        self.groups
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| RuntimeError::InvalidConfig {
                detail: format!("solver state for `{kind}` lacks the `{name}` group"),
            })
    }

    fn expect_kind(&self, kind: &str) -> Result<(), RuntimeError> {
        if self.kind == kind {
            Ok(())
        } else {
            Err(RuntimeError::InvalidConfig {
                detail: format!(
                    "checkpoint holds `{}` solver state, cannot restore into `{kind}`",
                    self.kind
                ),
            })
        }
    }
}

/// A parameter-update rule.
///
/// Implementations hold per-parameter state (momentum, squared-gradient
/// accumulators) keyed by parameter order, which is stable for a given
/// executor.
pub trait Solver {
    /// The solver's hyper-parameters.
    fn params(&self) -> &SolverParams;

    /// Mutable access to the hyper-parameters, so supervision policies
    /// can re-tune a running solver (e.g. cut the learning rate after a
    /// divergence spike). Deliberately *not* captured by
    /// [`Solver::export_state`]: a restored checkpoint keeps the
    /// caller's (possibly re-tuned) hyper-parameters.
    fn params_mut(&mut self) -> &mut SolverParams;

    /// Applies one update step to every parameter of the executor, using
    /// the gradients of the last backward pass.
    fn step(&mut self, exec: &mut Executor);

    /// Snapshots the solver's mutable state for checkpointing.
    ///
    /// The default (for stateless update rules) is an empty state.
    fn export_state(&self) -> SolverState {
        SolverState::default()
    }

    /// Restores state captured by [`Solver::export_state`].
    ///
    /// # Errors
    ///
    /// Fails when the state was exported by a different solver kind.
    fn import_state(&mut self, state: &SolverState) -> Result<(), RuntimeError> {
        if state.kind.is_empty() && state.groups.is_empty() {
            Ok(())
        } else {
            Err(RuntimeError::InvalidConfig {
                detail: format!(
                    "this solver is stateless but the checkpoint holds `{}` state",
                    state.kind
                ),
            })
        }
    }
}

fn ensure_state(state: &mut Vec<Vec<f32>>, idx: usize, len: usize) -> &mut Vec<f32> {
    while state.len() <= idx {
        state.push(Vec::new());
    }
    if state[idx].len() != len {
        state[idx] = vec![0.0; len];
    }
    &mut state[idx]
}

/// Stochastic gradient descent with momentum and weight decay.
#[derive(Debug)]
pub struct Sgd {
    params: SolverParams,
    iter: usize,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD solver.
    pub fn new(params: SolverParams) -> Self {
        Sgd {
            params,
            iter: 0,
            velocity: Vec::new(),
        }
    }
}

impl Solver for Sgd {
    fn params(&self) -> &SolverParams {
        &self.params
    }

    fn params_mut(&mut self) -> &mut SolverParams {
        &mut self.params
    }

    fn step(&mut self, exec: &mut Executor) {
        let lr = self.params.lr_policy.at(self.iter);
        let mom = self.params.mom_policy.at(self.iter);
        let decay = self.params.regu_coef;
        let velocity = &mut self.velocity;
        let mut idx = 0;
        exec.for_each_param_mut(|v, g, lr_mult| {
            let vel = ensure_state(velocity, idx, v.len());
            idx += 1;
            let rate = lr * lr_mult;
            for ((w, &grad), vel) in v.iter_mut().zip(g).zip(vel.iter_mut()) {
                let d = grad + decay * *w;
                *vel = mom * *vel - rate * d;
                *w += *vel;
            }
        });
        self.iter += 1;
    }

    fn export_state(&self) -> SolverState {
        SolverState {
            kind: "sgd".into(),
            iter: self.iter as u64,
            groups: vec![("velocity".into(), self.velocity.clone())],
        }
    }

    fn import_state(&mut self, state: &SolverState) -> Result<(), RuntimeError> {
        state.expect_kind("sgd")?;
        self.iter = state.iter as usize;
        self.velocity = state.group("velocity", "sgd")?;
        Ok(())
    }
}

/// RMSProp (Tieleman & Hinton): per-weight rates from a running average
/// of squared gradients.
#[derive(Debug)]
pub struct RmsProp {
    params: SolverParams,
    decay: f32,
    eps: f32,
    iter: usize,
    ms: Vec<Vec<f32>>,
}

impl RmsProp {
    /// Creates an RMSProp solver with the given squared-gradient decay.
    pub fn new(params: SolverParams, decay: f32, eps: f32) -> Self {
        RmsProp {
            params,
            decay,
            eps,
            iter: 0,
            ms: Vec::new(),
        }
    }
}

impl Solver for RmsProp {
    fn params(&self) -> &SolverParams {
        &self.params
    }

    fn params_mut(&mut self) -> &mut SolverParams {
        &mut self.params
    }

    fn step(&mut self, exec: &mut Executor) {
        let lr = self.params.lr_policy.at(self.iter);
        let regu = self.params.regu_coef;
        let (decay, eps) = (self.decay, self.eps);
        let ms = &mut self.ms;
        let mut idx = 0;
        exec.for_each_param_mut(|v, g, lr_mult| {
            let m = ensure_state(ms, idx, v.len());
            idx += 1;
            let rate = lr * lr_mult;
            for ((w, &grad), m) in v.iter_mut().zip(g).zip(m.iter_mut()) {
                let d = grad + regu * *w;
                *m = decay * *m + (1.0 - decay) * d * d;
                *w -= rate * d / (m.sqrt() + eps);
            }
        });
        self.iter += 1;
    }

    fn export_state(&self) -> SolverState {
        SolverState {
            kind: "rmsprop".into(),
            iter: self.iter as u64,
            groups: vec![("ms".into(), self.ms.clone())],
        }
    }

    fn import_state(&mut self, state: &SolverState) -> Result<(), RuntimeError> {
        state.expect_kind("rmsprop")?;
        self.iter = state.iter as usize;
        self.ms = state.group("ms", "rmsprop")?;
        Ok(())
    }
}

/// AdaGrad (Duchi et al.): per-weight rates from the accumulated squared
/// gradient (cited by the paper as an example solving method).
#[derive(Debug)]
pub struct AdaGrad {
    params: SolverParams,
    eps: f32,
    iter: usize,
    acc: Vec<Vec<f32>>,
}

impl AdaGrad {
    /// Creates an AdaGrad solver.
    pub fn new(params: SolverParams, eps: f32) -> Self {
        AdaGrad {
            params,
            eps,
            iter: 0,
            acc: Vec::new(),
        }
    }
}

impl Solver for AdaGrad {
    fn params(&self) -> &SolverParams {
        &self.params
    }

    fn params_mut(&mut self) -> &mut SolverParams {
        &mut self.params
    }

    fn step(&mut self, exec: &mut Executor) {
        let lr = self.params.lr_policy.at(self.iter);
        let regu = self.params.regu_coef;
        let eps = self.eps;
        let acc = &mut self.acc;
        let mut idx = 0;
        exec.for_each_param_mut(|v, g, lr_mult| {
            let a = ensure_state(acc, idx, v.len());
            idx += 1;
            let rate = lr * lr_mult;
            for ((w, &grad), a) in v.iter_mut().zip(g).zip(a.iter_mut()) {
                let d = grad + regu * *w;
                *a += d * d;
                *w -= rate * d / (a.sqrt() + eps);
            }
        });
        self.iter += 1;
    }

    fn export_state(&self) -> SolverState {
        SolverState {
            kind: "adagrad".into(),
            iter: self.iter as u64,
            groups: vec![("acc".into(), self.acc.clone())],
        }
    }

    fn import_state(&mut self, state: &SolverState) -> Result<(), RuntimeError> {
        state.expect_kind("adagrad")?;
        self.iter = state.iter as usize;
        self.acc = state.group("acc", "adagrad")?;
        Ok(())
    }
}

/// AdaDelta (Zeiler): parameter updates scaled by the ratio of running
/// RMS of past updates to running RMS of past gradients — no global
/// learning rate needed (the `lr_policy` still multiplies as a trust
/// factor).
#[derive(Debug)]
pub struct AdaDelta {
    params: SolverParams,
    rho: f32,
    eps: f32,
    iter: usize,
    acc_grad: Vec<Vec<f32>>,
    acc_update: Vec<Vec<f32>>,
}

impl AdaDelta {
    /// Creates an AdaDelta solver with decay `rho`.
    pub fn new(params: SolverParams, rho: f32, eps: f32) -> Self {
        AdaDelta {
            params,
            rho,
            eps,
            iter: 0,
            acc_grad: Vec::new(),
            acc_update: Vec::new(),
        }
    }
}

impl Solver for AdaDelta {
    fn params(&self) -> &SolverParams {
        &self.params
    }

    fn params_mut(&mut self) -> &mut SolverParams {
        &mut self.params
    }

    fn step(&mut self, exec: &mut Executor) {
        let lr = self.params.lr_policy.at(self.iter);
        let regu = self.params.regu_coef;
        let (rho, eps) = (self.rho, self.eps);
        let acc_grad = &mut self.acc_grad;
        let acc_update = &mut self.acc_update;
        let mut idx = 0;
        exec.for_each_param_mut(|v, g, lr_mult| {
            let len = v.len();
            ensure_state(acc_grad, idx, len);
            ensure_state(acc_update, idx, len);
            let ag = &mut acc_grad[idx];
            let au = &mut acc_update[idx];
            idx += 1;
            let rate = lr * lr_mult;
            for (((w, &grad), ag), au) in
                v.iter_mut().zip(g).zip(ag.iter_mut()).zip(au.iter_mut())
            {
                let d = grad + regu * *w;
                *ag = rho * *ag + (1.0 - rho) * d * d;
                let update = -((*au + eps).sqrt() / (*ag + eps).sqrt()) * d;
                *au = rho * *au + (1.0 - rho) * update * update;
                *w += rate * update;
            }
        });
        self.iter += 1;
    }

    fn export_state(&self) -> SolverState {
        SolverState {
            kind: "adadelta".into(),
            iter: self.iter as u64,
            groups: vec![
                ("acc_grad".into(), self.acc_grad.clone()),
                ("acc_update".into(), self.acc_update.clone()),
            ],
        }
    }

    fn import_state(&mut self, state: &SolverState) -> Result<(), RuntimeError> {
        state.expect_kind("adadelta")?;
        self.iter = state.iter as usize;
        self.acc_grad = state.group("acc_grad", "adadelta")?;
        self.acc_update = state.group("acc_update", "adadelta")?;
        Ok(())
    }
}

/// Gradient-hygiene policy applied between `backward` and
/// [`Solver::step`]: per-element clipping, global-norm clipping, and a
/// finite check that can veto the update entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradHygiene {
    /// Scale all gradients down when their global L2 norm exceeds this.
    pub max_global_norm: Option<f32>,
    /// Clamp each gradient element to `[-max_abs, max_abs]`.
    pub max_abs: Option<f32>,
    /// Veto the update when any gradient element is NaN/Inf (the caller
    /// skips [`Solver::step`]); clipping cannot repair a NaN.
    pub skip_nonfinite: bool,
}

impl Default for GradHygiene {
    fn default() -> Self {
        GradHygiene {
            max_global_norm: Some(100.0),
            max_abs: None,
            skip_nonfinite: true,
        }
    }
}

impl GradHygiene {
    /// A policy that only vetoes non-finite updates, without clipping.
    pub fn finite_check_only() -> Self {
        GradHygiene {
            max_global_norm: None,
            max_abs: None,
            skip_nonfinite: true,
        }
    }
}

/// What [`apply_grad_hygiene`] did to the current gradients.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GradHygieneReport {
    /// Global L2 norm before clipping.
    pub global_norm: f32,
    /// Whether a non-finite element vetoed the update (when set, the
    /// gradients were left untouched and the step must be skipped).
    pub nonfinite: bool,
    /// Elements clamped by `max_abs`.
    pub clipped_values: u64,
    /// Whether the global-norm rescale was applied.
    pub scaled_global: bool,
}

/// Inspects and conditions the executor's parameter gradients per
/// `cfg`, bumping `metrics` trip counters when given. Call after
/// `backward` and before [`Solver::step`]; when the report says
/// `nonfinite`, skip the step.
pub fn apply_grad_hygiene(
    exec: &mut Executor,
    cfg: &GradHygiene,
    metrics: Option<&FaultMetrics>,
) -> GradHygieneReport {
    let mut sumsq = 0.0f64;
    let mut nonfinite = false;
    exec.for_each_param_grad_mut(|_, g| {
        for &v in g.iter() {
            if v.is_finite() {
                sumsq += f64::from(v) * f64::from(v);
            } else {
                nonfinite = true;
            }
        }
    });
    let mut report = GradHygieneReport {
        global_norm: sumsq.sqrt() as f32,
        nonfinite,
        ..Default::default()
    };
    if nonfinite && cfg.skip_nonfinite {
        if let Some(m) = metrics {
            FaultMetrics::bump(&m.grad_nonfinite_trips);
        }
        return report;
    }
    if let Some(cap) = cfg.max_abs {
        let mut clipped = 0u64;
        let mut sumsq = 0.0f64;
        exec.for_each_param_grad_mut(|_, g| {
            for v in g.iter_mut() {
                if v.abs() > cap {
                    *v = v.clamp(-cap, cap);
                    clipped += 1;
                }
                sumsq += f64::from(*v) * f64::from(*v);
            }
        });
        report.clipped_values = clipped;
        if clipped > 0 {
            // The per-element clamp changed the norm the global clip
            // must judge.
            report.global_norm = sumsq.sqrt() as f32;
        }
    }
    if let Some(max_norm) = cfg.max_global_norm {
        if report.global_norm > max_norm && report.global_norm.is_finite() {
            let scale = max_norm / report.global_norm;
            exec.for_each_param_grad_mut(|_, g| {
                for v in g.iter_mut() {
                    *v *= scale;
                }
            });
            report.scaled_global = true;
        }
    }
    if report.clipped_values > 0 || report.scaled_global {
        if let Some(m) = metrics {
            FaultMetrics::bump(&m.grad_clips);
        }
    }
    report
}

/// Result of a [`solve`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Mean loss of the first iteration.
    pub initial_loss: f32,
    /// Mean loss of the final iteration.
    pub final_loss: f32,
    /// Total iterations executed.
    pub iterations: usize,
}

/// Trains a network: the paper's `solve(solver, net)`.
///
/// Iterates `solver.params().max_epoch` epochs over the data source,
/// running forward, backward, and the solver's update for each batch.
///
/// # Errors
///
/// Propagates input-feeding and data-source failures.
pub fn solve(
    solver: &mut dyn Solver,
    exec: &mut Executor,
    source: &mut dyn BatchSource,
) -> Result<SolveReport, RuntimeError> {
    let mut initial = None;
    let mut last = 0.0;
    let mut iterations = 0;
    for _ in 0..solver.params().max_epoch {
        source.reset();
        while let Some(batch) = source.next_batch()? {
            for (ensemble, values) in &batch {
                exec.set_input(ensemble, values)?;
            }
            exec.forward();
            let loss = exec.loss();
            if initial.is_none() {
                initial = Some(loss);
            }
            last = loss;
            exec.backward();
            solver.step(exec);
            iterations += 1;
        }
    }
    Ok(SolveReport {
        initial_loss: initial.unwrap_or(0.0),
        final_loss: last,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_core::{compile, OptLevel};
    use latte_nn::models::{mlp, ModelConfig};

    fn build() -> Executor {
        let cfg = ModelConfig {
            batch: 2,
            input_size: 4,
            channel_div: 1,
            classes: 2,
            with_loss: true,
            seed: 5,
        };
        Executor::new(compile(&mlp(&cfg, &[6]).net, &OptLevel::full()).unwrap()).unwrap()
    }

    /// Runs one forward/backward on a fixed batch so gradients exist.
    fn populate_grads(exec: &mut Executor) {
        let input: Vec<f32> = (0..exec.batch() * 4).map(|i| (i % 5) as f32 * 0.3).collect();
        exec.set_input("data", &input).unwrap();
        exec.set_input("label", &vec![0.0; exec.batch()]).unwrap();
        exec.forward();
        exec.backward();
    }

    #[test]
    fn lr_policies_scale_uniformly() {
        let fixed = LrPolicy::Fixed { lr: 0.4 }.scaled(0.5);
        assert_eq!(fixed.at(0), 0.2);
        let inv = LrPolicy::Inv { base: 0.01, gamma: 0.0001, power: 0.75 };
        let cut = inv.scaled(0.1);
        for iter in [0, 100, 10_000] {
            assert!((cut.at(iter) - 0.1 * inv.at(iter)).abs() < 1e-9);
        }
        let step = LrPolicy::Step { base: 0.1, gamma: 0.5, step: 10 }.scaled(2.0);
        assert_eq!(step.at(10), 0.1);
    }

    #[test]
    fn hygiene_vetoes_nonfinite_gradients_untouched() {
        let mut exec = build();
        populate_grads(&mut exec);
        let mut grad_names = Vec::new();
        exec.for_each_param_grad_mut(|name, _| grad_names.push(name.to_string()));
        assert!(!grad_names.is_empty());
        let len = exec.read_buffer(&grad_names[0]).unwrap().len();
        let mut poisoned = vec![1.0; len];
        poisoned[len / 2] = f32::NAN;
        exec.write_buffer(&grad_names[0], &poisoned).unwrap();

        let metrics = FaultMetrics::new();
        let report = apply_grad_hygiene(&mut exec, &GradHygiene::default(), Some(&metrics));
        assert!(report.nonfinite);
        assert!(!report.scaled_global && report.clipped_values == 0);
        assert_eq!(metrics.snapshot().grad_nonfinite_trips, 1);
        // The veto leaves the gradients as they were.
        let after = exec.read_buffer(&grad_names[0]).unwrap();
        assert!(after[len / 2].is_nan());
        assert_eq!(after[0], 1.0);
    }

    #[test]
    fn hygiene_clips_elements_then_global_norm() {
        let mut exec = build();
        populate_grads(&mut exec);
        let mut grad_names = Vec::new();
        exec.for_each_param_grad_mut(|name, _| grad_names.push(name.to_string()));
        let len = exec.read_buffer(&grad_names[0]).unwrap().len();
        exec.write_buffer(&grad_names[0], &vec![50.0; len]).unwrap();

        let metrics = FaultMetrics::new();
        let cfg = GradHygiene {
            max_abs: Some(10.0),
            max_global_norm: Some(1.0),
            skip_nonfinite: true,
        };
        let report = apply_grad_hygiene(&mut exec, &cfg, Some(&metrics));
        assert!(!report.nonfinite);
        assert_eq!(report.clipped_values, len as u64);
        assert!(report.scaled_global);
        assert_eq!(metrics.snapshot().grad_clips, 1);
        // After conditioning, the global norm obeys the cap.
        let mut sumsq = 0.0f64;
        exec.for_each_param_grad_mut(|_, g| {
            for &v in g.iter() {
                sumsq += f64::from(v) * f64::from(v);
            }
        });
        assert!(sumsq.sqrt() <= 1.0 + 1e-4, "norm {} exceeds cap", sumsq.sqrt());
    }

    #[test]
    fn hygiene_leaves_healthy_gradients_alone() {
        let mut exec = build();
        populate_grads(&mut exec);
        let before: Vec<Vec<f32>> = {
            let mut v = Vec::new();
            exec.for_each_param_grad_mut(|_, g| v.push(g.to_vec()));
            v
        };
        let metrics = FaultMetrics::new();
        let report = apply_grad_hygiene(&mut exec, &GradHygiene::default(), Some(&metrics));
        assert!(!report.nonfinite && !report.scaled_global);
        assert_eq!(report.clipped_values, 0);
        let mut after = Vec::new();
        exec.for_each_param_grad_mut(|_, g| after.push(g.to_vec()));
        assert_eq!(before, after);
        assert_eq!(metrics.snapshot().grad_clips, 0);
    }

    #[test]
    fn lr_policies_decay_as_specified() {
        let inv = LrPolicy::Inv {
            base: 0.01,
            gamma: 0.0001,
            power: 0.75,
        };
        assert!((inv.at(0) - 0.01).abs() < 1e-9);
        assert!(inv.at(10_000) < 0.01);
        let step = LrPolicy::Step {
            base: 0.1,
            gamma: 0.5,
            step: 10,
        };
        assert_eq!(step.at(9), 0.1);
        assert_eq!(step.at(10), 0.05);
        assert_eq!(step.at(25), 0.025);
    }

    #[test]
    fn momentum_policy_values() {
        assert_eq!(MomPolicy::None.at(5), 0.0);
        assert_eq!(MomPolicy::Fixed { mom: 0.9 }.at(5), 0.9);
    }

    #[test]
    fn ensure_state_sizes_lazily() {
        let mut s = Vec::new();
        ensure_state(&mut s, 2, 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s[2].len(), 4);
    }

    #[test]
    fn solver_state_round_trips_bit_exactly() {
        let mut sgd = Sgd::new(SolverParams::default());
        sgd.iter = 7;
        sgd.velocity = vec![vec![0.25, -0.5], vec![1.0]];
        let state = sgd.export_state();
        assert_eq!(state.kind, "sgd");
        assert_eq!(state.iter, 7);
        let mut fresh = Sgd::new(SolverParams::default());
        fresh.import_state(&state).unwrap();
        assert_eq!(fresh.iter, 7);
        assert_eq!(fresh.velocity, sgd.velocity);
        assert_eq!(fresh.export_state(), state);

        let mut ad = AdaDelta::new(SolverParams::default(), 0.95, 1e-6);
        ad.iter = 3;
        ad.acc_grad = vec![vec![0.125]];
        ad.acc_update = vec![vec![0.5]];
        let state = ad.export_state();
        let mut fresh = AdaDelta::new(SolverParams::default(), 0.95, 1e-6);
        fresh.import_state(&state).unwrap();
        assert_eq!(fresh.export_state(), state);
    }

    #[test]
    fn import_rejects_foreign_solver_state() {
        let sgd = Sgd::new(SolverParams::default());
        let state = sgd.export_state();
        let mut rms = RmsProp::new(SolverParams::default(), 0.9, 1e-8);
        let err = rms.import_state(&state).unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidConfig { .. }));
    }
}
