//! The trace-keyed JIT cache: compile a recorded trace once per
//! `(structure, shape, opt level)` and reuse the lowered program forever
//! after.
//!
//! This is the runtime half of the LazyTensor-style split in
//! [`latte_core::trace`]: eager code *records* ops into a
//! [`TraceSession`](latte_core::TraceSession), the finished
//! [`Trace`](latte_core::Trace) carries a canonical [`TraceKey`], and this
//! cache maps `(TraceKey, OptLevel)` to a fully lowered
//! [`CompiledProgram`]. The first sighting of a key pays the whole
//! pipeline — synthesis, the nine optimization passes, kernel lowering,
//! bounds proofs, liveness layout. Every later sighting is a hash lookup;
//! the per-pass counters let tests assert that the second execution of
//! any `(net, shape)` pair runs **zero** compiler passes.
//!
//! The cache is bounded: least-recently-used entries are evicted once
//! `capacity` distinct keys are resident, and evictions are counted so
//! serving metrics can observe thrash.
//!
//! When `LATTE_DUMP_IR=<dir>` is set, each miss also writes the final
//! compiled program to `<dir>/<key.label()>-o<opthash>.txt` — the
//! trace-hash-keyed counterpart of the per-pass snapshots the
//! [`PassManager`](latte_core::PassManager) writes during compilation.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use latte_core::dsl::Net;
use latte_core::{compile, CompiledNet, OptLevel, Trace, TraceKey};

use crate::error::RuntimeError;
use crate::exec::{CompiledProgram, ExecConfig, Executor};
use crate::pool::WorkerPool;
use crate::registry::KernelRegistry;

/// Observable counters of a [`TraceCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Lookups served from the cache (no compilation).
    pub hits: usize,
    /// Lookups that compiled and lowered a new program.
    pub misses: usize,
    /// Entries evicted by the LRU bound.
    pub evictions: usize,
    /// Total *enabled* compiler passes run across all misses. Flat across
    /// two identical lookups ⇔ the second one compiled nothing.
    pub passes_run: usize,
}

struct Entry {
    program: Arc<CompiledProgram>,
    last_used: u64,
}

/// A bounded, LRU-evicting cache of lowered programs keyed by
/// `(TraceKey, OptLevel)`.
///
/// # Examples
///
/// ```
/// use latte_core::{OptLevel, TraceSession};
/// use latte_core::dsl::{Ensemble, Mapping};
/// use latte_runtime::TraceCache;
/// use latte_tensor::{init, Tensor};
///
/// let record = || {
///     let mut s = TraceSession::new(4);
///     let d = s.add(Ensemble::data("data", vec![8]));
///     let fc = s.add(
///         Ensemble::new("fc1", vec![2], latte_core::dsl::stdlib::weighted_neuron())
///             .with_field("weights", vec![false], init::xavier(vec![2, 8], 8, 0))
///             .with_field("bias", vec![false], Tensor::zeros(vec![2, 1]))
///             .with_param("weights", 1.0)
///             .with_param("bias", 2.0),
///     );
///     s.connect(d, fc, Mapping::all_to_all(vec![8]));
///     s.finish()
/// };
/// let mut cache = TraceCache::new(16);
/// let opt = OptLevel::full();
/// cache.get(&record(), &opt)?;           // miss: compiles
/// cache.get(&record(), &opt)?;           // hit: no passes run
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// # Ok::<(), latte_runtime::RuntimeError>(())
/// ```
pub struct TraceCache {
    capacity: usize,
    registry: KernelRegistry,
    cfg: ExecConfig,
    entries: HashMap<(TraceKey, OptLevel), Entry>,
    tick: u64,
    stats: TraceCacheStats,
}

impl std::fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCache")
            .field("capacity", &self.capacity)
            .field("entries", &self.entries.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl TraceCache {
    /// A cache holding at most `capacity` lowered programs, using the
    /// built-in kernel registry and default execution configuration.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_config(capacity, KernelRegistry::with_builtins(), ExecConfig::default())
    }

    /// A cache with an explicit kernel registry and execution
    /// configuration (both are baked into every lowered program).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_config(capacity: usize, registry: KernelRegistry, cfg: ExecConfig) -> Self {
        assert!(capacity > 0, "trace cache capacity must be non-zero");
        TraceCache {
            capacity,
            registry,
            cfg,
            entries: HashMap::new(),
            tick: 0,
            stats: TraceCacheStats::default(),
        }
    }

    /// The maximum number of resident programs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of currently resident programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no programs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cache's counters.
    pub fn stats(&self) -> TraceCacheStats {
        self.stats
    }

    /// Whether a program for `(key, opt)` is resident (does not touch
    /// LRU state or counters).
    pub fn contains(&self, key: &TraceKey, opt: &OptLevel) -> bool {
        self.entries.contains_key(&(*key, *opt))
    }

    /// The lowered program for a finished trace: a cache hit returns the
    /// resident `Arc` and runs no compiler pass; a miss compiles the
    /// trace's recorded net, lowers it, and caches the result.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Compile`] when the recorded net fails compilation;
    /// lowering errors pass through unchanged.
    pub fn get(&mut self, trace: &Trace, opt: &OptLevel) -> Result<Arc<CompiledProgram>, RuntimeError> {
        self.get_with(trace.key(), opt, || trace.net().clone())
    }

    /// Like [`TraceCache::get`], but builds the network lazily: `build`
    /// runs only on a miss, so a hot caller never pays for graph
    /// construction. The caller is responsible for `key` actually
    /// describing `build()`'s output (use
    /// [`structure_hash`](latte_core::structure_hash) / [`Trace`] when in
    /// doubt).
    ///
    /// # Errors
    ///
    /// See [`TraceCache::get`].
    pub fn get_with(
        &mut self,
        key: TraceKey,
        opt: &OptLevel,
        build: impl FnOnce() -> Net,
    ) -> Result<Arc<CompiledProgram>, RuntimeError> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&(key, *opt)) {
            entry.last_used = tick;
            self.stats.hits += 1;
            return Ok(Arc::clone(&entry.program));
        }
        let net = build();
        let compiled = compile(&net, opt).map_err(|e| RuntimeError::Compile {
            detail: e.to_string(),
        })?;
        self.stats.passes_run += compiled.stats.passes.iter().filter(|p| p.enabled).count();
        dump_ir(&key, opt, &compiled);
        let program = Arc::new(CompiledProgram::lower(compiled, &self.registry, self.cfg)?);
        self.stats.misses += 1;
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            (key, *opt),
            Entry {
                program: Arc::clone(&program),
                last_used: tick,
            },
        );
        Ok(program)
    }

    /// A warm executor for a finished trace, sharing the cached plan:
    /// compilation happens at most once per key, instantiation only
    /// allocates buffers.
    ///
    /// # Errors
    ///
    /// See [`TraceCache::get`]; instantiation failures pass through.
    pub fn executor(
        &mut self,
        trace: &Trace,
        opt: &OptLevel,
        pool: Arc<WorkerPool>,
    ) -> Result<Executor, RuntimeError> {
        self.get(trace, opt)?.instantiate(pool)
    }
}

/// `LATTE_DUMP_IR=<dir>`: writes the final compiled program of a cache
/// miss, named by the trace key's filesystem-safe label plus an opt-level
/// fingerprint (distinct opt levels of one trace dump side by side).
fn dump_ir(key: &TraceKey, opt: &OptLevel, compiled: &CompiledNet) {
    let Some(dir) = std::env::var_os("LATTE_DUMP_IR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    let mut h = DefaultHasher::new();
    opt.hash(&mut h);
    let name = format!("{}-o{:08x}.txt", key.label(), h.finish() as u32);
    let mut text = String::from("== buffers ==\n");
    for b in &compiled.buffers {
        text.push_str(&format!("{b}\n"));
    }
    text.push_str(&compiled.pretty());
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(dir.join(name), text);
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_core::dsl::stdlib::weighted_neuron;
    use latte_core::dsl::{Ensemble, Mapping};
    use latte_core::TraceSession;
    use latte_tensor::{init, Tensor};

    fn record(batch: usize, width: usize) -> Trace {
        let mut s = TraceSession::new(batch);
        let d = s.add(Ensemble::data("data", vec![width]));
        let fc = s.add(
            Ensemble::new("fc1", vec![3], weighted_neuron())
                .with_field("weights", vec![false], init::xavier(vec![3, width], width, 0))
                .with_field("bias", vec![false], Tensor::zeros(vec![3, 1]))
                .with_param("weights", 1.0)
                .with_param("bias", 2.0),
        );
        s.connect(d, fc, Mapping::all_to_all(vec![width]));
        s.finish()
    }

    #[test]
    fn second_lookup_runs_zero_passes() {
        let mut cache = TraceCache::new(8);
        let opt = OptLevel::full();
        cache.get(&record(4, 8), &opt).unwrap();
        let after_first = cache.stats();
        assert_eq!(after_first.misses, 1);
        assert!(after_first.passes_run > 0);
        let p = cache.get(&record(4, 8), &opt).unwrap();
        let after_second = cache.stats();
        assert_eq!(after_second.hits, 1);
        assert_eq!(after_second.misses, 1);
        assert_eq!(after_second.passes_run, after_first.passes_run);
        assert_eq!(p.batch(), 4);
    }

    #[test]
    fn distinct_shapes_and_opt_levels_miss_separately() {
        let mut cache = TraceCache::new(8);
        let full = OptLevel::full();
        let none = OptLevel::none();
        cache.get(&record(4, 8), &full).unwrap();
        cache.get(&record(2, 8), &full).unwrap(); // new batch → miss
        cache.get(&record(4, 8), &none).unwrap(); // new opt → miss
        cache.get(&record(2, 8), &full).unwrap(); // hit
        let s = cache.stats();
        assert_eq!((s.misses, s.hits), (3, 1));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn lru_bound_evicts_and_counts() {
        let mut cache = TraceCache::new(2);
        let opt = OptLevel::none();
        cache.get(&record(1, 4), &opt).unwrap();
        cache.get(&record(2, 4), &opt).unwrap();
        cache.get(&record(1, 4), &opt).unwrap(); // refresh batch-1
        cache.get(&record(3, 4), &opt).unwrap(); // evicts batch-2
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.contains(&record(1, 4).key(), &opt));
        assert!(!cache.contains(&record(2, 4).key(), &opt));
        // Re-fetching the evicted shape recompiles.
        cache.get(&record(2, 4), &opt).unwrap();
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn get_with_builds_only_on_miss() {
        let mut cache = TraceCache::new(8);
        let opt = OptLevel::none();
        let t = record(4, 8);
        let key = t.key();
        cache.get(&t, &opt).unwrap();
        let mut built = false;
        cache
            .get_with(key, &opt, || {
                built = true;
                t.net().clone()
            })
            .unwrap();
        assert!(!built, "hit must not build the network");
    }

    #[test]
    fn compile_failure_surfaces_as_compile_error() {
        let mut cache = TraceCache::new(8);
        // A cyclic non-recurrent net cannot compile.
        let mut s = TraceSession::new(1);
        let a = s.add(Ensemble::data("a", vec![1]));
        let b = s.add(Ensemble::activation(
            "b",
            vec![1],
            latte_core::dsl::stdlib::relu_neuron(),
        ));
        s.connect(a, b, Mapping::one_to_one());
        s.connect(b, b, Mapping::one_to_one());
        let err = cache.get(&s.finish(), &OptLevel::none()).unwrap_err();
        assert!(matches!(err, RuntimeError::Compile { .. }), "{err}");
    }
}
