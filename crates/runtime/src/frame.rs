//! Shared wire framing: CRC32-sealed payloads behind a length prefix.
//!
//! Both wire protocols in this workspace — the distributed-training
//! transport ([`crate::transport`]) and the serving front-end
//! (`latte-serve`'s `net` module) — move discrete messages over byte
//! streams with the same two conventions:
//!
//! 1. **Length prefix**: every message is preceded by its byte length as
//!    a little-endian `u32`, so a reader always knows how much to pull
//!    off the stream before it can act, and an oversized prefix is
//!    rejected *before* any allocation ([`read_frame`]'s `max_len`).
//! 2. **CRC32 seal**: the message body carries a CRC32 trailer computed
//!    by the same [`crate::checkpoint::crc32`] that guards checkpoints,
//!    so a flipped bit anywhere in the body is caught at the receiver
//!    ([`verify`]) instead of silently corrupting gradients or
//!    inference results.
//!
//! The two layers compose but are independent: [`seal`]/[`verify`] are
//! pure byte transforms, [`write_frame`]/[`read_frame`] are the stream
//! I/O. The transport's [`crate::transport::Frame`] seals its own
//! encoded header+payload; the serving protocol seals each message
//! body. Corruption surfaces as [`FrameIntegrity::BadCrc`], the signal
//! both protocols treat as retryable-or-fatal per their own policy.

use std::fmt;
use std::io::{Read, Write};

use crate::checkpoint::crc32;

/// Byte length of the CRC32 trailer appended by [`seal`].
pub const CRC_LEN: usize = 4;

/// Byte length of the `u32` length prefix written by [`write_frame`].
pub const LEN_PREFIX: usize = 4;

/// Why a sealed byte string failed [`verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameIntegrity {
    /// Shorter than the CRC trailer itself.
    Truncated,
    /// CRC32 trailer mismatch: the body was corrupted in flight.
    BadCrc,
}

impl fmt::Display for FrameIntegrity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameIntegrity::Truncated => write!(f, "frame shorter than its CRC trailer"),
            FrameIntegrity::BadCrc => write!(f, "frame CRC mismatch (corrupted in flight)"),
        }
    }
}

impl std::error::Error for FrameIntegrity {}

/// Appends the CRC32 trailer to `body`, consuming it: the returned
/// bytes are `body ++ crc32(body)` in little-endian.
pub fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    body
}

/// Checks the CRC32 trailer of a [`seal`]ed byte string and returns the
/// body with the trailer stripped.
///
/// # Errors
///
/// [`FrameIntegrity::Truncated`] when `bytes` cannot even hold the
/// trailer, [`FrameIntegrity::BadCrc`] on checksum mismatch.
pub fn verify(bytes: &[u8]) -> Result<&[u8], FrameIntegrity> {
    if bytes.len() < CRC_LEN {
        return Err(FrameIntegrity::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - CRC_LEN);
    let want = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    if crc32(body) != want {
        return Err(FrameIntegrity::BadCrc);
    }
    Ok(body)
}

/// Writes one length-prefixed frame (`u32` LE length, then the bytes)
/// and flushes the stream.
///
/// # Errors
///
/// Any I/O error from the underlying stream.
pub fn write_frame(w: &mut impl Write, bytes: &[u8]) -> std::io::Result<()> {
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed frame, refusing prefixes above `max_len`
/// before allocating anything (the defense against a hostile peer
/// advertising a multi-gigabyte frame).
///
/// # Errors
///
/// `InvalidData` for an oversized prefix; otherwise any I/O error from
/// the underlying stream (`UnexpectedEof` on a peer that hung up
/// mid-frame, `WouldBlock`/`TimedOut` when a read timeout is armed).
pub fn read_frame(r: &mut impl Read, max_len: usize) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; LEN_PREFIX];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > max_len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("oversized wire frame: {len} bytes (cap {max_len})"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_verify_roundtrip() {
        let body = b"the latte serving protocol".to_vec();
        let sealed = seal(body.clone());
        assert_eq!(sealed.len(), body.len() + CRC_LEN);
        assert_eq!(verify(&sealed).unwrap(), &body[..]);
        // Empty bodies are legal (control messages).
        let sealed = seal(Vec::new());
        assert_eq!(verify(&sealed).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        // The corruption negative control: any single flipped bit in a
        // sealed frame — body or trailer — must fail verification.
        let sealed = seal(vec![0x00, 0xFF, 0x5A, 0xA5, 0x3C]);
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert_eq!(
                    verify(&bad),
                    Err(FrameIntegrity::BadCrc),
                    "flipping bit {bit} of byte {byte} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncated_seal_is_structured() {
        assert_eq!(verify(&[]), Err(FrameIntegrity::Truncated));
        assert_eq!(verify(&[1, 2, 3]), Err(FrameIntegrity::Truncated));
    }

    #[test]
    fn stream_roundtrip_and_oversize_refusal() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"beta").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"");
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"beta");
        assert_eq!(
            read_frame(&mut r, 64).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
        // A hostile length prefix is refused before allocation.
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 32]).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, 16).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_stream_is_an_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"incomplete").unwrap();
        buf.truncate(buf.len() - 3); // peer died mid-frame
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, 64).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }
}
