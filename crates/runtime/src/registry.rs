//! The extern-kernel registry.
//!
//! Normalization ensembles lower to `extern <name>` statements; the
//! runtime dispatches them through this registry, so downstream crates can
//! register new array-level operations without touching the compiler —
//! the extensibility story the paper attributes to
//! `NormalizationEnsemble`.
//!
//! Built-in kernels: plain softmax, softmax + cross-entropy loss,
//! Euclidean (L2) loss, local response normalization (AlexNet's LRN), and
//! batch normalization (whole-batch statistics).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::error::RuntimeError;

/// One extern-kernel invocation.
///
/// By default kernels run once per batch item with batched buffers sliced
/// to that item. A kernel registered with [`KernelRegistry::register_whole_batch`]
/// runs once per pass with full storages (`item == None`), for operations
/// that need cross-item statistics.
pub struct ExternInvocation<'a> {
    /// Scalar attributes from the ensemble's normalization spec.
    pub attrs: &'a BTreeMap<String, f64>,
    /// Total batch size.
    pub batch: usize,
    /// The current item for per-item calls; `None` for whole-batch calls.
    pub item: Option<usize>,
    /// Per-item element count of each buffer.
    pub per_item: Vec<usize>,
    /// Whether each buffer is batched.
    pub batched: Vec<bool>,
    pub(crate) bufs: Vec<&'a mut [f32]>,
}

impl<'a> ExternInvocation<'a> {
    /// Builds an invocation over caller-provided buffer views.
    ///
    /// The executor constructs invocations internally from its lowered
    /// plan; this constructor is the hook external drivers (notably the
    /// `latte-oracle` reference interpreter) use to run registered kernels
    /// over their own storage. `bufs` must follow the kernel's declared
    /// buffer order, with batched buffers already sliced to `item` for
    /// per-item calls.
    pub fn new(
        attrs: &'a BTreeMap<String, f64>,
        batch: usize,
        item: Option<usize>,
        per_item: Vec<usize>,
        batched: Vec<bool>,
        bufs: Vec<&'a mut [f32]>,
    ) -> Self {
        ExternInvocation {
            attrs,
            batch,
            item,
            per_item,
            batched,
            bufs,
        }
    }

    /// Read access to buffer `i` (sliced to the current item for per-item
    /// calls).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn buf(&self, i: usize) -> &[f32] {
        self.bufs[i]
    }

    /// Write access to buffer `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn buf_mut(&mut self, i: usize) -> &mut [f32] {
        self.bufs[i]
    }

    /// Two disjoint buffers, one mutable — the common read-src/write-dst
    /// kernel shape.
    ///
    /// # Panics
    ///
    /// Panics when indices are equal or out of range.
    pub fn buf_pair_mut(&mut self, read: usize, write: usize) -> (&[f32], &mut [f32]) {
        assert_ne!(read, write, "buffer pair must be disjoint");
        // Split safely around the two indices.
        if read < write {
            let (lo, hi) = self.bufs.split_at_mut(write);
            (&*lo[read], hi[0])
        } else {
            let (lo, hi) = self.bufs.split_at_mut(read);
            (&*hi[0], lo[write])
        }
    }

    /// An attribute with a default.
    pub fn attr_or(&self, key: &str, default: f64) -> f64 {
        self.attrs.get(key).copied().unwrap_or(default)
    }
}

/// Signature of an extern kernel.
pub type ExternFn =
    Arc<dyn Fn(&mut ExternInvocation<'_>) -> Result<(), RuntimeError> + Send + Sync>;

/// Dispatch table from extern-op name to kernel.
#[derive(Clone)]
pub struct KernelRegistry {
    kernels: HashMap<String, (ExternFn, bool /* whole batch */)>,
}

impl std::fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.kernels.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("KernelRegistry").field("kernels", &names).finish()
    }
}

impl Default for KernelRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl KernelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        KernelRegistry {
            kernels: HashMap::new(),
        }
    }

    /// A registry pre-loaded with the standard-library kernels.
    pub fn with_builtins() -> Self {
        let mut r = KernelRegistry::new();
        r.register("softmax_forward", softmax_forward);
        r.register("softmax_backward", softmax_backward);
        r.register("softmax_loss_forward", softmax_loss_forward);
        r.register("softmax_loss_backward", softmax_loss_backward);
        r.register("l2_loss_forward", l2_loss_forward);
        r.register("l2_loss_backward", l2_loss_backward);
        r.register("lrn_forward", lrn_forward);
        r.register("lrn_backward", lrn_backward);
        r.register_whole_batch("batch_norm_forward", batch_norm_forward);
        r.register_whole_batch("batch_norm_backward", batch_norm_backward);
        r.register_dropout();
        r
    }

    /// Registers the dropout kernel pair. Forward draws a fresh Bernoulli
    /// mask per pass (a shared counter advances on each batch's first
    /// item) and records it in the mask state buffer, which backward
    /// replays — so the two passes of one iteration agree while
    /// iterations differ.
    pub fn register_dropout(&mut self) {
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let fwd_counter = counter.clone();
        self.register("dropout_forward", move |inv| {
            let ratio = inv.attr_or("ratio", 0.5) as f32;
            let seed = inv.attr_or("seed", 1.0) as u64;
            let item = inv.item.unwrap_or(0);
            let pass = if item == 0 {
                fwd_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            } else {
                fwd_counter.load(std::sync::atomic::Ordering::Relaxed).saturating_sub(1)
            };
            let keep_scale = 1.0 / (1.0 - ratio);
            let n = inv.per_item[0];
            for i in 0..n {
                let h = splitmix(
                    seed ^ pass.wrapping_mul(0x9e3779b97f4a7c15)
                        ^ (item as u64) << 32
                        ^ i as u64,
                );
                let keep = (h >> 11) as f32 / (1u64 << 53) as f32 >= ratio;
                let m = if keep { keep_scale } else { 0.0 };
                inv.buf_mut(2)[i] = m;
                let x = inv.buf(0)[i];
                inv.buf_mut(1)[i] = x * m;
            }
            Ok(())
        });
        self.register("dropout_backward", move |inv| {
            // bufs: [in, out, out_grad, in_grad, mask]
            let n = inv.per_item[0];
            for i in 0..n {
                let g = inv.buf(2)[i] * inv.buf(4)[i];
                inv.buf_mut(3)[i] += g;
            }
            Ok(())
        });
    }

    /// Registers a per-item kernel.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut ExternInvocation<'_>) -> Result<(), RuntimeError> + Send + Sync + 'static,
    ) {
        self.kernels.insert(name.into(), (Arc::new(f), false));
    }

    /// Registers a kernel that runs once per pass with whole-batch
    /// buffers.
    pub fn register_whole_batch(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut ExternInvocation<'_>) -> Result<(), RuntimeError> + Send + Sync + 'static,
    ) {
        self.kernels.insert(name.into(), (Arc::new(f), true));
    }

    /// Looks up a kernel; the flag is `true` for whole-batch kernels.
    pub fn get(&self, name: &str) -> Result<(&ExternFn, bool), RuntimeError> {
        self.kernels
            .get(name)
            .map(|(f, w)| (f, *w))
            .ok_or_else(|| RuntimeError::UnknownExtern {
                op: name.to_string(),
            })
    }
}

// ---------------------------------------------------------------------
// Built-in kernels. Buffer ABIs follow latte-core's synthesis order:
// forward  = [src values...] ++ [own value] ++ [state...]
// backward = [src values...] ++ [own value, own grad] ++ [src grads...]
//            ++ [state...]
// ---------------------------------------------------------------------

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn softmax(input: &[f32], out: &mut [f32]) {
    let max = input.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (o, &x) in out.iter_mut().zip(input) {
        *o = (x - max).exp();
        sum += *o;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// `softmax`: buffers `[in, out]`.
fn softmax_forward(inv: &mut ExternInvocation<'_>) -> Result<(), RuntimeError> {
    let (input, out) = inv.buf_pair_mut(0, 1);
    softmax(input, out);
    Ok(())
}

/// `softmax` backward: buffers `[in, out, out_grad, in_grad]`.
/// `in_grad += out ⊙ (out_grad - <out_grad, out>)`.
fn softmax_backward(inv: &mut ExternInvocation<'_>) -> Result<(), RuntimeError> {
    let dot: f32 = inv.buf(1).iter().zip(inv.buf(2)).map(|(o, g)| o * g).sum();
    let out = inv.buf(1).to_vec();
    let gout = inv.buf(2).to_vec();
    let gin = inv.buf_mut(3);
    for ((gi, o), g) in gin.iter_mut().zip(&out).zip(&gout) {
        *gi += o * (g - dot);
    }
    Ok(())
}

/// `softmax_loss`: buffers `[pred, label, loss, prob]`.
fn softmax_loss_forward(inv: &mut ExternInvocation<'_>) -> Result<(), RuntimeError> {
    let (pred, prob) = inv.buf_pair_mut(0, 3);
    softmax(pred, prob);
    let label = inv.buf(1)[0] as usize;
    let n = inv.per_item[0];
    if label >= n {
        return Err(RuntimeError::Malformed {
            detail: format!("label {label} out of range for {n} classes"),
        });
    }
    let p = inv.buf(3)[label].max(1e-12);
    inv.buf_mut(2)[0] = -p.ln();
    Ok(())
}

/// `softmax_loss` backward: buffers
/// `[pred, label, loss, loss_grad, pred_grad, label_grad, prob]`.
/// `pred_grad += (prob - onehot(label)) / batch`.
fn softmax_loss_backward(inv: &mut ExternInvocation<'_>) -> Result<(), RuntimeError> {
    let label = inv.buf(1)[0] as usize;
    let scale = 1.0 / inv.batch as f32;
    let prob = inv.buf(6).to_vec();
    let gpred = inv.buf_mut(4);
    for (i, (g, &p)) in gpred.iter_mut().zip(&prob).enumerate() {
        let onehot = if i == label { 1.0 } else { 0.0 };
        *g += (p - onehot) * scale;
    }
    Ok(())
}

/// `l2_loss`: buffers `[pred, target, loss]`; `loss = ½‖pred - target‖²`.
fn l2_loss_forward(inv: &mut ExternInvocation<'_>) -> Result<(), RuntimeError> {
    let loss: f32 = inv
        .buf(0)
        .iter()
        .zip(inv.buf(1))
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    inv.buf_mut(2)[0] = 0.5 * loss;
    Ok(())
}

/// `l2_loss` backward: buffers
/// `[pred, target, loss, loss_grad, pred_grad, target_grad]`.
fn l2_loss_backward(inv: &mut ExternInvocation<'_>) -> Result<(), RuntimeError> {
    let scale = 1.0 / inv.batch as f32;
    let pred = inv.buf(0).to_vec();
    let target = inv.buf(1).to_vec();
    let gpred = inv.buf_mut(4);
    for ((g, p), t) in gpred.iter_mut().zip(&pred).zip(&target) {
        *g += (p - t) * scale;
    }
    Ok(())
}

/// Local response normalization across channels (AlexNet §3.3).
///
/// Buffers `[in, out, scale]`; layout `(y, x, c)` with `c` innermost;
/// attrs: `channels`, `size` (window), `alpha`, `beta`, `k`.
fn lrn_forward(inv: &mut ExternInvocation<'_>) -> Result<(), RuntimeError> {
    let c = inv.attr_or("channels", 1.0) as usize;
    let size = inv.attr_or("size", 5.0) as usize;
    let alpha = inv.attr_or("alpha", 1e-4) as f32;
    let beta = inv.attr_or("beta", 0.75) as f32;
    let k = inv.attr_or("k", 1.0) as f32;
    let n = inv.per_item[0];
    let spatial = n / c;
    let half = size / 2;
    let input = inv.buf(0).to_vec();
    {
        let scale = inv.buf_mut(2);
        for s in 0..spatial {
            for ch in 0..c {
                let lo = ch.saturating_sub(half);
                let hi = (ch + half).min(c - 1);
                let mut acc = 0.0;
                for w in lo..=hi {
                    let v = input[s * c + w];
                    acc += v * v;
                }
                scale[s * c + ch] = k + alpha / size as f32 * acc;
            }
        }
    }
    let scale = inv.buf(2).to_vec();
    let out = inv.buf_mut(1);
    for ((o, &x), &sc) in out.iter_mut().zip(&input).zip(&scale) {
        *o = x * sc.powf(-beta);
    }
    Ok(())
}

/// LRN backward: buffers `[in, out, out_grad, in_grad, scale]`.
fn lrn_backward(inv: &mut ExternInvocation<'_>) -> Result<(), RuntimeError> {
    let c = inv.attr_or("channels", 1.0) as usize;
    let size = inv.attr_or("size", 5.0) as usize;
    let alpha = inv.attr_or("alpha", 1e-4) as f32;
    let beta = inv.attr_or("beta", 0.75) as f32;
    let n = inv.per_item[0];
    let spatial = n / c;
    let half = size / 2;
    let input = inv.buf(0).to_vec();
    let out = inv.buf(1).to_vec();
    let gout = inv.buf(2).to_vec();
    let scale = inv.buf(4).to_vec();
    let gin = inv.buf_mut(3);
    // d in[j] = gout[j] * scale[j]^-beta
    //   - 2 alpha beta / size * in[j] * Σ_{i: j in window(i)} gout[i]*out[i]/scale[i]
    for s in 0..spatial {
        for ch in 0..c {
            let j = s * c + ch;
            let mut acc = gout[j] * scale[j].powf(-beta);
            let lo = ch.saturating_sub(half);
            let hi = (ch + half).min(c - 1);
            let mut cross = 0.0;
            for w in lo..=hi {
                let i = s * c + w;
                cross += gout[i] * out[i] / scale[i];
            }
            acc -= 2.0 * alpha * beta / size as f32 * input[j] * cross;
            gin[j] += acc;
        }
    }
    Ok(())
}

/// Batch normalization (whole batch): buffers `[in, out, mean, var]` with
/// `mean`/`var` shared state of length `channels`. Layout `(…, c)` with
/// `c` innermost; attrs: `channels`, `eps`.
fn batch_norm_forward(inv: &mut ExternInvocation<'_>) -> Result<(), RuntimeError> {
    let c = inv.attr_or("channels", 1.0) as usize;
    let eps = inv.attr_or("eps", 1e-5) as f32;
    let n = inv.per_item[0];
    let spatial = n / c;
    let batch = inv.batch;
    let count = (batch * spatial) as f32;
    let input = inv.buf(0).to_vec();
    {
        let mean = inv.buf_mut(2);
        mean.fill(0.0);
        for b in 0..batch {
            for s in 0..spatial {
                for ch in 0..c {
                    mean[ch] += input[b * n + s * c + ch];
                }
            }
        }
        for m in mean.iter_mut() {
            *m /= count;
        }
    }
    let mean = inv.buf(2).to_vec();
    {
        let var = inv.buf_mut(3);
        var.fill(0.0);
        for b in 0..batch {
            for s in 0..spatial {
                for ch in 0..c {
                    let d = input[b * n + s * c + ch] - mean[ch];
                    var[ch] += d * d;
                }
            }
        }
        for v in var.iter_mut() {
            *v /= count;
        }
    }
    let var = inv.buf(3).to_vec();
    let out = inv.buf_mut(1);
    for b in 0..batch {
        for s in 0..spatial {
            for ch in 0..c {
                let i = b * n + s * c + ch;
                out[i] = (input[i] - mean[ch]) / (var[ch] + eps).sqrt();
            }
        }
    }
    Ok(())
}

/// Batch-norm backward (whole batch): buffers
/// `[in, out, out_grad, in_grad, mean, var]`.
fn batch_norm_backward(inv: &mut ExternInvocation<'_>) -> Result<(), RuntimeError> {
    let c = inv.attr_or("channels", 1.0) as usize;
    let eps = inv.attr_or("eps", 1e-5) as f32;
    let n = inv.per_item[0];
    let spatial = n / c;
    let batch = inv.batch;
    let count = (batch * spatial) as f32;
    let xhat = inv.buf(1).to_vec(); // out == normalized input
    let gout = inv.buf(2).to_vec();
    let var = inv.buf(5).to_vec();
    // Standard BN backward in terms of xhat:
    // gin = (gout - mean(gout) - xhat * mean(gout ⊙ xhat)) / sqrt(var+eps)
    let mut mean_g = vec![0.0f32; c];
    let mut mean_gx = vec![0.0f32; c];
    for b in 0..batch {
        for s in 0..spatial {
            for ch in 0..c {
                let i = b * n + s * c + ch;
                mean_g[ch] += gout[i];
                mean_gx[ch] += gout[i] * xhat[i];
            }
        }
    }
    for ch in 0..c {
        mean_g[ch] /= count;
        mean_gx[ch] /= count;
    }
    let gin = inv.buf_mut(3);
    for b in 0..batch {
        for s in 0..spatial {
            for ch in 0..c {
                let i = b * n + s * c + ch;
                gin[i] +=
                    (gout[i] - mean_g[ch] - xhat[i] * mean_gx[ch]) / (var[ch] + eps).sqrt();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invoke<'a>(
        attrs: &'a BTreeMap<String, f64>,
        batch: usize,
        bufs: Vec<&'a mut [f32]>,
    ) -> ExternInvocation<'a> {
        let per_item = bufs.iter().map(|b| b.len()).collect();
        let batched = bufs.iter().map(|_| true).collect();
        ExternInvocation {
            attrs,
            batch,
            item: Some(0),
            per_item,
            batched,
            bufs,
        }
    }

    #[test]
    fn softmax_normalizes() {
        let attrs = BTreeMap::new();
        let mut input = [1.0f32, 2.0, 3.0];
        let mut out = [0.0f32; 3];
        let mut inv = invoke(&attrs, 1, vec![&mut input, &mut out]);
        softmax_forward(&mut inv).unwrap();
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(out[2] > out[1] && out[1] > out[0]);
    }

    #[test]
    fn softmax_loss_matches_manual_cross_entropy() {
        let attrs = BTreeMap::new();
        let mut pred = [0.5f32, 1.5, 0.0];
        let mut label = [1.0f32];
        let mut loss = [0.0f32];
        let mut prob = [0.0f32; 3];
        let mut inv = invoke(
            &attrs,
            1,
            vec![&mut pred, &mut label, &mut loss, &mut prob],
        );
        softmax_loss_forward(&mut inv).unwrap();
        let expected = -(prob[1].ln());
        assert!((loss[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn softmax_loss_gradient_sums_to_zero() {
        let attrs = BTreeMap::new();
        let mut pred = [0.5f32, 1.5, 0.0];
        let mut label = [2.0f32];
        let mut loss = [0.0f32];
        let mut prob = [0.0f32; 3];
        {
            let mut inv = invoke(
                &attrs,
                1,
                vec![&mut pred, &mut label, &mut loss, &mut prob],
            );
            softmax_loss_forward(&mut inv).unwrap();
        }
        let mut gloss = [0.0f32];
        let mut gpred = [0.0f32; 3];
        let mut glabel = [0.0f32];
        let mut inv = invoke(
            &attrs,
            1,
            vec![
                &mut pred, &mut label, &mut loss, &mut gloss, &mut gpred, &mut glabel,
                &mut prob,
            ],
        );
        softmax_loss_backward(&mut inv).unwrap();
        let sum: f32 = gpred.iter().sum();
        assert!(sum.abs() < 1e-6, "softmax grad rows sum to zero, got {sum}");
        assert!(gpred[2] < 0.0, "true-class grad is negative");
    }

    #[test]
    fn l2_loss_and_gradient() {
        let attrs = BTreeMap::new();
        let mut pred = [1.0f32, 2.0];
        let mut tgt = [0.0f32, 0.0];
        let mut loss = [0.0f32];
        {
            let mut inv = invoke(&attrs, 1, vec![&mut pred, &mut tgt, &mut loss]);
            l2_loss_forward(&mut inv).unwrap();
        }
        assert!((loss[0] - 2.5).abs() < 1e-6);
        let mut gl = [0.0f32];
        let mut gp = [0.0f32; 2];
        let mut gt = [0.0f32; 2];
        let mut inv = invoke(
            &attrs,
            1,
            vec![&mut pred, &mut tgt, &mut loss, &mut gl, &mut gp, &mut gt],
        );
        l2_loss_backward(&mut inv).unwrap();
        assert_eq!(gp, [1.0, 2.0]);
    }

    #[test]
    fn lrn_matches_direct_formula() {
        let mut attrs = BTreeMap::new();
        attrs.insert("channels".to_string(), 4.0);
        attrs.insert("size".to_string(), 3.0);
        attrs.insert("alpha".to_string(), 0.3);
        attrs.insert("beta".to_string(), 0.75);
        attrs.insert("k".to_string(), 1.0);
        let mut input = [1.0f32, 2.0, 3.0, 4.0];
        let mut out = [0.0f32; 4];
        let mut scale = [0.0f32; 4];
        let mut inv = invoke(&attrs, 1, vec![&mut input, &mut out, &mut scale]);
        lrn_forward(&mut inv).unwrap();
        // Channel 0 window = {0, 1}: scale = 1 + 0.1*(1+4).
        let s0 = 1.0 + 0.3 / 3.0 * 5.0;
        assert!((scale[0] - s0).abs() < 1e-5);
        assert!((out[0] - 1.0 * s0.powf(-0.75)).abs() < 1e-5);
    }

    #[test]
    fn batch_norm_zero_mean_unit_var() {
        let mut attrs = BTreeMap::new();
        attrs.insert("channels".to_string(), 1.0);
        let mut input = [1.0f32, 2.0, 3.0, 4.0];
        let mut out = [0.0f32; 4];
        let mut mean = [0.0f32];
        let mut var = [0.0f32];
        let mut inv = ExternInvocation {
            attrs: &attrs,
            batch: 4,
            item: None,
            per_item: vec![1, 1, 1, 1],
            batched: vec![true, true, false, false],
            bufs: vec![&mut input, &mut out, &mut mean, &mut var],
        };
        batch_norm_forward(&mut inv).unwrap();
        assert!((mean[0] - 2.5).abs() < 1e-5);
        let m: f32 = out.iter().sum::<f32>() / 4.0;
        assert!(m.abs() < 1e-5);
    }

    #[test]
    fn registry_lookup_and_custom_registration() {
        let mut r = KernelRegistry::with_builtins();
        assert!(r.get("softmax_forward").is_ok());
        assert!(matches!(
            r.get("nope"),
            Err(RuntimeError::UnknownExtern { .. })
        ));
        r.register("custom", |inv| {
            inv.buf_mut(0)[0] = 42.0;
            Ok(())
        });
        let (f, whole) = r.get("custom").unwrap();
        assert!(!whole);
        let attrs = BTreeMap::new();
        let mut data = [0.0f32];
        let mut inv = invoke(&attrs, 1, vec![&mut data]);
        f(&mut inv).unwrap();
        assert_eq!(data[0], 42.0);
    }
}
