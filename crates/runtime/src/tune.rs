//! Schedule autotuning with a persistent on-disk tuning cache — the
//! LoopStack-style search layer over the compiler's scheduling knobs.
//!
//! The compiler schedules every network with fixed heuristics: the
//! `PREFERRED_TILES` ladder, unconditional parallel marking of tiled
//! groups, the GEMM engine's default `(kc, nc, mc)` blocking. Those
//! constants are right *on average* and wrong per machine — a single-core
//! CI container pays fan-out overhead on every "parallel" group, and the
//! best cache blocking depends on the actual cache hierarchy. The
//! [`Tuner`] closes the loop: it enumerates a **bounded** per-shape
//! configuration space, measures each candidate with warm-up plus
//! median-of-N timing on one long-lived [`WorkerPool`], and persists the
//! winner so every later compile of the same network replays the schedule
//! with **zero re-measurements** (counter-asserted via
//! [`TunerStats::measurements`], mirroring the `TraceCache` `passes_run`
//! proof).
//!
//! # Search space
//!
//! Three axes, all **bit-preserving** (see [`TunedSchedule`]):
//!
//! 1. Per-group serial/parallel decisions — each compute group's measured
//!    parallel time must beat its serial time (with hysteresis) to stay
//!    parallel.
//! 2. Tile-size overrides fed into the tiling/fusion passes.
//! 3. GEMM `(kc, nc, mc)` blocking with `kc` **pinned to the default**:
//!    `kc` is the reduction block — changing it reassociates the k-sum
//!    and changes bits. `nc`/`mc` only repartition output tiles.
//!
//! # Cache key and invalidation
//!
//! Entries are keyed by `(program fingerprint, batch, thread count, CPU
//! features)`. The fingerprint comes from a *reference compile at the
//! default schedule* — [`CompiledNet::fingerprint`] hashes the scheduled
//! program, so the tuned compile's own fingerprint would differ per
//! schedule. Thread count and [`cpu_features`] make schedules tuned on
//! one machine class unreplayable on another; any key mismatch is a
//! miss, so stale entries are invalidated by simply not matching. A
//! corrupt cache file (bad magic, short read, CRC mismatch) is rejected
//! with [`TuneError::Corrupt`] — never silently treated as empty.
//!
//! The file format follows `runtime::checkpoint`: magic bytes,
//! little-endian fixed-width integers, length-prefixed strings, and a
//! trailing CRC32 seal, written atomically (temp file + rename).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use latte_core::dsl::Net;
use latte_core::{compile, compile_tuned, CompileError, CompiledNet, OptLevel, TunedSchedule};
use latte_tensor::gemm::{cpu_features, Gemm, Transpose};

use crate::checkpoint::crc32;
use crate::error::RuntimeError;
use crate::exec::{CompiledProgram, ExecConfig, Executor};
use crate::pool::WorkerPool;
use crate::registry::KernelRegistry;

/// Magic bytes opening a tuning-cache file.
const MAGIC: &[u8; 8] = b"LATTEtn1";

/// Warm-up runs discarded before timing.
const WARMUP: usize = 2;
/// Timed rounds per candidate; the median is the score.
const RUNS: usize = 9;
/// A candidate must beat the incumbent by this factor to replace it —
/// hysteresis so noise never flips a decision away from the safe
/// default. The margin is deliberately wide (10%): on shared hosts the
/// noise floor of a median-of-[`RUNS`] sits at several percent, and a
/// "win" below it is indistinguishable from a background-load artifact.
/// The tuner exists to catch order-of-magnitude schedule mistakes
/// (dispatching a cheap group to the pool), not to chase micro-wins it
/// cannot reliably reproduce.
const HYSTERESIS: f64 = 0.90;

/// Tile-size override candidates (`None` = the compiler's preferred
/// ladder).
const TILE_CANDIDATES: [Option<usize>; 3] = [None, Some(4), Some(8)];

/// GEMM blocking candidates. `kc` is pinned to the engine default (256)
/// on every row — varying it would reassociate the k-reduction and break
/// bit-identity; `nc`/`mc` sweep the L3/L2 partition.
const BLOCKING_CANDIDATES: [(usize, usize, usize); 5] = [
    (256, 512, 64), // engine default
    (256, 256, 32),
    (256, 512, 128),
    (256, 1024, 64),
    (256, 256, 128),
];

/// Counters proving what the tuner did — the zero-re-measurement
/// guarantee is asserted against [`TunerStats::measurements`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunerStats {
    /// Lookups answered from the cache (no measuring).
    pub cache_hits: usize,
    /// Lookups that triggered a measurement campaign.
    pub cache_misses: usize,
    /// Timed executions performed (warm-up included). Flat across a
    /// cache hit — the on-disk schedule replays without running anything.
    pub measurements: usize,
}

/// Autotuning failure.
#[derive(Debug)]
pub enum TuneError {
    /// The cache file exists but is not a valid tuning cache (bad magic,
    /// truncated, or CRC mismatch). Corrupt caches are rejected, never
    /// treated as empty: overwriting one silently would mask disk
    /// faults.
    Corrupt {
        /// What failed to parse.
        detail: String,
    },
    /// Reading or writing the cache file failed.
    Io {
        /// Offending path.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A candidate failed to compile (a compiler bug surfaced by an
    /// unusual schedule, not a user error).
    Compile(CompileError),
    /// Lowering or instantiating a measurement executor failed.
    Runtime(RuntimeError),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::Corrupt { detail } => write!(f, "corrupt tuning cache: {detail}"),
            TuneError::Io { path, source } => {
                write!(f, "tuning cache i/o failure at {}: {source}", path.display())
            }
            TuneError::Compile(e) => write!(f, "tuning candidate failed to compile: {e}"),
            TuneError::Runtime(e) => write!(f, "tuning measurement failed: {e}"),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::Io { source, .. } => Some(source),
            TuneError::Compile(e) => Some(e),
            TuneError::Runtime(e) => Some(e),
            TuneError::Corrupt { .. } => None,
        }
    }
}

impl From<CompileError> for TuneError {
    fn from(e: CompileError) -> Self {
        TuneError::Compile(e)
    }
}

impl From<RuntimeError> for TuneError {
    fn from(e: RuntimeError) -> Self {
        TuneError::Runtime(e)
    }
}

/// One cached winner: the schedule plus the median time it measured, so
/// reports can print what the tuner believed without re-measuring.
#[derive(Debug, Clone, PartialEq)]
struct CacheEntry {
    schedule: TunedSchedule,
    score_ms: f64,
}

/// The schedule autotuner: a measurement harness over one persistent
/// [`WorkerPool`] plus an on-disk cache of winners.
///
/// The pool is created once per tuner and reused for every candidate —
/// blocking candidates are installed with
/// [`WorkerPool::reconfigure_gemm`], never by spawning a fresh team — so
/// tuning obeys the same no-steady-state-spawning discipline as
/// execution.
pub struct Tuner {
    path: PathBuf,
    entries: BTreeMap<String, CacheEntry>,
    pool: Arc<WorkerPool>,
    stats: TunerStats,
}

impl std::fmt::Debug for Tuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tuner")
            .field("path", &self.path)
            .field("entries", &self.entries.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Tuner {
    /// Opens (or starts) the tuning cache at `path`, driving `threads`
    /// workers. A missing file is an empty cache; an unreadable or
    /// corrupt file is an error.
    ///
    /// # Errors
    ///
    /// [`TuneError::Corrupt`] for an invalid cache file, [`TuneError::Io`]
    /// when reading fails for any reason other than the file not
    /// existing.
    pub fn with_path(path: impl AsRef<std::path::Path>, threads: usize) -> Result<Self, TuneError> {
        let path = path.as_ref().to_path_buf();
        let entries = match std::fs::read(&path) {
            Ok(bytes) => parse_cache(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(TuneError::Io { path, source: e }),
        };
        Ok(Tuner {
            path,
            entries,
            pool: Arc::new(WorkerPool::new(threads)),
            stats: TunerStats::default(),
        })
    }

    /// Builds a tuner from the environment, or `None` when autotuning is
    /// not enabled. `LATTE_TUNE=1` (or `true`/`on`) enables it;
    /// `LATTE_TUNE_CACHE=<path>` overrides the cache location (default
    /// `latte_tune.cache` in the working directory); `LATTE_THREADS`
    /// sets the pool width as everywhere else.
    ///
    /// # Errors
    ///
    /// As [`Tuner::with_path`].
    pub fn from_env() -> Option<Result<Self, TuneError>> {
        let v = std::env::var("LATTE_TUNE").ok()?;
        let on = v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on");
        if !on {
            return None;
        }
        let path = std::env::var_os("LATTE_TUNE_CACHE")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("latte_tune.cache"));
        Some(Tuner::with_path(path, ExecConfig::env_threads()))
    }

    /// The tuner's counters.
    pub fn stats(&self) -> TunerStats {
        self.stats
    }

    /// Cached schedules currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no schedules.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The worker pool candidates are measured on (and tuned executors
    /// should be instantiated on, so the measured blocking is live).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Returns the tuned schedule for `net` at `opt`, measuring only on
    /// a cache miss, and the network compiled under that schedule.
    ///
    /// The cache key derives from a reference compile at the default
    /// schedule, so the second call for any network — including in a
    /// later process pointed at the same cache file — is answered
    /// entirely from the cache: [`TunerStats::measurements`] stays flat.
    ///
    /// # Errors
    ///
    /// Compilation, lowering, or cache-write failures.
    pub fn tune_net(
        &mut self,
        net: &Net,
        opt: &OptLevel,
    ) -> Result<(TunedSchedule, CompiledNet), TuneError> {
        let reference = compile(net, opt)?;
        let key = net_key(&reference, self.pool.threads());
        if let Some(entry) = self.entries.get(&key) {
            self.stats.cache_hits += 1;
            let schedule = entry.schedule.clone();
            let compiled = compile_tuned(net, opt, &schedule)?;
            return Ok((schedule, compiled));
        }
        self.stats.cache_misses += 1;
        let (schedule, score_ms) = self.search(net, opt, reference)?;
        let compiled = compile_tuned(net, opt, &schedule)?;
        self.entries.insert(key, CacheEntry { schedule: schedule.clone(), score_ms });
        self.save()?;
        Ok((schedule, compiled))
    }

    /// Returns the tuned `(kc, nc, mc)` blocking for a raw `m × n × k`
    /// GEMM on this pool, measuring only on a cache miss.
    ///
    /// # Errors
    ///
    /// Cache-write failures. (Blocking candidates are valid by
    /// construction, so reconfiguration cannot fail.)
    pub fn tune_gemm(&mut self, m: usize, n: usize, k: usize) -> Result<(usize, usize, usize), TuneError> {
        let key = format!("gemm:{m}x{n}x{k}|t{}|{}", self.pool.threads(), cpu_features());
        if let Some(entry) = self.entries.get(&key) {
            self.stats.cache_hits += 1;
            return Ok(entry.schedule.gemm_blocking.unwrap_or_else(|| Gemm::new().blocking()));
        }
        self.stats.cache_misses += 1;
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        // Round-robin rounds (see `search`): every round times each
        // candidate once, so load spikes hit all candidates equally.
        let pool = Arc::clone(&self.pool);
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); BLOCKING_CANDIDATES.len()];
        for run in 0..WARMUP + RUNS {
            for (i, &blocking) in BLOCKING_CANDIDATES.iter().enumerate() {
                pool.reconfigure_gemm(Some(blocking))
                    .expect("blocking candidates are aligned by construction");
                let start = Instant::now();
                c.fill(0.0);
                Gemm::compute_parallel(
                    &*pool,
                    Transpose::No,
                    Transpose::No,
                    m,
                    n,
                    k,
                    &a,
                    &b,
                    &mut c,
                );
                let ms = start.elapsed().as_secs_f64() * 1e3;
                self.stats.measurements += 1;
                if run >= WARMUP {
                    samples[i].push(ms);
                }
            }
        }
        // The default (row 0) is the incumbent; challengers must win by
        // the paired-round rule.
        let mut best_i = 0;
        for i in 1..samples.len() {
            if challenger_wins(&samples[best_i], &samples[i]) {
                best_i = i;
            }
        }
        let best = BLOCKING_CANDIDATES[best_i];
        let best_ms = median(samples.swap_remove(best_i));
        self.pool
            .reconfigure_gemm(Some(best))
            .expect("winner already validated");
        let schedule = TunedSchedule {
            gemm_blocking: Some(best),
            ..TunedSchedule::default()
        };
        self.entries.insert(key, CacheEntry { schedule, score_ms: best_ms });
        self.save()?;
        Ok(best)
    }

    /// Lowers `compiled` and instantiates an executor on the tuner's
    /// pool, with the schedule's GEMM blocking installed.
    ///
    /// # Errors
    ///
    /// Lowering or allocation failures.
    pub fn executor_for(
        &self,
        compiled: CompiledNet,
        schedule: &TunedSchedule,
    ) -> Result<Executor, TuneError> {
        self.pool
            .reconfigure_gemm(schedule.gemm_blocking)
            .map_err(|e| TuneError::Runtime(RuntimeError::InvalidConfig { detail: e.to_string() }))?;
        let cfg = ExecConfig {
            threads: self.pool.threads(),
            arena: false,
            gemm_blocking: schedule.gemm_blocking,
        };
        let program = CompiledProgram::lower(compiled, &KernelRegistry::with_builtins(), cfg)?;
        Ok(program.instantiate(Arc::clone(&self.pool))?)
    }

    /// The measurement campaign for one network: per-group
    /// serial/parallel decisions, then the tile override, then the GEMM
    /// blocking — each axis measured on the winner of the previous one.
    ///
    /// Within an axis, candidates are timed **round-robin**: every round
    /// runs each candidate once, back-to-back, and the median is taken
    /// per candidate across rounds. A paired comparison is what makes
    /// the decision robust on shared hosts — a background-load window
    /// hits all candidates of the round equally instead of polluting one
    /// candidate's entire campaign and handing the win to whoever was
    /// measured during a quiet spell.
    fn search(
        &mut self,
        net: &Net,
        opt: &OptLevel,
        reference: CompiledNet,
    ) -> Result<(TunedSchedule, f64), TuneError> {
        // Axis 1: per-group parallel vs serial. The default compile
        // (every tiled group parallel) and the all-serial compile are
        // timed group by group in alternating rounds; a group goes to
        // the pool only where the pool demonstrably wins. With one
        // thread the axis is decided, not measured: a fan-out of one
        // runs the same lanes on a worker instead of the caller, so it
        // can only add wake-ups — all groups go serial for free.
        // Only groups the parallelize pass actually marked can differ
        // between the two compiles; inert groups (barriers, untiled)
        // stay out of the map — a decision for them would not change
        // execution, only make equal schedules compare unequal.
        let eligible: Vec<String> = reference
            .stats
            .group_parallel
            .iter()
            .filter(|(_, parallel)| *parallel)
            .map(|(name, _)| name.clone())
            .collect();
        let mut schedule = TunedSchedule::default();
        if self.pool.threads() <= 1 {
            for name in eligible {
                schedule.group_parallel.insert(name, false);
            }
        } else {
            let serial_net = compile_tuned(net, opt, &TunedSchedule::all_serial())?;
            let [par_groups, ser_groups] = self.measure_groups_paired(reference, serial_net)?;
            for name in eligible {
                // Serial is the incumbent — fan-out that buys nothing
                // still costs wake-ups.
                let parallel = match (par_groups.get(&name), ser_groups.get(&name)) {
                    (Some(par), Some(ser)) => challenger_wins(ser, par),
                    _ => false,
                };
                schedule.group_parallel.insert(name, parallel);
            }
        }

        // Axis 2: tile override, measured whole-net under the group
        // decisions from axis 1. Candidate 0 (no override) is the
        // incumbent.
        let mut tile_nets = Vec::with_capacity(TILE_CANDIDATES.len());
        for &tile in &TILE_CANDIDATES {
            tile_nets.push(compile_tuned(net, opt, &TunedSchedule { tile_size: tile, ..schedule.clone() })?);
        }
        let tile_samples = self.measure_round_robin(tile_nets)?;
        let mut best = 0;
        for i in 1..tile_samples.len() {
            if challenger_wins(&tile_samples[best], &tile_samples[i]) {
                best = i;
            }
        }
        schedule.tile_size = TILE_CANDIDATES[best];

        // Axis 3: GEMM blocking (kc pinned). One executor for the tuned
        // compile; each round installs every candidate in the pool's
        // engines in turn and times one iteration under it.
        let compiled = compile_tuned(net, opt, &schedule)?;
        let program = self.lower(compiled)?;
        let mut exec = program.instantiate(Arc::clone(&self.pool))?;
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); BLOCKING_CANDIDATES.len()];
        for run in 0..WARMUP + RUNS {
            for (i, &blocking) in BLOCKING_CANDIDATES.iter().enumerate() {
                self.pool
                    .reconfigure_gemm(Some(blocking))
                    .expect("blocking candidates are aligned by construction");
                let start = Instant::now();
                exec.forward();
                exec.backward();
                let ms = start.elapsed().as_secs_f64() * 1e3;
                self.stats.measurements += 1;
                if run >= WARMUP {
                    samples[i].push(ms);
                }
            }
        }
        let mut best = 0;
        for i in 1..samples.len() {
            if challenger_wins(&samples[best], &samples[i]) {
                best = i;
            }
        }
        // `None` (engine default) unless a challenger beat row 0.
        schedule.gemm_blocking = (best != 0).then(|| BLOCKING_CANDIDATES[best]);
        self.pool
            .reconfigure_gemm(schedule.gemm_blocking)
            .expect("winner already validated");
        Ok((schedule, median(samples.swap_remove(best))))
    }

    /// Per-round per-group forward+backward milliseconds for two
    /// compiles, timed in alternating rounds so both see the same load
    /// windows.
    fn measure_groups_paired(
        &mut self,
        a: CompiledNet,
        b: CompiledNet,
    ) -> Result<[BTreeMap<String, Vec<f64>>; 2], TuneError> {
        let pa = self.lower(a)?;
        let pb = self.lower(b)?;
        let mut execs = [
            pa.instantiate(Arc::clone(&self.pool))?,
            pb.instantiate(Arc::clone(&self.pool))?,
        ];
        let mut samples: [BTreeMap<String, Vec<f64>>; 2] = [BTreeMap::new(), BTreeMap::new()];
        for run in 0..WARMUP + RUNS {
            for (slot, exec) in execs.iter_mut().enumerate() {
                let timed: Vec<(String, f64)> = exec
                    .forward_timed()
                    .into_iter()
                    .chain(exec.backward_timed())
                    .collect();
                self.stats.measurements += 1;
                if run < WARMUP {
                    continue;
                }
                for (name, ms) in timed {
                    samples[slot].entry(name).or_default().push(ms);
                }
            }
        }
        Ok(samples)
    }

    /// Per-round whole-net forward+backward milliseconds for each
    /// compile, one timed iteration of every candidate per round.
    fn measure_round_robin(&mut self, nets: Vec<CompiledNet>) -> Result<Vec<Vec<f64>>, TuneError> {
        let mut execs = Vec::with_capacity(nets.len());
        for c in nets {
            let program = self.lower(c)?;
            execs.push(program.instantiate(Arc::clone(&self.pool))?);
        }
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); execs.len()];
        for run in 0..WARMUP + RUNS {
            for (i, exec) in execs.iter_mut().enumerate() {
                let start = Instant::now();
                exec.forward();
                exec.backward();
                let ms = start.elapsed().as_secs_f64() * 1e3;
                self.stats.measurements += 1;
                if run >= WARMUP {
                    samples[i].push(ms);
                }
            }
        }
        Ok(samples)
    }

    fn lower(&self, compiled: CompiledNet) -> Result<CompiledProgram, TuneError> {
        let cfg = ExecConfig {
            threads: self.pool.threads(),
            arena: false,
            gemm_blocking: None,
        };
        Ok(CompiledProgram::lower(compiled, &KernelRegistry::with_builtins(), cfg)?)
    }

    /// Writes the cache atomically: serialize, CRC-seal, write to a temp
    /// file, sync, rename over the final path.
    fn save(&self) -> Result<(), TuneError> {
        let bytes = render_cache(&self.entries);
        let tmp = self.path.with_extension("tmp");
        let io_err = |source| TuneError::Io { path: self.path.clone(), source };
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(&bytes).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        drop(f);
        std::fs::rename(&tmp, &self.path).map_err(io_err)?;
        Ok(())
    }
}

/// The cache key for a network: reference-compile fingerprint, batch,
/// the tuner pool's thread count, and the host's micro-architecture
/// class. The pool's count (not `LATTE_THREADS`) keys the entry: two
/// tuners over the same file at different thread counts must not share
/// schedules — the parallel/serial decisions depend on the fan-out.
fn net_key(reference: &CompiledNet, threads: usize) -> String {
    format!(
        "net:{:016x}|b{}|t{}|{}",
        reference.fingerprint(),
        reference.batch,
        threads.max(1),
        cpu_features()
    )
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

/// The paired-round decision rule: the challenger replaces the incumbent
/// only if it won **every** paired round *and* its median beats the
/// incumbent's by the [`HYSTERESIS`] margin. Both conditions target
/// shared-host noise: a bursty background load can hand one side several
/// rounds or shift a median, but only a real schedule win shows up in
/// every single round *and* clears the margin. The bias is deliberately
/// conservative — a genuine win the noise floor swallows just keeps the
/// known-good default, which costs nothing; a spurious win would persist
/// a bad schedule in the cache.
fn challenger_wins(incumbent: &[f64], challenger: &[f64]) -> bool {
    debug_assert_eq!(incumbent.len(), challenger.len());
    let all_rounds = incumbent.iter().zip(challenger).all(|(inc, ch)| ch < inc);
    all_rounds && median(challenger.to_vec()) < median(incumbent.to_vec()) * HYSTERESIS
}

// ---------------------------------------------------------------------
// On-disk format
// ---------------------------------------------------------------------

fn render_cache(entries: &BTreeMap<String, CacheEntry>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (key, entry) in entries {
        put_str(&mut out, key);
        match entry.schedule.tile_size {
            Some(t) => {
                out.push(1);
                out.extend_from_slice(&(t as u32).to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0u32.to_le_bytes());
            }
        }
        match entry.schedule.gemm_blocking {
            Some((kc, nc, mc)) => {
                out.push(1);
                for v in [kc, nc, mc] {
                    out.extend_from_slice(&(v as u32).to_le_bytes());
                }
            }
            None => {
                out.push(0);
                out.extend_from_slice(&[0u8; 12]);
            }
        }
        out.push(u8::from(entry.schedule.parallel_default));
        out.extend_from_slice(&(entry.schedule.group_parallel.len() as u32).to_le_bytes());
        for (group, &parallel) in &entry.schedule.group_parallel {
            put_str(&mut out, group);
            out.push(u8::from(parallel));
        }
        out.extend_from_slice(&entry.score_ms.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn parse_cache(bytes: &[u8]) -> Result<BTreeMap<String, CacheEntry>, TuneError> {
    let corrupt = |detail: &str| TuneError::Corrupt { detail: detail.to_string() };
    if bytes.len() < MAGIC.len() + 8 {
        return Err(corrupt("file shorter than header + seal"));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let (body, seal) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(seal.try_into().expect("4-byte seal"));
    if crc32(body) != stored {
        return Err(corrupt("CRC mismatch"));
    }
    let mut cur = Cursor { bytes: &body[MAGIC.len()..] };
    let count = cur.u32()? as usize;
    let mut entries = BTreeMap::new();
    for _ in 0..count {
        let key = cur.str()?;
        let tile_flag = cur.u8()?;
        let tile_val = cur.u32()? as usize;
        let tile_size = (tile_flag != 0).then_some(tile_val);
        let blk_flag = cur.u8()?;
        let (kc, nc, mc) = (cur.u32()? as usize, cur.u32()? as usize, cur.u32()? as usize);
        let gemm_blocking = (blk_flag != 0).then_some((kc, nc, mc));
        let parallel_default = cur.u8()? != 0;
        let n_groups = cur.u32()? as usize;
        let mut group_parallel = BTreeMap::new();
        for _ in 0..n_groups {
            let name = cur.str()?;
            let parallel = cur.u8()? != 0;
            group_parallel.insert(name, parallel);
        }
        let score_ms = cur.f64()?;
        entries.insert(
            key,
            CacheEntry {
                schedule: TunedSchedule {
                    tile_size,
                    gemm_blocking,
                    parallel_default,
                    group_parallel,
                },
                score_ms,
            },
        );
    }
    if !cur.bytes.is_empty() {
        return Err(corrupt("trailing bytes after last entry"));
    }
    Ok(entries)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over the cache body.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], TuneError> {
        if self.bytes.len() < n {
            return Err(TuneError::Corrupt { detail: "truncated entry".to_string() });
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, TuneError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TuneError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn f64(&mut self) -> Result<f64, TuneError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, TuneError> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(TuneError::Corrupt { detail: "implausible string length".to_string() });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| TuneError::Corrupt { detail: "non-UTF-8 string".to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> BTreeMap<String, CacheEntry> {
        let mut groups = BTreeMap::new();
        groups.insert("conv1.fwd".to_string(), false);
        groups.insert("fc1.bwd".to_string(), true);
        let mut entries = BTreeMap::new();
        entries.insert(
            "net:00000000deadbeef|b4|t2|avx2+fma".to_string(),
            CacheEntry {
                schedule: TunedSchedule {
                    tile_size: Some(4),
                    gemm_blocking: Some((256, 1024, 64)),
                    parallel_default: false,
                    group_parallel: groups,
                },
                score_ms: 1.25,
            },
        );
        entries.insert(
            "gemm:512x512x512|t1|generic".to_string(),
            CacheEntry {
                schedule: TunedSchedule {
                    gemm_blocking: Some((256, 256, 32)),
                    ..TunedSchedule::default()
                },
                score_ms: 9.5,
            },
        );
        entries
    }

    #[test]
    fn cache_round_trips_bit_exactly() {
        let entries = sample_entries();
        let bytes = render_cache(&entries);
        let parsed = parse_cache(&bytes).expect("valid cache");
        assert_eq!(parsed, entries);
        assert_eq!(render_cache(&parsed), bytes);
    }

    #[test]
    fn corrupt_caches_are_rejected_not_emptied() {
        let entries = sample_entries();
        let good = render_cache(&entries);
        // Flip one payload byte: CRC mismatch.
        let mut flipped = good.clone();
        flipped[MAGIC.len() + 2] ^= 0x40;
        assert!(matches!(parse_cache(&flipped), Err(TuneError::Corrupt { .. })));
        // Truncate mid-entry: body CRC no longer matches either.
        assert!(parse_cache(&good[..good.len() - 9]).is_err());
        // Wrong magic.
        let mut wrong = good.clone();
        wrong[0] = b'X';
        assert!(matches!(parse_cache(&wrong), Err(TuneError::Corrupt { .. })));
        // Too short to even hold the header.
        assert!(matches!(parse_cache(b"LATTE"), Err(TuneError::Corrupt { .. })));
    }

    #[test]
    fn empty_cache_round_trips() {
        let bytes = render_cache(&BTreeMap::new());
        assert!(parse_cache(&bytes).expect("valid").is_empty());
    }
}
