//! Fault-tolerant training: a supervisor wrapping the plain
//! [`crate::solver::solve`] loop with periodic atomic checkpoints and
//! crash recovery.
//!
//! [`supervise`] drives the same forward / backward / update loop as
//! `solve`, but every `checkpoint_every` iterations it atomically writes
//! the model parameters plus training progress
//! ([`crate::checkpoint::CheckpointMeta`]) to disk. When an iteration is
//! killed — by an injected [`crate::fault::Fault::ProcessDeath`] or any
//! recoverable [`RuntimeError`] — the supervisor reloads the last valid
//! checkpoint, verifies **loss continuity** (re-running forward on the
//! exact batch the checkpoint was taken on must reproduce the recorded
//! loss), fast-forwards the data source to the checkpointed position,
//! and resumes. Checkpoint *write* failures are survived, not fatal:
//! the previous checkpoint stays valid, the failure is counted in
//! [`FaultMetrics::io_errors`], and training continues.
//!
//! Solver state (momentum / squared-gradient accumulators and the
//! solver's internal iteration counter) is checkpointed alongside the
//! weights via [`crate::solver::Solver::export_state`] and re-imported on
//! restore, so stateful solvers (SGD + momentum, RMSProp, AdaGrad,
//! AdaDelta) resume on the **bit-exact** update trajectory they would
//! have followed without the interruption — the
//! `process_death_recovers_from_checkpoint` test asserts exact
//! `final_loss` equality against an uninterrupted run under
//! `MomPolicy::Fixed`.
//!
//! With [`SupervisorConfig::health`] set, the same loop also defends
//! against *numerical* faults (DESIGN.md §9): tensor sentinels scan for
//! NaN/Inf, a [`HealthMonitor`] classifies each iteration's loss, and
//! the configured [`crate::health::AnomalyReaction`] quarantines the
//! offending batch, cuts the learning rate, and/or rolls back to the
//! last good checkpoint — spending the separate
//! [`HealthConfig::rollback_budget`], not `max_restarts`. Gradient
//! hygiene ([`crate::solver::apply_grad_hygiene`]) clips gradients and
//! vetoes the solver step outright when they are non-finite.

use std::path::PathBuf;

use crate::checkpoint::{load_checkpoint_full, save_checkpoint_full, CheckpointMeta};
use crate::data::BatchSource;
use crate::error::RuntimeError;
use crate::exec::Executor;
use crate::fault::FaultPlan;
use crate::health::{HealthConfig, HealthMonitor, LossAnomaly};
use crate::metrics::FaultMetrics;
use crate::solver::{apply_grad_hygiene, Solver};
use latte_ir::BufferKind;

/// Supervisor policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Where checkpoints are written (atomically, via a sibling temp
    /// file — see [`crate::checkpoint::save_checkpoint`]).
    pub checkpoint_path: PathBuf,
    /// Iterations between checkpoints (>= 1). An initial checkpoint is
    /// always written before the first iteration so a restore point
    /// exists from the start.
    pub checkpoint_every: u64,
    /// Restores attempted before giving up and propagating the error.
    pub max_restarts: u32,
    /// Relative tolerance for the post-restore loss continuity check.
    /// With a deterministic executor the replayed loss is bit-identical,
    /// so the default is tight; models with stochastic layers need a
    /// looser bound.
    pub continuity_rel_tol: f32,
    /// Numerical-health policy: tensor sentinels, gradient hygiene, and
    /// loss-anomaly reactions (quarantine / LR cut / rollback). `None`
    /// (the default) trains unguarded, exactly as before this policy
    /// existed — injected numerical faults then corrupt the run, which
    /// is what the negative-control tests assert.
    pub health: Option<HealthConfig>,
}

impl SupervisorConfig {
    /// A default policy writing checkpoints to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        SupervisorConfig {
            checkpoint_path: path.into(),
            checkpoint_every: 10,
            max_restarts: 3,
            continuity_rel_tol: 1e-5,
            health: None,
        }
    }

    fn validate(&self) -> Result<(), RuntimeError> {
        if self.checkpoint_every == 0 {
            return Err(RuntimeError::InvalidConfig {
                detail: "supervisor: checkpoint interval must be at least 1 iteration".into(),
            });
        }
        if self.continuity_rel_tol.is_nan() || self.continuity_rel_tol < 0.0 {
            return Err(RuntimeError::InvalidConfig {
                detail: "supervisor: continuity tolerance must be non-negative".into(),
            });
        }
        if let Some(health) = &self.health {
            health.validate()?;
        }
        Ok(())
    }
}

/// Result of a supervised (fault-tolerant) training run.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorReport {
    /// Mean loss of the first iteration.
    pub initial_loss: f32,
    /// Mean loss of the final iteration.
    pub final_loss: f32,
    /// Productive iterations (replayed iterations after a restore count
    /// again — they really were re-executed).
    pub iterations: u64,
    /// Restores performed.
    pub restarts: u32,
    /// Global iteration each restore resumed from.
    pub resumed_from: Vec<u64>,
    /// Rollbacks taken in reaction to a loss anomaly (budgeted separately
    /// from `restarts`; see [`HealthConfig::rollback_budget`]).
    pub rollbacks: u32,
    /// Learning-rate cuts applied by the health monitor.
    pub lr_reductions: u32,
    /// Batch positions quarantined for the remainder of the run.
    pub quarantined: u64,
    /// End-of-run copy of every fault counter, including the transport
    /// counters (`send_retries`, `timeouts`, `reconnects`,
    /// `peers_evicted`, `lossy_steps`, `bytes_reduced`) when the run
    /// trained over a real [`crate::transport::Transport`].
    pub metrics: crate::metrics::FaultMetricsSnapshot,
}

/// Mutable training position threaded through attempts.
struct TrainState {
    epoch: u64,
    epoch_iter: u64,
    global_iter: u64,
    initial_loss: Option<f32>,
    last_loss: f32,
    executed: u64,
}

/// Health-monitor state. Lives *outside* the restart loop so the loss
/// baseline, quarantine set, and rollback/LR-cut counts survive restores
/// — a rollback must not forget which batch poisoned it.
struct HealthState {
    cfg: HealthConfig,
    monitor: HealthMonitor,
    rollbacks: u32,
    lr_cuts: u32,
}

/// Trains like [`crate::solver::solve`], but under supervision: periodic
/// atomic checkpoints, crash detection, and resume-from-checkpoint (see
/// the module docs for the full protocol). Faults are injected from
/// `plan`; pass `&mut FaultPlan::none()` for a fault-free supervised
/// run. Event counts land in `metrics`.
///
/// # Errors
///
/// Propagates non-recoverable runtime errors, recoverable errors once
/// `max_restarts` is exhausted, and [`RuntimeError::InvalidConfig`] for
/// a degenerate configuration.
pub fn supervise(
    solver: &mut dyn Solver,
    exec: &mut Executor,
    source: &mut dyn BatchSource,
    cfg: &SupervisorConfig,
    plan: &mut FaultPlan,
    metrics: &FaultMetrics,
) -> Result<SupervisorReport, RuntimeError> {
    cfg.validate()?;
    let mut st = TrainState {
        epoch: 0,
        epoch_iter: 0,
        global_iter: 0,
        initial_loss: None,
        last_loss: 0.0,
        executed: 0,
    };
    let mut restarts = 0u32;
    let mut resumed_from = Vec::new();
    let mut health = cfg.health.as_ref().map(|hc| HealthState {
        monitor: HealthMonitor::new(hc),
        cfg: hc.clone(),
        rollbacks: 0,
        lr_cuts: 0,
    });

    // A restore point must exist before anything can fail.
    let initial_meta = CheckpointMeta {
        epoch: 0,
        iteration: 0,
        epoch_iter: 0,
        loss: 0.0,
    };
    save_checkpoint_full(
        exec,
        Some(&initial_meta),
        Some(&solver.export_state()),
        &cfg.checkpoint_path,
    )?;
    FaultMetrics::bump(&metrics.checkpoints_saved);

    loop {
        match run_attempt(solver, exec, source, cfg, plan, metrics, &mut st, health.as_mut()) {
            Ok(()) => break,
            Err(e @ RuntimeError::Numerical { .. }) => {
                // A loss anomaly whose policy demands a rollback. Plain
                // restarts would re-execute the same poisoned trajectory,
                // so rollbacks are budgeted separately, and the monitor's
                // quarantine set (which survives the restore) is what
                // makes the replay take a different path.
                let Some(h) = health.as_mut() else {
                    return Err(e);
                };
                if h.rollbacks >= h.cfg.rollback_budget {
                    return Err(e);
                }
                h.rollbacks += 1;
                restore(solver, exec, source, cfg, &mut st)?;
                FaultMetrics::bump(&metrics.rollbacks);
                resumed_from.push(st.global_iter);
            }
            Err(e) if is_recoverable(&e) && restarts < cfg.max_restarts => {
                restarts += 1;
                restore(solver, exec, source, cfg, &mut st)?;
                FaultMetrics::bump(&metrics.restores);
                resumed_from.push(st.global_iter);
            }
            Err(e) => return Err(e),
        }
    }

    Ok(SupervisorReport {
        initial_loss: st.initial_loss.unwrap_or(0.0),
        final_loss: st.last_loss,
        iterations: st.executed,
        restarts,
        resumed_from,
        rollbacks: health.as_ref().map_or(0, |h| h.rollbacks),
        lr_reductions: health.as_ref().map_or(0, |h| h.lr_cuts),
        quarantined: health.as_ref().map_or(0, |h| h.monitor.quarantined_count()),
        metrics: metrics.snapshot(),
    })
}

fn is_recoverable(e: &RuntimeError) -> bool {
    matches!(
        e,
        RuntimeError::Interrupted { .. } | RuntimeError::Io { .. }
    )
}

fn feed(exec: &mut Executor, batch: &[(String, Vec<f32>)]) -> Result<(), RuntimeError> {
    for (ensemble, values) in batch {
        exec.set_input(ensemble, values)?;
    }
    Ok(())
}

/// Overwrites a batch's values with NaN — the "corrupt record" injected
/// by [`crate::fault::Fault::BatchNaN`].
fn poison_batch(batch: &mut [(String, Vec<f32>)]) {
    for (_, values) in batch.iter_mut() {
        for v in values.iter_mut() {
            *v = f32::NAN;
        }
    }
}

/// Writes NaN into the first parameter-gradient buffer — the localized
/// glitch injected by [`crate::fault::Fault::GradCorrupt`].
fn corrupt_param_grads(exec: &mut Executor) {
    let mut first = true;
    exec.for_each_param_grad_mut(|_, grad| {
        if first {
            for v in grad.iter_mut() {
                *v = f32::NAN;
            }
            first = false;
        }
    });
}

/// Runs training from `st`'s position until completion or an error.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    solver: &mut dyn Solver,
    exec: &mut Executor,
    source: &mut dyn BatchSource,
    cfg: &SupervisorConfig,
    plan: &mut FaultPlan,
    metrics: &FaultMetrics,
    st: &mut TrainState,
    mut health: Option<&mut HealthState>,
) -> Result<(), RuntimeError> {
    let max_epoch = solver.params().max_epoch as u64;
    while st.epoch < max_epoch {
        source.reset();
        for _ in 0..st.epoch_iter {
            // Fast-forward a mid-epoch resume to the checkpointed batch.
            source.next_batch()?;
        }
        while let Some(mut batch) = source.next_batch()? {
            let iter = st.global_iter;

            if let Some(h) = health.as_deref_mut() {
                if h.monitor.is_quarantined(iter) {
                    // Known-poisoned position: consume it without
                    // training. Replays after a rollback land here.
                    st.global_iter += 1;
                    st.epoch_iter += 1;
                    continue;
                }
            }

            // Injected numerical faults. The corrupt record is
            // persistent — a replay re-reads the same bad bytes — while
            // the LR spike is a one-shot config push whose damage
            // persists in the solver's schedule until a policy cuts it.
            if plan.batch_poisoned(iter) {
                poison_batch(&mut batch);
            }
            if let Some(factor) = plan.take_lr_spike(iter) {
                let p = solver.params_mut();
                p.lr_policy = p.lr_policy.scaled(factor);
            }

            feed(exec, &batch)?;

            // Forward pass, optionally guarded by per-layer sentinels;
            // then the iteration-boundary scan over value-carrying
            // buffers (gradients are stale before backward, so they are
            // judged by gradient hygiene instead).
            let mut trip: Option<String> = None;
            match health.as_deref() {
                Some(h) if h.cfg.sentinel.layer_boundary => {
                    if let Err(anomaly) = exec.forward_guarded(h.cfg.sentinel.mode) {
                        trip = Some(anomaly.to_string());
                    }
                }
                _ => exec.forward(),
            }
            if let Some(h) = health.as_deref() {
                if trip.is_none()
                    && !h.cfg.sentinel.layer_boundary
                    && h.cfg.sentinel.should_scan(iter)
                {
                    let hits = exec.scan_numerics(h.cfg.sentinel.mode, |k| {
                        matches!(
                            k,
                            BufferKind::Value | BufferKind::InputStage | BufferKind::State
                        )
                    });
                    if let Some(first) = hits.first() {
                        trip = Some(first.to_string());
                    }
                }
            }
            if trip.is_some() {
                FaultMetrics::bump(&metrics.sentinel_trips);
            }

            let loss = exec.loss();
            let anomaly = match health.as_deref_mut() {
                // A sentinel trip means the activations are already
                // poisoned whatever the (possibly stale) loss reads as.
                Some(_) if trip.is_some() => Some(LossAnomaly::NonFinite),
                Some(h) => h.monitor.observe(loss),
                None => None,
            };

            if let Some(kind) = anomaly {
                FaultMetrics::bump(&metrics.loss_anomalies);
                let h = health.as_deref_mut().expect("anomaly implies health");
                let reaction = h.cfg.reaction_for(kind);
                if reaction.reduce_lr {
                    let p = solver.params_mut();
                    p.lr_policy = p.lr_policy.scaled(h.cfg.lr_cut);
                    h.lr_cuts += 1;
                    FaultMetrics::bump(&metrics.lr_reductions);
                    // The old loss baseline is meaningless at the new
                    // rate; keep only the quarantine set.
                    h.monitor.rebaseline();
                }
                if reaction.quarantine && h.monitor.quarantine(iter) {
                    FaultMetrics::bump(&metrics.batches_quarantined);
                }
                match kind {
                    LossAnomaly::NonFinite => {
                        // Never train on a non-finite pass.
                        st.global_iter += 1;
                        st.epoch_iter += 1;
                        if reaction.rollback {
                            return Err(RuntimeError::numerical(format!(
                                "non-finite loss at iteration {iter}{}",
                                trip.map(|t| format!(" ({t})")).unwrap_or_default()
                            )));
                        }
                        continue;
                    }
                    LossAnomaly::Spike { ratio } => {
                        if reaction.rollback {
                            return Err(RuntimeError::numerical(format!(
                                "loss spiked {ratio:.1}x above baseline at iteration {iter}"
                            )));
                        }
                        if reaction.quarantine {
                            st.global_iter += 1;
                            st.epoch_iter += 1;
                            continue;
                        }
                        // Otherwise the batch is finite — train on it
                        // (under the freshly cut rate, if any).
                    }
                    // Plateaus are a trend, not a bad batch: count them,
                    // apply any LR cut, and keep training.
                    LossAnomaly::Plateau => {}
                }
            }

            if st.initial_loss.is_none() {
                st.initial_loss = Some(loss);
            }
            st.last_loss = loss;
            exec.backward();
            if plan.take_grad_corrupt(iter) {
                corrupt_param_grads(exec);
            }
            let mut skip_step = false;
            if let Some(h) = health.as_deref_mut() {
                let report = apply_grad_hygiene(exec, &h.cfg.hygiene, Some(metrics));
                skip_step = report.nonfinite && h.cfg.hygiene.skip_nonfinite;
            }
            if !skip_step {
                solver.step(exec);
            }
            st.global_iter += 1;
            st.epoch_iter += 1;
            st.executed += 1;

            if st.global_iter.is_multiple_of(cfg.checkpoint_every) {
                if plan.take_io_error(iter) {
                    // Injected checkpoint I/O failure: survive it; the
                    // previous checkpoint remains the restore point.
                    FaultMetrics::bump(&metrics.io_errors);
                } else {
                    // Continuity reference: forward on this same batch
                    // with the *updated* weights; a restore must
                    // reproduce this value exactly.
                    feed(exec, &batch)?;
                    exec.forward();
                    let reference = exec.loss();
                    let meta = CheckpointMeta {
                        epoch: st.epoch,
                        iteration: st.global_iter,
                        epoch_iter: st.epoch_iter,
                        loss: reference,
                    };
                    match save_checkpoint_full(
                        exec,
                        Some(&meta),
                        Some(&solver.export_state()),
                        &cfg.checkpoint_path,
                    ) {
                        Ok(()) => FaultMetrics::bump(&metrics.checkpoints_saved),
                        Err(RuntimeError::Io { .. }) => {
                            FaultMetrics::bump(&metrics.io_errors);
                        }
                        Err(other) => return Err(other),
                    }
                }
            }

            if plan.take_process_death(iter) {
                return Err(RuntimeError::Interrupted {
                    detail: format!("injected process death after iteration {iter}"),
                });
            }
        }
        st.epoch += 1;
        st.epoch_iter = 0;
    }
    Ok(())
}

/// Loads the last checkpoint, re-imports the solver's accumulator state,
/// verifies loss continuity, and rewinds `st` to the checkpointed
/// position.
fn restore(
    solver: &mut dyn Solver,
    exec: &mut Executor,
    source: &mut dyn BatchSource,
    cfg: &SupervisorConfig,
    st: &mut TrainState,
) -> Result<(), RuntimeError> {
    let (meta, solver_state) = load_checkpoint_full(exec, &cfg.checkpoint_path)?;
    let meta = meta.ok_or_else(|| {
        RuntimeError::Malformed {
            detail: format!(
                "checkpoint `{}` has no training metadata; cannot resume from it",
                cfg.checkpoint_path.display()
            ),
        }
    })?;
    if let Some(state) = &solver_state {
        solver.import_state(state)?;
    }

    if meta.epoch_iter > 0 {
        // Replay forward on the exact batch the checkpoint was taken on;
        // the restored weights must reproduce the recorded loss.
        source.reset();
        let mut batch = None;
        for _ in 0..meta.epoch_iter {
            batch = source.next_batch()?;
        }
        let batch = batch.ok_or_else(|| RuntimeError::InvalidConfig {
            detail: format!(
                "data source has fewer batches than the checkpoint expects \
                 ({} into the epoch); did the dataset change?",
                meta.epoch_iter
            ),
        })?;
        feed(exec, &batch)?;
        exec.forward();
        let replayed = exec.loss();
        let tolerance = cfg.continuity_rel_tol * meta.loss.abs().max(1e-6);
        let divergence = (replayed - meta.loss).abs();
        if divergence.is_nan() || divergence > tolerance {
            return Err(RuntimeError::Malformed {
                detail: format!(
                    "loss continuity violated after restore from `{}`: \
                     checkpoint recorded {}, replay produced {replayed} \
                     (tolerance {tolerance}); refusing to resume from \
                     inconsistent state",
                    cfg.checkpoint_path.display(),
                    meta.loss
                ),
            });
        }
    }

    st.epoch = meta.epoch;
    st.epoch_iter = meta.epoch_iter;
    st.global_iter = meta.iteration;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::MemoryDataSource;
    use crate::fault::Fault;
    use crate::solver::{LrPolicy, MomPolicy, Sgd, SolverParams, solve};
    use latte_core::{compile, OptLevel};
    use latte_nn::models::{mlp, ModelConfig};

    fn build() -> Executor {
        let cfg = ModelConfig {
            batch: 4,
            input_size: 6,
            channel_div: 1,
            classes: 3,
            with_loss: true,
            seed: 21,
        };
        Executor::new(compile(&mlp(&cfg, &[8]).net, &OptLevel::full()).unwrap()).unwrap()
    }

    fn source() -> MemoryDataSource {
        // 48 items / batch 4 = 12 iterations per epoch.
        let items: Vec<(Vec<f32>, f32)> = (0..48)
            .map(|i| {
                let class = i % 3;
                let x: Vec<f32> = (0..6)
                    .map(|j| {
                        let base = if j % 3 == class { 1.0 } else { 0.1 };
                        base + ((i * 6 + j) % 7) as f32 * 0.01
                    })
                    .collect();
                (x, class as f32)
            })
            .collect();
        MemoryDataSource::try_new("data", "label", items, 4).unwrap()
    }

    fn params(epochs: usize) -> SolverParams {
        SolverParams {
            lr_policy: LrPolicy::Fixed { lr: 0.05 },
            // Momentum state is checkpointed and restored, so even a
            // stateful update rule recovers bit-exactly — the exact
            // final_loss equalities below prove it.
            mom_policy: MomPolicy::Fixed { mom: 0.9 },
            regu_coef: 0.0,
            max_epoch: epochs,
        }
    }

    fn temp_ckpt(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("latte_supervisor_{tag}"));
        let _ = std::fs::create_dir_all(&dir);
        dir.join("ckpt.bin")
    }

    #[test]
    fn fault_free_supervised_run_matches_plain_solve() {
        let mut exec_a = build();
        let mut solver_a = Sgd::new(params(2));
        let plain = solve(&mut solver_a, &mut exec_a, &mut source()).unwrap();

        let mut exec_b = build();
        let mut solver_b = Sgd::new(params(2));
        let cfg = SupervisorConfig::new(temp_ckpt("fault_free"));
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver_b,
            &mut exec_b,
            &mut source(),
            &cfg,
            &mut FaultPlan::none(),
            &metrics,
        )
        .unwrap();

        assert_eq!(sup.iterations, plain.iterations as u64);
        assert_eq!(sup.restarts, 0);
        assert_eq!(sup.initial_loss, plain.initial_loss);
        assert_eq!(sup.final_loss, plain.final_loss, "supervision must not perturb training");
        assert!(metrics.snapshot().checkpoints_saved > 0);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn process_death_recovers_from_checkpoint() {
        let mut exec_a = build();
        let mut solver_a = Sgd::new(params(2));
        let plain = solve(&mut solver_a, &mut exec_a, &mut source()).unwrap();

        let mut exec_b = build();
        let mut solver_b = Sgd::new(params(2));
        let cfg = SupervisorConfig {
            checkpoint_every: 5,
            ..SupervisorConfig::new(temp_ckpt("death"))
        };
        // Die mid-epoch, between checkpoints (after iteration 13; the
        // last checkpoint is at 10), plus once more near the end.
        let mut plan = FaultPlan::new(vec![
            Fault::ProcessDeath { iter: 13 },
            Fault::ProcessDeath { iter: 18 },
        ]);
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver_b,
            &mut exec_b,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap();

        assert_eq!(sup.restarts, 2);
        assert_eq!(sup.resumed_from, vec![10, 15]);
        // Replayed iterations 10..=13 and 15..=18 are re-executed.
        assert_eq!(sup.iterations, plain.iterations as u64 + 4 + 4);
        assert_eq!(
            sup.final_loss, plain.final_loss,
            "recovered run must converge to the fault-free trajectory"
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.restores, 2);
        assert!(snap.checkpoints_saved >= 5);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn checkpoint_io_error_is_survived_and_counted() {
        let mut exec = build();
        let mut solver = Sgd::new(params(1));
        let cfg = SupervisorConfig {
            checkpoint_every: 4,
            ..SupervisorConfig::new(temp_ckpt("ioerr"))
        };
        // The checkpoint due after iteration 3 (the first periodic one)
        // fails; training must continue and later checkpoints succeed.
        let mut plan = FaultPlan::new(vec![Fault::IoError { iter: 3 }]);
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver,
            &mut exec,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap();
        assert_eq!(sup.restarts, 0);
        let snap = metrics.snapshot();
        assert_eq!(snap.io_errors, 1);
        // 12 iterations -> initial + checkpoints at 4, 8, 12, minus the
        // failed one at 4.
        assert_eq!(snap.checkpoints_saved, 3);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn restart_budget_exhaustion_propagates_the_fault() {
        let mut exec = build();
        let mut solver = Sgd::new(params(1));
        let cfg = SupervisorConfig {
            max_restarts: 1,
            ..SupervisorConfig::new(temp_ckpt("budget"))
        };
        let mut plan = FaultPlan::new(vec![
            Fault::ProcessDeath { iter: 2 },
            Fault::ProcessDeath { iter: 5 },
        ]);
        let metrics = FaultMetrics::new();
        let err = supervise(
            &mut solver,
            &mut exec,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::Interrupted { .. }), "{err}");
        assert_eq!(metrics.snapshot().restores, 1);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn stateful_rmsprop_resumes_identically() {
        use crate::solver::RmsProp;
        let mut exec_a = build();
        let mut solver_a = RmsProp::new(params(2), 0.9, 1e-8);
        let plain = solve(&mut solver_a, &mut exec_a, &mut source()).unwrap();

        let mut exec_b = build();
        let mut solver_b = RmsProp::new(params(2), 0.9, 1e-8);
        let cfg = SupervisorConfig {
            checkpoint_every: 5,
            ..SupervisorConfig::new(temp_ckpt("rmsprop"))
        };
        let mut plan = FaultPlan::new(vec![Fault::ProcessDeath { iter: 13 }]);
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver_b,
            &mut exec_b,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap();
        assert_eq!(sup.restarts, 1);
        assert_eq!(
            sup.final_loss, plain.final_loss,
            "restored RMSProp accumulators must reproduce the exact trajectory"
        );
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn tampered_checkpoint_fails_loss_continuity() {
        let mut exec = build();
        let mut solver = Sgd::new(params(1));
        let cfg = SupervisorConfig {
            checkpoint_every: 4,
            max_restarts: 1,
            ..SupervisorConfig::new(temp_ckpt("tamper"))
        };
        let mut src = source();

        // Take a real mid-epoch checkpoint by letting a short run die
        // right after one was written, then rewrite the checkpoint with
        // a wrong continuity loss (valid CRC, inconsistent content).
        let mut plan = FaultPlan::new(vec![
            Fault::ProcessDeath { iter: 3 },
            Fault::ProcessDeath { iter: 3 },
        ]);
        // First death happens right after the iter-3 checkpoint; tamper
        // with it before the supervisor restores.
        let metrics = FaultMetrics::new();
        // Run a supervisor whose restore encounters the tampered file by
        // corrupting it from within the fault window: simplest is to run
        // to completion once, then tamper and restore by hand.
        let sup = supervise(
            &mut solver,
            &mut exec,
            &mut src,
            &cfg,
            &mut plan,
            &metrics,
        );
        assert!(sup.is_ok(), "baseline run should recover: {sup:?}");

        // Now tamper: rewrite the checkpoint claiming a wrong loss.
        let meta = CheckpointMeta {
            epoch: 0,
            iteration: 4,
            epoch_iter: 4,
            loss: 1e6,
        };
        save_checkpoint_full(&exec, Some(&meta), None, &cfg.checkpoint_path).unwrap();
        let mut st = TrainState {
            epoch: 0,
            epoch_iter: 0,
            global_iter: 0,
            initial_loss: None,
            last_loss: 0.0,
            executed: 0,
        };
        let err = restore(&mut solver, &mut exec, &mut src, &cfg, &mut st).unwrap_err();
        assert!(
            err.to_string().contains("loss continuity violated"),
            "{err}"
        );
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    fn health() -> crate::health::HealthConfig {
        crate::health::HealthConfig {
            sentinel: crate::health::SentinelConfig::cheap().env_override(),
            ..Default::default()
        }
    }

    #[test]
    fn healthy_run_is_not_perturbed_by_guardrails() {
        let mut exec_a = build();
        let mut solver_a = Sgd::new(params(2));
        let plain = solve(&mut solver_a, &mut exec_a, &mut source()).unwrap();

        let mut exec_b = build();
        let mut solver_b = Sgd::new(params(2));
        let cfg = SupervisorConfig {
            health: Some(health()),
            ..SupervisorConfig::new(temp_ckpt("guarded_clean"))
        };
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver_b,
            &mut exec_b,
            &mut source(),
            &cfg,
            &mut FaultPlan::none(),
            &metrics,
        )
        .unwrap();
        assert_eq!(
            sup.final_loss, plain.final_loss,
            "guardrails must be invisible on a healthy run"
        );
        assert_eq!(sup.rollbacks, 0);
        assert_eq!(sup.quarantined, 0);
        assert_eq!(metrics.snapshot().sentinel_trips, 0);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn nan_batch_is_quarantined_and_training_finishes() {
        let mut exec = build();
        let mut solver = Sgd::new(params(2));
        let cfg = SupervisorConfig {
            health: Some(health()),
            ..SupervisorConfig::new(temp_ckpt("quarantine"))
        };
        let mut plan = FaultPlan::new(vec![Fault::BatchNaN { iter: 7 }]);
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver,
            &mut exec,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap();
        assert!(sup.final_loss.is_finite(), "final loss {}", sup.final_loss);
        assert_eq!(sup.quarantined, 1);
        assert_eq!(sup.rollbacks, 0, "default policy skips without rewinding");
        // The poisoned iteration is not counted as productive.
        assert_eq!(sup.iterations, 23);
        let snap = metrics.snapshot();
        assert_eq!(snap.batches_quarantined, 1);
        assert_eq!(snap.loss_anomalies, 1);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn unguarded_nan_batch_silently_bricks_the_network() {
        use crate::health::SentinelMode;
        // Negative control: same injection, `health: None`. The NaN
        // never reaches the loss scalar — ReLU (`max(NaN, 0) = 0`) and
        // the loss layer's probability clamp launder it — but one
        // solver step on NaN gradients bricks the first layer's
        // weights for good, pinning the loss at chance level (ln 3).
        // This *silent* failure mode is why buffer sentinels exist:
        // loss-only monitoring provably cannot see it.
        let mut exec = build();
        let mut solver = Sgd::new(params(2));
        let cfg = SupervisorConfig::new(temp_ckpt("unguarded_nan"));
        let mut plan = FaultPlan::new(vec![Fault::BatchNaN { iter: 7 }]);
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver,
            &mut exec,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap();
        let poisoned = exec.scan_numerics(SentinelMode::Exhaustive, |k| {
            matches!(k, BufferKind::Param)
        });
        assert!(!poisoned.is_empty(), "weights must be NaN-poisoned");
        assert!(
            sup.final_loss > 1.0,
            "loss must be pinned at chance (~ln 3), got {}",
            sup.final_loss
        );
        assert_eq!(metrics.snapshot().sentinel_trips, 0, "nothing was watching");
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn rollback_restores_weights_and_quarantines_the_batch() {
        use crate::health::AnomalyReaction;
        let mut exec = build();
        let mut solver = Sgd::new(params(2));
        let cfg = SupervisorConfig {
            checkpoint_every: 5,
            health: Some(crate::health::HealthConfig {
                on_bad_batch: AnomalyReaction::rollback_and_quarantine(),
                ..health()
            }),
            ..SupervisorConfig::new(temp_ckpt("rollback"))
        };
        let mut plan = FaultPlan::new(vec![Fault::BatchNaN { iter: 7 }]);
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver,
            &mut exec,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap();
        assert!(sup.final_loss.is_finite(), "final loss {}", sup.final_loss);
        assert_eq!(sup.rollbacks, 1);
        assert_eq!(sup.restarts, 0, "rollbacks spend their own budget");
        assert_eq!(sup.resumed_from, vec![5]);
        assert_eq!(sup.quarantined, 1);
        assert_eq!(metrics.snapshot().rollbacks, 1);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn gradient_corruption_is_vetoed_before_the_step() {
        let mut exec = build();
        let mut solver = Sgd::new(params(2));
        let cfg = SupervisorConfig {
            health: Some(health()),
            ..SupervisorConfig::new(temp_ckpt("gradcorrupt"))
        };
        let mut plan = FaultPlan::new(vec![Fault::GradCorrupt { iter: 6 }]);
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver,
            &mut exec,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap();
        assert!(sup.final_loss.is_finite(), "final loss {}", sup.final_loss);
        assert_eq!(sup.quarantined, 0, "the batch itself was fine");
        assert_eq!(metrics.snapshot().grad_nonfinite_trips, 1);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn lr_spike_is_healed_by_rate_cuts_and_rollbacks() {
        use crate::health::AnomalyReaction;
        let mut exec = build();
        let mut solver = Sgd::new(params(2));
        let cfg = SupervisorConfig {
            checkpoint_every: 5,
            health: Some(crate::health::HealthConfig {
                // The batch is innocent — the damage lives in the
                // solver's spiked schedule and the exploded weights, so
                // the cure is cut-rate-and-rewind, never quarantine.
                on_bad_batch: AnomalyReaction::rollback_and_reduce_lr(),
                on_spike: AnomalyReaction::rollback_and_reduce_lr(),
                rollback_budget: 6,
                ..health()
            }),
            ..SupervisorConfig::new(temp_ckpt("lrspike"))
        };
        let mut plan = FaultPlan::new(vec![Fault::LrSpike { iter: 6, factor: 1000.0 }]);
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver,
            &mut exec,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap();
        assert!(sup.final_loss.is_finite(), "final loss {}", sup.final_loss);
        assert!(sup.lr_reductions >= 1, "report {sup:?}");
        assert!(sup.rollbacks >= 1 && sup.rollbacks <= 6, "report {sup:?}");
        assert_eq!(sup.quarantined, 0, "no batch deserved quarantine");
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn rollback_budget_exhaustion_propagates_the_numerical_fault() {
        use crate::health::AnomalyReaction;
        let mut exec = build();
        let mut solver = Sgd::new(params(1));
        let cfg = SupervisorConfig {
            health: Some(crate::health::HealthConfig {
                on_bad_batch: AnomalyReaction::rollback_and_quarantine(),
                rollback_budget: 0,
                ..health()
            }),
            ..SupervisorConfig::new(temp_ckpt("rb_budget"))
        };
        let mut plan = FaultPlan::new(vec![Fault::BatchNaN { iter: 3 }]);
        let metrics = FaultMetrics::new();
        let err = supervise(
            &mut solver,
            &mut exec,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::Numerical { .. }), "{err}");
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }
}
