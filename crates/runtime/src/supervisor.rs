//! Fault-tolerant training: a supervisor wrapping the plain
//! [`crate::solver::solve`] loop with periodic atomic checkpoints and
//! crash recovery.
//!
//! [`supervise`] drives the same forward / backward / update loop as
//! `solve`, but every `checkpoint_every` iterations it atomically writes
//! the model parameters plus training progress
//! ([`crate::checkpoint::CheckpointMeta`]) to disk. When an iteration is
//! killed — by an injected [`crate::fault::Fault::ProcessDeath`] or any
//! recoverable [`RuntimeError`] — the supervisor reloads the last valid
//! checkpoint, verifies **loss continuity** (re-running forward on the
//! exact batch the checkpoint was taken on must reproduce the recorded
//! loss), fast-forwards the data source to the checkpointed position,
//! and resumes. Checkpoint *write* failures are survived, not fatal:
//! the previous checkpoint stays valid, the failure is counted in
//! [`FaultMetrics::io_errors`], and training continues.
//!
//! Solver state (momentum / squared-gradient accumulators and the
//! solver's internal iteration counter) is checkpointed alongside the
//! weights via [`crate::solver::Solver::export_state`] and re-imported on
//! restore, so stateful solvers (SGD + momentum, RMSProp, AdaGrad,
//! AdaDelta) resume on the **bit-exact** update trajectory they would
//! have followed without the interruption — the
//! `process_death_recovers_from_checkpoint` test asserts exact
//! `final_loss` equality against an uninterrupted run under
//! `MomPolicy::Fixed`.

use std::path::PathBuf;

use crate::checkpoint::{load_checkpoint_full, save_checkpoint_full, CheckpointMeta};
use crate::data::BatchSource;
use crate::error::RuntimeError;
use crate::exec::Executor;
use crate::fault::FaultPlan;
use crate::metrics::FaultMetrics;
use crate::solver::Solver;

/// Supervisor policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Where checkpoints are written (atomically, via a sibling temp
    /// file — see [`crate::checkpoint::save_checkpoint`]).
    pub checkpoint_path: PathBuf,
    /// Iterations between checkpoints (>= 1). An initial checkpoint is
    /// always written before the first iteration so a restore point
    /// exists from the start.
    pub checkpoint_every: u64,
    /// Restores attempted before giving up and propagating the error.
    pub max_restarts: u32,
    /// Relative tolerance for the post-restore loss continuity check.
    /// With a deterministic executor the replayed loss is bit-identical,
    /// so the default is tight; models with stochastic layers need a
    /// looser bound.
    pub continuity_rel_tol: f32,
}

impl SupervisorConfig {
    /// A default policy writing checkpoints to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        SupervisorConfig {
            checkpoint_path: path.into(),
            checkpoint_every: 10,
            max_restarts: 3,
            continuity_rel_tol: 1e-5,
        }
    }

    fn validate(&self) -> Result<(), RuntimeError> {
        if self.checkpoint_every == 0 {
            return Err(RuntimeError::InvalidConfig {
                detail: "supervisor: checkpoint interval must be at least 1 iteration".into(),
            });
        }
        if self.continuity_rel_tol.is_nan() || self.continuity_rel_tol < 0.0 {
            return Err(RuntimeError::InvalidConfig {
                detail: "supervisor: continuity tolerance must be non-negative".into(),
            });
        }
        Ok(())
    }
}

/// Result of a supervised (fault-tolerant) training run.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorReport {
    /// Mean loss of the first iteration.
    pub initial_loss: f32,
    /// Mean loss of the final iteration.
    pub final_loss: f32,
    /// Productive iterations (replayed iterations after a restore count
    /// again — they really were re-executed).
    pub iterations: u64,
    /// Restores performed.
    pub restarts: u32,
    /// Global iteration each restore resumed from.
    pub resumed_from: Vec<u64>,
}

/// Mutable training position threaded through attempts.
struct TrainState {
    epoch: u64,
    epoch_iter: u64,
    global_iter: u64,
    initial_loss: Option<f32>,
    last_loss: f32,
    executed: u64,
}

/// Trains like [`crate::solver::solve`], but under supervision: periodic
/// atomic checkpoints, crash detection, and resume-from-checkpoint (see
/// the module docs for the full protocol). Faults are injected from
/// `plan`; pass `&mut FaultPlan::none()` for a fault-free supervised
/// run. Event counts land in `metrics`.
///
/// # Errors
///
/// Propagates non-recoverable runtime errors, recoverable errors once
/// `max_restarts` is exhausted, and [`RuntimeError::InvalidConfig`] for
/// a degenerate configuration.
pub fn supervise(
    solver: &mut dyn Solver,
    exec: &mut Executor,
    source: &mut dyn BatchSource,
    cfg: &SupervisorConfig,
    plan: &mut FaultPlan,
    metrics: &FaultMetrics,
) -> Result<SupervisorReport, RuntimeError> {
    cfg.validate()?;
    let mut st = TrainState {
        epoch: 0,
        epoch_iter: 0,
        global_iter: 0,
        initial_loss: None,
        last_loss: 0.0,
        executed: 0,
    };
    let mut restarts = 0u32;
    let mut resumed_from = Vec::new();

    // A restore point must exist before anything can fail.
    let initial_meta = CheckpointMeta {
        epoch: 0,
        iteration: 0,
        epoch_iter: 0,
        loss: 0.0,
    };
    save_checkpoint_full(
        exec,
        Some(&initial_meta),
        Some(&solver.export_state()),
        &cfg.checkpoint_path,
    )?;
    FaultMetrics::bump(&metrics.checkpoints_saved);

    loop {
        match run_attempt(solver, exec, source, cfg, plan, metrics, &mut st) {
            Ok(()) => break,
            Err(e) if is_recoverable(&e) && restarts < cfg.max_restarts => {
                restarts += 1;
                restore(solver, exec, source, cfg, &mut st)?;
                FaultMetrics::bump(&metrics.restores);
                resumed_from.push(st.global_iter);
            }
            Err(e) => return Err(e),
        }
    }

    Ok(SupervisorReport {
        initial_loss: st.initial_loss.unwrap_or(0.0),
        final_loss: st.last_loss,
        iterations: st.executed,
        restarts,
        resumed_from,
    })
}

fn is_recoverable(e: &RuntimeError) -> bool {
    matches!(
        e,
        RuntimeError::Interrupted { .. } | RuntimeError::Io { .. }
    )
}

fn feed(exec: &mut Executor, batch: &[(String, Vec<f32>)]) -> Result<(), RuntimeError> {
    for (ensemble, values) in batch {
        exec.set_input(ensemble, values)?;
    }
    Ok(())
}

/// Runs training from `st`'s position until completion or an error.
fn run_attempt(
    solver: &mut dyn Solver,
    exec: &mut Executor,
    source: &mut dyn BatchSource,
    cfg: &SupervisorConfig,
    plan: &mut FaultPlan,
    metrics: &FaultMetrics,
    st: &mut TrainState,
) -> Result<(), RuntimeError> {
    let max_epoch = solver.params().max_epoch as u64;
    while st.epoch < max_epoch {
        source.reset();
        for _ in 0..st.epoch_iter {
            // Fast-forward a mid-epoch resume to the checkpointed batch.
            source.next_batch();
        }
        while let Some(batch) = source.next_batch() {
            feed(exec, &batch)?;
            exec.forward();
            let loss = exec.loss();
            if st.initial_loss.is_none() {
                st.initial_loss = Some(loss);
            }
            st.last_loss = loss;
            exec.backward();
            solver.step(exec);
            let iter = st.global_iter;
            st.global_iter += 1;
            st.epoch_iter += 1;
            st.executed += 1;

            if st.global_iter.is_multiple_of(cfg.checkpoint_every) {
                if plan.take_io_error(iter) {
                    // Injected checkpoint I/O failure: survive it; the
                    // previous checkpoint remains the restore point.
                    FaultMetrics::bump(&metrics.io_errors);
                } else {
                    // Continuity reference: forward on this same batch
                    // with the *updated* weights; a restore must
                    // reproduce this value exactly.
                    feed(exec, &batch)?;
                    exec.forward();
                    let reference = exec.loss();
                    let meta = CheckpointMeta {
                        epoch: st.epoch,
                        iteration: st.global_iter,
                        epoch_iter: st.epoch_iter,
                        loss: reference,
                    };
                    match save_checkpoint_full(
                        exec,
                        Some(&meta),
                        Some(&solver.export_state()),
                        &cfg.checkpoint_path,
                    ) {
                        Ok(()) => FaultMetrics::bump(&metrics.checkpoints_saved),
                        Err(RuntimeError::Io { .. }) => {
                            FaultMetrics::bump(&metrics.io_errors);
                        }
                        Err(other) => return Err(other),
                    }
                }
            }

            if plan.take_process_death(iter) {
                return Err(RuntimeError::Interrupted {
                    detail: format!("injected process death after iteration {iter}"),
                });
            }
        }
        st.epoch += 1;
        st.epoch_iter = 0;
    }
    Ok(())
}

/// Loads the last checkpoint, re-imports the solver's accumulator state,
/// verifies loss continuity, and rewinds `st` to the checkpointed
/// position.
fn restore(
    solver: &mut dyn Solver,
    exec: &mut Executor,
    source: &mut dyn BatchSource,
    cfg: &SupervisorConfig,
    st: &mut TrainState,
) -> Result<(), RuntimeError> {
    let (meta, solver_state) = load_checkpoint_full(exec, &cfg.checkpoint_path)?;
    let meta = meta.ok_or_else(|| {
        RuntimeError::Malformed {
            detail: format!(
                "checkpoint `{}` has no training metadata; cannot resume from it",
                cfg.checkpoint_path.display()
            ),
        }
    })?;
    if let Some(state) = &solver_state {
        solver.import_state(state)?;
    }

    if meta.epoch_iter > 0 {
        // Replay forward on the exact batch the checkpoint was taken on;
        // the restored weights must reproduce the recorded loss.
        source.reset();
        let mut batch = None;
        for _ in 0..meta.epoch_iter {
            batch = source.next_batch();
        }
        let batch = batch.ok_or_else(|| RuntimeError::InvalidConfig {
            detail: format!(
                "data source has fewer batches than the checkpoint expects \
                 ({} into the epoch); did the dataset change?",
                meta.epoch_iter
            ),
        })?;
        feed(exec, &batch)?;
        exec.forward();
        let replayed = exec.loss();
        let tolerance = cfg.continuity_rel_tol * meta.loss.abs().max(1e-6);
        let divergence = (replayed - meta.loss).abs();
        if divergence.is_nan() || divergence > tolerance {
            return Err(RuntimeError::Malformed {
                detail: format!(
                    "loss continuity violated after restore from `{}`: \
                     checkpoint recorded {}, replay produced {replayed} \
                     (tolerance {tolerance}); refusing to resume from \
                     inconsistent state",
                    cfg.checkpoint_path.display(),
                    meta.loss
                ),
            });
        }
    }

    st.epoch = meta.epoch;
    st.epoch_iter = meta.epoch_iter;
    st.global_iter = meta.iteration;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::MemoryDataSource;
    use crate::fault::Fault;
    use crate::solver::{LrPolicy, MomPolicy, Sgd, SolverParams, solve};
    use latte_core::{compile, OptLevel};
    use latte_nn::models::{mlp, ModelConfig};

    fn build() -> Executor {
        let cfg = ModelConfig {
            batch: 4,
            input_size: 6,
            channel_div: 1,
            classes: 3,
            with_loss: true,
            seed: 21,
        };
        Executor::new(compile(&mlp(&cfg, &[8]).net, &OptLevel::full()).unwrap()).unwrap()
    }

    fn source() -> MemoryDataSource {
        // 48 items / batch 4 = 12 iterations per epoch.
        let items: Vec<(Vec<f32>, f32)> = (0..48)
            .map(|i| {
                let class = i % 3;
                let x: Vec<f32> = (0..6)
                    .map(|j| {
                        let base = if j % 3 == class { 1.0 } else { 0.1 };
                        base + ((i * 6 + j) % 7) as f32 * 0.01
                    })
                    .collect();
                (x, class as f32)
            })
            .collect();
        MemoryDataSource::try_new("data", "label", items, 4).unwrap()
    }

    fn params(epochs: usize) -> SolverParams {
        SolverParams {
            lr_policy: LrPolicy::Fixed { lr: 0.05 },
            // Momentum state is checkpointed and restored, so even a
            // stateful update rule recovers bit-exactly — the exact
            // final_loss equalities below prove it.
            mom_policy: MomPolicy::Fixed { mom: 0.9 },
            regu_coef: 0.0,
            max_epoch: epochs,
        }
    }

    fn temp_ckpt(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("latte_supervisor_{tag}"));
        let _ = std::fs::create_dir_all(&dir);
        dir.join("ckpt.bin")
    }

    #[test]
    fn fault_free_supervised_run_matches_plain_solve() {
        let mut exec_a = build();
        let mut solver_a = Sgd::new(params(2));
        let plain = solve(&mut solver_a, &mut exec_a, &mut source()).unwrap();

        let mut exec_b = build();
        let mut solver_b = Sgd::new(params(2));
        let cfg = SupervisorConfig::new(temp_ckpt("fault_free"));
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver_b,
            &mut exec_b,
            &mut source(),
            &cfg,
            &mut FaultPlan::none(),
            &metrics,
        )
        .unwrap();

        assert_eq!(sup.iterations, plain.iterations as u64);
        assert_eq!(sup.restarts, 0);
        assert_eq!(sup.initial_loss, plain.initial_loss);
        assert_eq!(sup.final_loss, plain.final_loss, "supervision must not perturb training");
        assert!(metrics.snapshot().checkpoints_saved > 0);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn process_death_recovers_from_checkpoint() {
        let mut exec_a = build();
        let mut solver_a = Sgd::new(params(2));
        let plain = solve(&mut solver_a, &mut exec_a, &mut source()).unwrap();

        let mut exec_b = build();
        let mut solver_b = Sgd::new(params(2));
        let cfg = SupervisorConfig {
            checkpoint_every: 5,
            ..SupervisorConfig::new(temp_ckpt("death"))
        };
        // Die mid-epoch, between checkpoints (after iteration 13; the
        // last checkpoint is at 10), plus once more near the end.
        let mut plan = FaultPlan::new(vec![
            Fault::ProcessDeath { iter: 13 },
            Fault::ProcessDeath { iter: 18 },
        ]);
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver_b,
            &mut exec_b,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap();

        assert_eq!(sup.restarts, 2);
        assert_eq!(sup.resumed_from, vec![10, 15]);
        // Replayed iterations 10..=13 and 15..=18 are re-executed.
        assert_eq!(sup.iterations, plain.iterations as u64 + 4 + 4);
        assert_eq!(
            sup.final_loss, plain.final_loss,
            "recovered run must converge to the fault-free trajectory"
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.restores, 2);
        assert!(snap.checkpoints_saved >= 5);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn checkpoint_io_error_is_survived_and_counted() {
        let mut exec = build();
        let mut solver = Sgd::new(params(1));
        let cfg = SupervisorConfig {
            checkpoint_every: 4,
            ..SupervisorConfig::new(temp_ckpt("ioerr"))
        };
        // The checkpoint due after iteration 3 (the first periodic one)
        // fails; training must continue and later checkpoints succeed.
        let mut plan = FaultPlan::new(vec![Fault::IoError { iter: 3 }]);
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver,
            &mut exec,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap();
        assert_eq!(sup.restarts, 0);
        let snap = metrics.snapshot();
        assert_eq!(snap.io_errors, 1);
        // 12 iterations -> initial + checkpoints at 4, 8, 12, minus the
        // failed one at 4.
        assert_eq!(snap.checkpoints_saved, 3);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn restart_budget_exhaustion_propagates_the_fault() {
        let mut exec = build();
        let mut solver = Sgd::new(params(1));
        let cfg = SupervisorConfig {
            max_restarts: 1,
            ..SupervisorConfig::new(temp_ckpt("budget"))
        };
        let mut plan = FaultPlan::new(vec![
            Fault::ProcessDeath { iter: 2 },
            Fault::ProcessDeath { iter: 5 },
        ]);
        let metrics = FaultMetrics::new();
        let err = supervise(
            &mut solver,
            &mut exec,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::Interrupted { .. }), "{err}");
        assert_eq!(metrics.snapshot().restores, 1);
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn stateful_rmsprop_resumes_identically() {
        use crate::solver::RmsProp;
        let mut exec_a = build();
        let mut solver_a = RmsProp::new(params(2), 0.9, 1e-8);
        let plain = solve(&mut solver_a, &mut exec_a, &mut source()).unwrap();

        let mut exec_b = build();
        let mut solver_b = RmsProp::new(params(2), 0.9, 1e-8);
        let cfg = SupervisorConfig {
            checkpoint_every: 5,
            ..SupervisorConfig::new(temp_ckpt("rmsprop"))
        };
        let mut plan = FaultPlan::new(vec![Fault::ProcessDeath { iter: 13 }]);
        let metrics = FaultMetrics::new();
        let sup = supervise(
            &mut solver_b,
            &mut exec_b,
            &mut source(),
            &cfg,
            &mut plan,
            &metrics,
        )
        .unwrap();
        assert_eq!(sup.restarts, 1);
        assert_eq!(
            sup.final_loss, plain.final_loss,
            "restored RMSProp accumulators must reproduce the exact trajectory"
        );
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }

    #[test]
    fn tampered_checkpoint_fails_loss_continuity() {
        let mut exec = build();
        let mut solver = Sgd::new(params(1));
        let cfg = SupervisorConfig {
            checkpoint_every: 4,
            max_restarts: 1,
            ..SupervisorConfig::new(temp_ckpt("tamper"))
        };
        let mut src = source();

        // Take a real mid-epoch checkpoint by letting a short run die
        // right after one was written, then rewrite the checkpoint with
        // a wrong continuity loss (valid CRC, inconsistent content).
        let mut plan = FaultPlan::new(vec![
            Fault::ProcessDeath { iter: 3 },
            Fault::ProcessDeath { iter: 3 },
        ]);
        // First death happens right after the iter-3 checkpoint; tamper
        // with it before the supervisor restores.
        let metrics = FaultMetrics::new();
        // Run a supervisor whose restore encounters the tampered file by
        // corrupting it from within the fault window: simplest is to run
        // to completion once, then tamper and restore by hand.
        let sup = supervise(
            &mut solver,
            &mut exec,
            &mut src,
            &cfg,
            &mut plan,
            &metrics,
        );
        assert!(sup.is_ok(), "baseline run should recover: {sup:?}");

        // Now tamper: rewrite the checkpoint claiming a wrong loss.
        let meta = CheckpointMeta {
            epoch: 0,
            iteration: 4,
            epoch_iter: 4,
            loss: 1e6,
        };
        save_checkpoint_full(&exec, Some(&meta), None, &cfg.checkpoint_path).unwrap();
        let mut st = TrainState {
            epoch: 0,
            epoch_iter: 0,
            global_iter: 0,
            initial_loss: None,
            last_loss: 0.0,
            executed: 0,
        };
        let err = restore(&mut solver, &mut exec, &mut src, &cfg, &mut st).unwrap_err();
        assert!(
            err.to_string().contains("loss continuity violated"),
            "{err}"
        );
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }
}
