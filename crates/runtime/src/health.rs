//! Numerical-health guardrails: tensor sentinels, loss-anomaly
//! classification, and the reaction policies the training supervisor
//! applies when a guard trips.
//!
//! Process-level faults (crashes, I/O errors — DESIGN.md §7) are loud;
//! numerical faults are silent. A NaN produced by one overflowing GEMM
//! propagates through every downstream buffer, the loss, the gradients,
//! and — in a cluster — the all-reduce, poisoning every replica within
//! one iteration. This module provides the detection half of the
//! defense:
//!
//! * [`SentinelMode`] / [`SentinelConfig`] — how aggressively to scan
//!   tensor buffers for non-finite values (see
//!   `Executor::scan_numerics` / `Executor::forward_guarded`);
//! * [`HealthMonitor`] — a loss EWMA that classifies each iteration's
//!   loss as healthy, non-finite, a divergence spike, or a plateau, and
//!   remembers which batch positions have been quarantined;
//! * [`HealthConfig`] / [`AnomalyReaction`] — what the supervisor does
//!   about each anomaly class: quarantine the batch, reduce the
//!   learning rate, and/or roll back to the last good checkpoint
//!   (bounded by a rollback budget).
//!
//! The reaction machinery lives in [`crate::supervisor`]; gradient
//! clipping and the pre-`step` finite check live in [`crate::solver`].

use std::collections::HashSet;
use std::fmt;

use crate::error::RuntimeError;
use crate::solver::GradHygiene;

/// How thoroughly tensor buffers are scanned for NaN/Inf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SentinelMode {
    /// No scanning (non-finite losses are still caught by the monitor).
    Off,
    /// Check every `stride`-th element — cheap enough for production.
    /// NaNs spread fast through reductions and GEMMs, so a sparse probe
    /// catches a poisoned buffer within an iteration or two.
    Sampled {
        /// Element step between probes (≥ 1).
        stride: usize,
    },
    /// Check every element — the debug mode; finds the first bad index.
    Exhaustive,
}

impl SentinelMode {
    /// The scan stride, or `None` when scanning is off.
    pub fn stride(self) -> Option<usize> {
        match self {
            SentinelMode::Off => None,
            SentinelMode::Sampled { stride } => Some(stride.max(1)),
            SentinelMode::Exhaustive => Some(1),
        }
    }

    /// Reads an override from the `LATTE_SENTINEL_MODE` environment
    /// variable: `off`, `sampled`, `sampled:<stride>`, or `exhaustive`.
    /// Returns `None` when unset or unparseable (CI sets `exhaustive`
    /// nightly to run every test under the most paranoid scanning).
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("LATTE_SENTINEL_MODE").ok()?;
        match raw.trim().to_ascii_lowercase().as_str() {
            "off" => Some(SentinelMode::Off),
            "exhaustive" => Some(SentinelMode::Exhaustive),
            "sampled" => Some(SentinelMode::Sampled { stride: 61 }),
            s => {
                let stride = s.strip_prefix("sampled:")?.parse().ok()?;
                Some(SentinelMode::Sampled { stride })
            }
        }
    }
}

/// When and how the supervisor scans buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentinelConfig {
    /// Scan thoroughness.
    pub mode: SentinelMode,
    /// Scan value buffers every `every` iterations (0 = never; the loss
    /// check still runs every iteration).
    pub every: u64,
    /// Also scan after every forward group (`Executor::forward_guarded`),
    /// pinning a trip to the layer that produced it.
    pub layer_boundary: bool,
}

impl SentinelConfig {
    /// Cheap production default: sparse sampling at every iteration
    /// boundary, no per-layer scans. The prime stride avoids resonating
    /// with power-of-two tensor shapes.
    pub fn cheap() -> Self {
        SentinelConfig {
            mode: SentinelMode::Sampled { stride: 61 },
            every: 1,
            layer_boundary: false,
        }
    }

    /// Exhaustive debug default: every element, every iteration, at
    /// every layer boundary.
    pub fn debug() -> Self {
        SentinelConfig {
            mode: SentinelMode::Exhaustive,
            every: 1,
            layer_boundary: true,
        }
    }

    /// `self`, with the mode overridden by `LATTE_SENTINEL_MODE` when
    /// that variable is set (see [`SentinelMode::from_env`]).
    pub fn env_override(mut self) -> Self {
        if let Some(mode) = SentinelMode::from_env() {
            self.mode = mode;
            if mode == SentinelMode::Exhaustive {
                self.layer_boundary = true;
            }
        }
        self
    }

    /// Whether the iteration-boundary scan runs at `iter`.
    pub fn should_scan(&self, iter: u64) -> bool {
        self.mode != SentinelMode::Off && self.every > 0 && iter.is_multiple_of(self.every)
    }
}

/// The class of a non-finite value found by a sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueClass {
    /// Not-a-number.
    NaN,
    /// Positive infinity.
    PosInf,
    /// Negative infinity.
    NegInf,
}

impl fmt::Display for ValueClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueClass::NaN => write!(f, "NaN"),
            ValueClass::PosInf => write!(f, "+Inf"),
            ValueClass::NegInf => write!(f, "-Inf"),
        }
    }
}

/// A sentinel trip: the first non-finite element found in one buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferAnomaly {
    /// The buffer's declared name, or `<group>#<binding>` when the trip
    /// was found at a layer boundary (lowered groups carry storage
    /// bindings, not names).
    pub buffer: String,
    /// Flat index of the offending element within the buffer.
    pub index: usize,
    /// What was found there.
    pub class: ValueClass,
}

impl fmt::Display for BufferAnomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in `{}` at [{}]", self.class, self.buffer, self.index)
    }
}

/// Scans `data` with the given element step and returns the first
/// non-finite hit as `(index, class)`.
pub fn scan_slice(data: &[f32], stride: usize) -> Option<(usize, ValueClass)> {
    let stride = stride.max(1);
    data.iter().step_by(stride).enumerate().find_map(|(i, &v)| {
        if v.is_finite() {
            None
        } else {
            let class = if v.is_nan() {
                ValueClass::NaN
            } else if v > 0.0 {
                ValueClass::PosInf
            } else {
                ValueClass::NegInf
            };
            Some((i * stride, class))
        }
    })
}

/// What the health monitor concluded about one iteration's loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossAnomaly {
    /// The loss (or a scanned buffer) is NaN/Inf.
    NonFinite,
    /// The loss jumped to `ratio`× the EWMA baseline — divergence.
    Spike {
        /// Loss over baseline.
        ratio: f32,
    },
    /// The EWMA has not improved for the configured window.
    Plateau,
}

/// What the supervisor does when an anomaly class fires. Fields
/// compose: quarantine marks the batch so replays skip it, a
/// learning-rate cut multiplies the schedule by `HealthConfig::lr_cut`,
/// and a rollback restores the last good checkpoint (spending one unit
/// of the rollback budget).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnomalyReaction {
    /// Permanently skip this batch position (this run).
    pub quarantine: bool,
    /// Multiply the learning-rate schedule by `lr_cut`.
    pub reduce_lr: bool,
    /// Restore the last good checkpoint and replay.
    pub rollback: bool,
}

impl AnomalyReaction {
    /// Do nothing (count the anomaly and keep going).
    pub fn report_only() -> Self {
        AnomalyReaction::default()
    }

    /// Skip and quarantine the offending batch — the right answer for
    /// corrupt data, which reproduces on every replay.
    pub fn quarantine() -> Self {
        AnomalyReaction { quarantine: true, ..Default::default() }
    }

    /// Reduce the learning rate — the right answer for divergence.
    pub fn reduce_lr() -> Self {
        AnomalyReaction { reduce_lr: true, ..Default::default() }
    }

    /// Quarantine, then roll back to undo any damage already absorbed
    /// into the weights.
    pub fn rollback_and_quarantine() -> Self {
        AnomalyReaction { quarantine: true, rollback: true, ..Default::default() }
    }

    /// Cut the learning rate and roll back — the right answer for a
    /// spiked schedule, whose damage lives in the weights, not the data.
    pub fn rollback_and_reduce_lr() -> Self {
        AnomalyReaction { reduce_lr: true, rollback: true, ..Default::default() }
    }
}

/// Numerical-health policy for a supervised training run.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Buffer-scan configuration.
    pub sentinel: SentinelConfig,
    /// Gradient clipping and the pre-step finite check.
    pub hygiene: GradHygiene,
    /// EWMA smoothing factor in `(0, 1]` (higher = faster baseline).
    pub ewma_alpha: f32,
    /// A loss above `spike_threshold ×` baseline is a divergence spike.
    pub spike_threshold: f32,
    /// Baseline floor: near-zero converged losses would otherwise flag
    /// any tiny wobble as a spike.
    pub spike_floor: f32,
    /// Finite losses folded into the EWMA before spike detection arms.
    pub warmup: u64,
    /// Iterations without EWMA improvement before a plateau fires
    /// (0 disables plateau detection).
    pub plateau_window: u64,
    /// Minimum relative EWMA improvement that resets the plateau clock.
    pub plateau_rel: f32,
    /// Reaction to a non-finite loss or sentinel trip.
    pub on_bad_batch: AnomalyReaction,
    /// Reaction to a divergence spike.
    pub on_spike: AnomalyReaction,
    /// Reaction to a plateau (quarantine/rollback make no sense here;
    /// only `reduce_lr` is honored — classic LR-on-plateau decay).
    pub on_plateau: AnomalyReaction,
    /// Maximum checkpoint rollbacks a run may spend on numerical
    /// anomalies before the fault propagates to the caller.
    pub rollback_budget: u32,
    /// Learning-rate multiplier applied by `reduce_lr` reactions.
    pub lr_cut: f32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            sentinel: SentinelConfig::cheap(),
            hygiene: GradHygiene::default(),
            ewma_alpha: 0.25,
            spike_threshold: 10.0,
            spike_floor: 1e-3,
            warmup: 3,
            plateau_window: 0,
            plateau_rel: 0.01,
            on_bad_batch: AnomalyReaction::quarantine(),
            on_spike: AnomalyReaction::reduce_lr(),
            on_plateau: AnomalyReaction::report_only(),
            rollback_budget: 2,
            lr_cut: 0.1,
        }
    }
}

impl HealthConfig {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] when a field is out of range.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        let bad = |detail: String| Err(RuntimeError::InvalidConfig { detail });
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return bad(format!("ewma_alpha must be in (0, 1], got {}", self.ewma_alpha));
        }
        if self.spike_threshold.is_nan() || self.spike_threshold <= 1.0 {
            return bad(format!(
                "spike_threshold must exceed 1, got {}",
                self.spike_threshold
            ));
        }
        if self.spike_floor.is_nan() || self.spike_floor <= 0.0 {
            return bad(format!("spike_floor must be positive, got {}", self.spike_floor));
        }
        if !(self.lr_cut > 0.0 && self.lr_cut < 1.0) {
            return bad(format!("lr_cut must be in (0, 1), got {}", self.lr_cut));
        }
        if let SentinelMode::Sampled { stride } = self.sentinel.mode {
            if stride == 0 {
                return bad("sentinel stride must be at least 1".into());
            }
        }
        Ok(())
    }

    /// The configured reaction for `anomaly`.
    pub fn reaction_for(&self, anomaly: LossAnomaly) -> AnomalyReaction {
        match anomaly {
            LossAnomaly::NonFinite => self.on_bad_batch,
            LossAnomaly::Spike { .. } => self.on_spike,
            // Plateaus are a tuning signal, not damage; never skip data
            // or rewind weights for one.
            LossAnomaly::Plateau => AnomalyReaction {
                quarantine: false,
                rollback: false,
                ..self.on_plateau
            },
        }
    }
}

/// Tracks the loss trajectory of one training run and classifies each
/// iteration's loss against it. Owned by the supervisor *outside* its
/// restart loop, so quarantine decisions and the learned baseline
/// survive rollbacks.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    alpha: f32,
    spike_threshold: f32,
    spike_floor: f32,
    warmup: u64,
    plateau_window: u64,
    plateau_rel: f32,
    ewma: Option<f32>,
    observed: u64,
    best_ewma: f32,
    since_improve: u64,
    quarantined: HashSet<u64>,
}

impl HealthMonitor {
    /// A monitor implementing `cfg`'s thresholds, with an empty
    /// baseline and no quarantined batches.
    pub fn new(cfg: &HealthConfig) -> Self {
        HealthMonitor {
            alpha: cfg.ewma_alpha,
            spike_threshold: cfg.spike_threshold,
            spike_floor: cfg.spike_floor,
            warmup: cfg.warmup,
            plateau_window: cfg.plateau_window,
            plateau_rel: cfg.plateau_rel,
            ewma: None,
            observed: 0,
            best_ewma: f32::INFINITY,
            since_improve: 0,
            quarantined: HashSet::new(),
        }
    }

    /// Classifies one iteration's loss. Healthy (and plateaued) losses
    /// fold into the EWMA baseline; non-finite losses and spikes do
    /// not — an outlier must never drag the baseline toward itself.
    pub fn observe(&mut self, loss: f32) -> Option<LossAnomaly> {
        if !loss.is_finite() {
            return Some(LossAnomaly::NonFinite);
        }
        if let Some(e) = self.ewma {
            let baseline = e.max(self.spike_floor);
            if self.observed >= self.warmup && loss > self.spike_threshold * baseline {
                return Some(LossAnomaly::Spike { ratio: loss / baseline });
            }
        }
        let e = match self.ewma {
            Some(e) => self.alpha * loss + (1.0 - self.alpha) * e,
            None => loss,
        };
        self.ewma = Some(e);
        self.observed += 1;
        if self.plateau_window > 0 {
            if e < self.best_ewma * (1.0 - self.plateau_rel) {
                self.best_ewma = e;
                self.since_improve = 0;
            } else {
                self.since_improve += 1;
                if self.since_improve >= self.plateau_window {
                    self.since_improve = 0;
                    return Some(LossAnomaly::Plateau);
                }
            }
        }
        None
    }

    /// The current EWMA baseline, once at least one finite loss has
    /// been observed.
    pub fn baseline(&self) -> Option<f32> {
        self.ewma
    }

    /// Forgets the baseline (but not the quarantine set). Called after
    /// a reaction changes the training dynamics — e.g. a learning-rate
    /// cut — so the next losses re-seed the EWMA instead of being
    /// judged against a stale regime.
    pub fn rebaseline(&mut self) {
        self.ewma = None;
        self.observed = 0;
        self.best_ewma = f32::INFINITY;
        self.since_improve = 0;
    }

    /// Quarantines the batch position `iter`; returns `true` when newly
    /// quarantined.
    pub fn quarantine(&mut self, iter: u64) -> bool {
        self.quarantined.insert(iter)
    }

    /// Whether the batch position `iter` is quarantined.
    pub fn is_quarantined(&self, iter: u64) -> bool {
        self.quarantined.contains(&iter)
    }

    /// Number of quarantined batch positions.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_slice_finds_first_hit_and_classifies_it() {
        assert_eq!(scan_slice(&[0.0, 1.0, -2.0], 1), None);
        assert_eq!(
            scan_slice(&[0.0, f32::NAN, f32::INFINITY], 1),
            Some((1, ValueClass::NaN))
        );
        assert_eq!(
            scan_slice(&[0.0, f32::NEG_INFINITY], 1),
            Some((1, ValueClass::NegInf))
        );
        assert_eq!(
            scan_slice(&[f32::INFINITY], 1),
            Some((0, ValueClass::PosInf))
        );
        assert_eq!(scan_slice(&[], 1), None);
    }

    #[test]
    fn sampled_scan_can_miss_what_exhaustive_finds() {
        let mut data = vec![0.0f32; 10];
        data[3] = f32::NAN;
        // Stride 2 probes even indices only.
        assert_eq!(scan_slice(&data, 2), None);
        assert_eq!(scan_slice(&data, 1), Some((3, ValueClass::NaN)));
    }

    #[test]
    fn sentinel_mode_strides() {
        assert_eq!(SentinelMode::Off.stride(), None);
        assert_eq!(SentinelMode::Exhaustive.stride(), Some(1));
        assert_eq!(SentinelMode::Sampled { stride: 7 }.stride(), Some(7));
        assert_eq!(SentinelMode::Sampled { stride: 0 }.stride(), Some(1));
    }

    #[test]
    fn monitor_flags_nonfinite_immediately() {
        let mut m = HealthMonitor::new(&HealthConfig::default());
        assert_eq!(m.observe(1.0), None);
        assert_eq!(m.observe(f32::NAN), Some(LossAnomaly::NonFinite));
        assert_eq!(m.observe(f32::INFINITY), Some(LossAnomaly::NonFinite));
        // The NaN did not poison the baseline.
        assert!(m.baseline().expect("baseline").is_finite());
    }

    #[test]
    fn monitor_flags_spikes_only_after_warmup() {
        let cfg = HealthConfig { warmup: 3, spike_threshold: 10.0, ..Default::default() };
        let mut m = HealthMonitor::new(&cfg);
        // During warmup even a wild loss folds into the baseline.
        assert_eq!(m.observe(1.0), None);
        assert_eq!(m.observe(50.0), None);
        assert_eq!(m.observe(1.0), None);
        let baseline = m.baseline().expect("baseline");
        let spike = baseline * 11.0;
        match m.observe(spike) {
            Some(LossAnomaly::Spike { ratio }) => assert!(ratio > 10.0),
            other => panic!("expected spike, got {other:?}"),
        }
        // The spike did not move the baseline.
        assert_eq!(m.baseline(), Some(baseline));
    }

    #[test]
    fn spike_floor_protects_converged_runs() {
        let cfg = HealthConfig {
            warmup: 1,
            spike_threshold: 10.0,
            spike_floor: 1e-3,
            ..Default::default()
        };
        let mut m = HealthMonitor::new(&cfg);
        assert_eq!(m.observe(1e-6), None);
        assert_eq!(m.observe(1e-6), None);
        // 5e-3 is 5000× the EWMA but only 5× the floor: not a spike.
        assert_eq!(m.observe(5e-3), None);
        // 2e-2 is 20× the floor: spike.
        assert!(matches!(m.observe(2e-2), Some(LossAnomaly::Spike { .. })));
    }

    #[test]
    fn plateau_fires_after_window_without_improvement() {
        let cfg = HealthConfig {
            plateau_window: 3,
            plateau_rel: 0.05,
            warmup: 0,
            ..Default::default()
        };
        let mut m = HealthMonitor::new(&cfg);
        assert_eq!(m.observe(1.0), None);
        assert_eq!(m.observe(1.0), None);
        assert_eq!(m.observe(1.0), None);
        assert_eq!(m.observe(1.0), Some(LossAnomaly::Plateau));
        // The window restarts after firing.
        assert_eq!(m.observe(1.0), None);
    }

    #[test]
    fn rebaseline_clears_ewma_but_keeps_quarantine() {
        let mut m = HealthMonitor::new(&HealthConfig::default());
        assert_eq!(m.observe(2.0), None);
        assert!(m.quarantine(7));
        assert!(!m.quarantine(7), "already quarantined");
        m.rebaseline();
        assert_eq!(m.baseline(), None);
        assert!(m.is_quarantined(7));
        assert_eq!(m.quarantined_count(), 1);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let ok = HealthConfig::default();
        assert!(ok.validate().is_ok());
        let bad_alpha = HealthConfig { ewma_alpha: 0.0, ..Default::default() };
        assert!(bad_alpha.validate().is_err());
        let bad_threshold = HealthConfig { spike_threshold: 1.0, ..Default::default() };
        assert!(bad_threshold.validate().is_err());
        let bad_cut = HealthConfig { lr_cut: 1.0, ..Default::default() };
        assert!(bad_cut.validate().is_err());
        let bad_stride = HealthConfig {
            sentinel: SentinelConfig {
                mode: SentinelMode::Sampled { stride: 0 },
                ..SentinelConfig::cheap()
            },
            ..Default::default()
        };
        assert!(bad_stride.validate().is_err());
    }

    #[test]
    fn plateau_reaction_never_quarantines_or_rolls_back() {
        let cfg = HealthConfig {
            on_plateau: AnomalyReaction {
                quarantine: true,
                reduce_lr: true,
                rollback: true,
            },
            ..Default::default()
        };
        let r = cfg.reaction_for(LossAnomaly::Plateau);
        assert!(r.reduce_lr);
        assert!(!r.quarantine && !r.rollback);
    }
}
