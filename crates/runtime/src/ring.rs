//! The real ring all-reduce: reduce-scatter followed by all-gather over
//! a [`Transport`], with a fixed fold order, receiver-driven
//! retransmission, straggler detection, and ring healing.
//!
//! ## Determinism (the bit-identity contract)
//!
//! A bucket of `n` gradient floats over `k` live ranks is cut into `k`
//! chunks ([`chunk_spans`]). Chunk `c`'s sum starts at ring position `c`
//! and travels rightward, each position folding its own contribution
//! onto the running sum — so chunk `c` is always associated as
//! `((g_c + g_{c+1}) + g_{c+2}) + …`, regardless of timing, retries, or
//! thread scheduling. [`reference_allreduce`] replays exactly this
//! rotated fold serially; in synchronized mode the distributed result is
//! bit-identical to it (and, for `k = 1`, to plain single-process
//! training — the bucket is returned untouched).
//!
//! ## Robustness
//!
//! Every receive runs under a per-op deadline. In synchronized mode a
//! timeout or CRC failure triggers a resend request with exponential
//! backoff and jitter; when the retry budget is exhausted the peer is
//! evicted ([`Transport::evict`] broadcasts the death), the ring heals —
//! survivors re-form it — and the bucket **restarts from the pristine
//! input gradients**, which is what makes a peer dying mid-reduce-scatter
//! safe: partially folded chunks are discarded wholesale, never
//! double-counted. After any shrink the communicator degrades to
//! [`SyncMode::LossyDegraded`]: deadlines turn short and single-attempt,
//! and whatever contributions arrived by the deadline are averaged (the
//! per-chunk contributor mask picks the divisor).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::SyncMode;
use crate::error::RuntimeError;
use crate::metrics::FaultMetrics;
use crate::transport::{Delivery, Frame, FrameKind, Key, Transport, TransportError};

/// Retry, deadline, backoff, and straggler policy for the ring.
#[derive(Debug, Clone)]
pub struct CommPolicy {
    /// Per-attempt receive deadline in synchronized mode (must cover
    /// compute skew between ranks), milliseconds.
    pub op_timeout_ms: u64,
    /// Resend requests per frame before the peer is evicted. Also the
    /// consecutive-miss budget per peer in lossy mode.
    pub max_retries: u32,
    /// Base backoff before the first retry, milliseconds.
    pub backoff_base_ms: f64,
    /// Backoff cap, milliseconds.
    pub backoff_cap_ms: f64,
    /// Jitter fraction added to each backoff (`0.0..=1.0`), drawn from a
    /// rank-seeded RNG so runs stay reproducible.
    pub jitter: f64,
    /// Single-attempt receive deadline in lossy mode, milliseconds.
    pub lossy_timeout_ms: u64,
    /// A receive slower than `threshold ×` the peer's EWMA estimate
    /// flags a straggler.
    pub straggler_threshold: f64,
    /// EWMA smoothing for per-peer receive latency.
    pub ewma_alpha: f64,
    /// Receives observed per peer before straggler detection arms.
    pub straggler_grace: u32,
}

impl Default for CommPolicy {
    fn default() -> Self {
        CommPolicy {
            op_timeout_ms: 2_000,
            max_retries: 3,
            backoff_base_ms: 2.0,
            backoff_cap_ms: 100.0,
            jitter: 0.25,
            lossy_timeout_ms: 200,
            straggler_threshold: 4.0,
            ewma_alpha: 0.3,
            straggler_grace: 3,
        }
    }
}

impl CommPolicy {
    /// Rejects degenerate policies.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] with the offending field.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        let bad = |detail: &str| {
            Err(RuntimeError::InvalidConfig {
                detail: format!("comm policy: {detail}"),
            })
        };
        if self.op_timeout_ms == 0 || self.lossy_timeout_ms == 0 {
            return bad("deadlines must be positive");
        }
        if self.backoff_base_ms.is_nan()
            || self.backoff_cap_ms.is_nan()
            || self.backoff_base_ms <= 0.0
            || self.backoff_cap_ms < self.backoff_base_ms
        {
            return bad("backoff base must be positive and no larger than the cap");
        }
        if !(0.0..=1.0).contains(&self.jitter) || self.jitter.is_nan() {
            return bad("jitter must be in [0, 1]");
        }
        if self.straggler_threshold.is_nan() || self.straggler_threshold <= 1.0 {
            return bad("straggler threshold must exceed 1");
        }
        if !(0.0..=1.0).contains(&self.ewma_alpha) || self.ewma_alpha == 0.0 {
            return bad("ewma alpha must be in (0, 1]");
        }
        Ok(())
    }

    /// Backoff before retry `attempt` (1-based): exponential from the
    /// base, capped, plus jitter.
    fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let exp = self.backoff_base_ms * f64::powi(2.0, attempt.saturating_sub(1) as i32);
        let capped = exp.min(self.backoff_cap_ms);
        let jittered = capped * (1.0 + self.jitter * rng.gen_range(0.0f64..1.0));
        Duration::from_secs_f64(jittered / 1e3)
    }
}

/// Cuts `len` elements into `k` contiguous chunks, the first `len % k`
/// of them one element longer. Chunks may be empty when `len < k`.
pub fn chunk_spans(len: usize, k: usize) -> Vec<Range<usize>> {
    assert!(k > 0, "chunk_spans needs at least one chunk");
    let base = len / k;
    let rem = len % k;
    let mut spans = Vec::with_capacity(k);
    let mut at = 0;
    for c in 0..k {
        let sz = base + usize::from(c < rem);
        spans.push(at..at + sz);
        at += sz;
    }
    spans
}

/// The serial oracle for the ring's synchronized mode: averages
/// `parts` (one gradient vector per rank, ring order) with exactly the
/// ring's chunking and rotated fold order, so a fault-free distributed
/// all-reduce must match it bit for bit.
///
/// # Panics
///
/// If `parts` is empty or lengths differ.
pub fn reference_allreduce(parts: &[Vec<f32>]) -> Vec<f32> {
    let k = parts.len();
    assert!(k > 0, "reference_allreduce needs at least one contribution");
    let n = parts[0].len();
    assert!(
        parts.iter().all(|p| p.len() == n),
        "contributions must agree on length"
    );
    if k == 1 {
        // Matches the ring's solo fast path: untouched, unscaled.
        return parts[0].clone();
    }
    let spans = chunk_spans(n, k);
    let mut out = vec![0.0f32; n];
    let scale = 1.0f32 / k as f32;
    for (c, span) in spans.iter().enumerate() {
        let dst = &mut out[span.clone()];
        dst.copy_from_slice(&parts[c][span.clone()]);
        for j in 1..k {
            let src = &parts[(c + j) % k][span.clone()];
            for (d, &v) in dst.iter_mut().zip(src) {
                *d += v;
            }
        }
        for d in dst.iter_mut() {
            *d *= scale;
        }
    }
    out
}

/// Outcome of one bucket's all-reduce.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketReport {
    /// Mode the bucket finished in.
    pub mode: SyncMode,
    /// Live ranks when it finished.
    pub live: usize,
    /// Wall-clock time of the whole bucket, milliseconds.
    pub elapsed_ms: f64,
    /// Payload bytes folded locally during reduce-scatter.
    pub bytes: u64,
    /// Smallest contributor count over the bucket's chunks (equals
    /// `live` in synchronized mode; may be less in lossy mode).
    pub min_contributors: u32,
    /// Ring-healing restarts the bucket went through.
    pub restarts: u32,
    /// Peers this rank evicted while reducing the bucket.
    pub evicted: Vec<usize>,
}

enum RecvOutcome {
    Frame(Frame),
    /// Lossy mode: the deadline passed; proceed without it.
    Missed,
    /// Membership changed (eviction here or news from a peer): restart
    /// the bucket over the healed ring.
    Restart,
    Fatal(TransportError),
}

/// A ring communicator over any [`Transport`]: one instance per rank,
/// driven bucket by bucket by the distributed trainer.
pub struct RingComm {
    tp: Box<dyn Transport>,
    policy: CommPolicy,
    mode: SyncMode,
    rng: StdRng,
    /// Per-peer EWMA of receive latency, milliseconds.
    ewma: Vec<f64>,
    ewma_n: Vec<u32>,
    /// Per-peer consecutive lossy misses (eviction after the budget).
    misses: Vec<u32>,
    /// Peers already flagged as stragglers this bucket.
    flagged: Vec<bool>,
}

impl RingComm {
    /// Wraps a transport under `policy`, starting synchronized.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] for a degenerate policy.
    pub fn new(tp: Box<dyn Transport>, policy: CommPolicy) -> Result<RingComm, RuntimeError> {
        policy.validate()?;
        let world = tp.world();
        let rank = tp.rank();
        Ok(RingComm {
            tp,
            policy,
            mode: SyncMode::Synchronized,
            rng: StdRng::seed_from_u64(0x1a77e ^ (rank as u64).wrapping_mul(0x9E37_79B9)),
            ewma: vec![0.0; world],
            ewma_n: vec![0; world],
            misses: vec![0; world],
            flagged: vec![false; world],
        })
    }

    /// Current mode (degrades permanently once the ring shrinks).
    pub fn mode(&self) -> SyncMode {
        self.mode
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.tp.rank()
    }

    /// Live ranks, ascending.
    pub fn live(&self) -> Vec<usize> {
        let mask = self.tp.alive_mask();
        (0..self.tp.world())
            .filter(|&r| mask & (1 << r) != 0)
            .collect()
    }

    /// The transport's fault counters.
    pub fn metrics(&self) -> Arc<FaultMetrics> {
        Arc::clone(self.tp.metrics())
    }

    /// The wrapped transport.
    pub fn transport(&self) -> &dyn Transport {
        self.tp.as_ref()
    }

    /// Averages `grad` with every live peer's same-keyed bucket in
    /// place. Synchronized mode reproduces [`reference_allreduce`] over
    /// the live ranks bit for bit; lossy mode averages whatever arrived
    /// by the deadline. A solo ring returns `grad` untouched.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Transport`] when this rank was evicted by the
    /// others or the transport shut down — conditions retries cannot
    /// mend.
    pub fn allreduce(
        &mut self,
        step: u32,
        bucket: u16,
        grad: &mut [f32],
    ) -> Result<BucketReport, RuntimeError> {
        let me_rank = self.tp.rank();
        let own_bit = 1u32 << me_rank;
        let t0 = Instant::now();
        let mut restarts = 0u32;
        let mut evicted = Vec::new();
        let mut stash: HashMap<Key, Frame> = HashMap::new();
        self.flagged.iter_mut().for_each(|f| *f = false);

        'attempt: loop {
            stash.clear();
            let mask0 = self.tp.alive_mask();
            if mask0 & own_bit == 0 {
                return Err(RuntimeError::Transport {
                    detail: format!("rank {me_rank} was evicted by its peers"),
                });
            }
            let live: Vec<usize> = (0..self.tp.world())
                .filter(|&r| mask0 & (1 << r) != 0)
                .collect();
            let k = live.len();
            if k < self.tp.world() {
                self.mode = SyncMode::LossyDegraded;
            }
            if k == 1 {
                // Solo ring: bit-identical to plain single-process
                // training — no fold, no scale.
                return Ok(BucketReport {
                    mode: self.mode,
                    live: 1,
                    elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
                    bytes: 0,
                    min_contributors: 1,
                    restarts,
                    evicted,
                });
            }
            let me = live.iter().position(|&r| r == me_rank).expect("own rank live");
            let right = live[(me + 1) % k];
            let left = live[(me + k - 1) % k];
            let spans = chunk_spans(grad.len(), k);
            let mut scratch = grad.to_vec();
            let mut contrib = vec![own_bit; k];
            let mut bytes = 0u64;

            // Reduce-scatter: k-1 steps; chunk c starts at position c
            // and accumulates rightward.
            for s in 0..k - 1 {
                let send_c = (me + k - s) % k;
                let recv_c = (me + k - s - 1) % k;
                let key = Key {
                    step,
                    bucket,
                    phase: 0,
                    ring_step: s as u16,
                };
                let mut f = Frame::control(FrameKind::Data, 0, key, send_c as u16);
                f.contributors = contrib[send_c];
                f.payload = scratch[spans[send_c].clone()].to_vec();
                if self.tp.send_data(right, f).is_err() {
                    self.evict_failed(right, &mut evicted);
                    restarts += 1;
                    continue 'attempt;
                }
                match self.recv_op(left, right, key, &mut stash, mask0, &mut evicted) {
                    RecvOutcome::Frame(fr) => {
                        let span = spans[recv_c].clone();
                        if fr.payload.iter().any(|v| !v.is_finite()) {
                            // A poisoned running sum: reject the whole
                            // contribution chain, keep our own partial
                            // (mirrors `cluster::merge_finite_gradients`).
                            FaultMetrics::bump(&self.tp.metrics().gradients_rejected);
                        } else if fr.payload.len() == span.len() {
                            let dst = &mut scratch[span];
                            for (d, &v) in dst.iter_mut().zip(&fr.payload) {
                                *d += v;
                            }
                            contrib[recv_c] = fr.contributors | own_bit;
                            bytes += (fr.payload.len() * 4) as u64;
                        }
                    }
                    RecvOutcome::Missed => {}
                    RecvOutcome::Restart => {
                        restarts += 1;
                        continue 'attempt;
                    }
                    RecvOutcome::Fatal(e) => return Err(e.into()),
                }
            }
            FaultMetrics::add(&self.tp.metrics().bytes_reduced, bytes);

            // All-gather: k-1 steps; each position starts by forwarding
            // the chunk it fully owns, (me + 1) mod k.
            for s in 0..k - 1 {
                let send_c = (me + 1 + k - s) % k;
                let recv_c = (me + k - s) % k;
                let key = Key {
                    step,
                    bucket,
                    phase: 1,
                    ring_step: s as u16,
                };
                let mut f = Frame::control(FrameKind::Data, 0, key, send_c as u16);
                f.contributors = contrib[send_c];
                f.payload = scratch[spans[send_c].clone()].to_vec();
                if self.tp.send_data(right, f).is_err() {
                    self.evict_failed(right, &mut evicted);
                    restarts += 1;
                    continue 'attempt;
                }
                match self.recv_op(left, right, key, &mut stash, mask0, &mut evicted) {
                    RecvOutcome::Frame(fr) => {
                        let span = spans[recv_c].clone();
                        let finite = fr.payload.iter().all(|v| v.is_finite());
                        // Synchronized: the received chunk is the fully
                        // reduced one — always adopt. Lossy: adopt when
                        // it folds at least as many contributors as ours.
                        let adopt = finite
                            && fr.payload.len() == span.len()
                            && (self.mode == SyncMode::Synchronized
                                || fr.contributors.count_ones()
                                    >= contrib[recv_c].count_ones());
                        if adopt {
                            scratch[span].copy_from_slice(&fr.payload);
                            contrib[recv_c] = fr.contributors;
                        } else if !finite {
                            FaultMetrics::bump(&self.tp.metrics().gradients_rejected);
                        }
                    }
                    RecvOutcome::Missed => {}
                    RecvOutcome::Restart => {
                        restarts += 1;
                        continue 'attempt;
                    }
                    RecvOutcome::Fatal(e) => return Err(e.into()),
                }
            }

            // A lossy bucket that closed with holes raced the repair
            // traffic that explains them: a peer discovering a death at
            // the same cadence as our miss windows broadcasts its Evict
            // a hair after our last deadline. Linger one window for that
            // news and restart over the healed ring instead of baking
            // half-empty contributor sets into the step.
            let holes = contrib.iter().any(|c| c.count_ones() < k as u32);
            if holes
                && self.mode == SyncMode::LossyDegraded
                && self.tp.wait_failure(
                    mask0,
                    Instant::now() + Duration::from_millis(self.policy.lossy_timeout_ms),
                )
            {
                restarts += 1;
                continue 'attempt;
            }

            // Average: per-chunk divisor from the contributor mask (all
            // k in synchronized mode).
            let mut min_contrib = u32::MAX;
            for (c, span) in spans.iter().enumerate() {
                let n = contrib[c].count_ones().max(1);
                min_contrib = min_contrib.min(n);
                let scale = 1.0f32 / n as f32;
                for v in &mut scratch[span.clone()] {
                    *v *= scale;
                }
            }
            grad.copy_from_slice(&scratch);
            return Ok(BucketReport {
                mode: self.mode,
                live: k,
                elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
                bytes,
                min_contributors: if min_contrib == u32::MAX { 1 } else { min_contrib },
                restarts,
                evicted,
            });
        }
    }

    /// Evicts a peer after a hard failure and degrades to lossy.
    fn evict_failed(&mut self, peer: usize, evicted: &mut Vec<usize>) {
        if self.tp.evict(peer) {
            evicted.push(peer);
        }
        self.mode = SyncMode::LossyDegraded;
    }

    /// One deadline-bounded, retry-wrapped receive of `key` from `from`.
    ///
    /// `right` is this rank's downstream neighbor: on every silent
    /// timeout we tell it we're alive via [`Transport::send_busy`], and
    /// we relay any Busy we hear onward, so patience propagates around
    /// the ring and only the rank adjacent to an actually-dead peer
    /// exhausts its budget and evicts.
    fn recv_op(
        &mut self,
        from: usize,
        right: usize,
        key: Key,
        stash: &mut HashMap<Key, Frame>,
        mask0: u32,
        evicted: &mut Vec<usize>,
    ) -> RecvOutcome {
        if let Some(f) = stash.remove(&key) {
            return RecvOutcome::Frame(f);
        }
        let metrics = Arc::clone(self.tp.metrics());
        // Two independent retry budgets. Silence is exculpable — a Busy
        // from the upstream proves it alive and resets `silent`. Corrupt
        // deliveries are *active* evidence of a faulty sender and no
        // liveness signal excuses them, so `corrupt` only ever grows.
        let mut silent = 0u32;
        let mut corrupt = 0u32;
        // Set by a Busy from the upstream, consumed by the next timeout:
        // "alive but blocked on ring repair right now". One signal buys
        // one patient window — a peer that stops signalling (finished,
        // or dead) stops buying patience.
        let mut stalled = false;
        // Each Busy heard buys one fresh timeout window, bounded so a
        // livelocked ring (everyone "busy", nobody progressing) still
        // converges to eviction instead of waiting forever.
        let mut busy_credit = (self.policy.max_retries + 2) * self.tp.world() as u32;
        let t_start = Instant::now();
        loop {
            if self.tp.failed_mask() & mask0 != 0 {
                // A member of the current ring has *failed* (a graceful
                // departure never interrupts a bucket in flight).
                return RecvOutcome::Restart;
            }
            let lossy = self.mode == SyncMode::LossyDegraded;
            let per_op = Duration::from_millis(if lossy {
                self.policy.lossy_timeout_ms
            } else {
                self.policy.op_timeout_ms
            });
            let out = match self.tp.recv(from, Instant::now() + per_op, mask0) {
                Ok(Delivery::Frame(f)) if f.kind == FrameKind::Busy => {
                    if busy_credit > 0 {
                        busy_credit -= 1;
                        // The upstream is provably alive, just blocked:
                        // silence so far was not its fault. Resetting the
                        // counters (not merely the window) keeps a timing
                        // race between its Busy cadence and our timeout
                        // cadence from accumulating attempts anyway.
                        silent = 0;
                        self.misses[from] = 0;
                        stalled = true;
                        // Pass the liveness signal downstream: our
                        // neighbor is now also waiting on a stalled
                        // (but live) chain.
                        self.tp.send_busy(right, key);
                        continue;
                    }
                    // An upstream "busy" for this many windows is
                    // indistinguishable from livelock: resume counting
                    // silence against it.
                    self.handle_silence(
                        from, right, key, lossy, false, &mut silent, &metrics, evicted,
                    )
                }
                Ok(Delivery::Frame(f)) => {
                    if f.kind != FrameKind::Data {
                        continue;
                    }
                    if f.alive & self.tp.failed_mask() != 0 {
                        // Sent before its sender learned of a death we
                        // already know about: a stale duplicate from the
                        // pre-healing ring (possibly queued before our
                        // own mask shrank) — its chunk geometry is wrong.
                        continue;
                    }
                    if self.tp.failed_mask() & mask0 != 0 {
                        // The frame rode in with death news: heal first;
                        // resends recover it after the restart.
                        return RecvOutcome::Restart;
                    }
                    if f.key == key {
                        self.misses[from] = 0;
                        self.observe_latency(from, t_start.elapsed());
                        return RecvOutcome::Frame(f);
                    }
                    // Out-of-order (the peer ran ahead, or a duplicate
                    // resend): park it for a later op this bucket.
                    stash.insert(f.key, f);
                    continue;
                }
                Ok(Delivery::Corrupt) => {
                    // CRC failure: same bounded retry path as silence,
                    // but charged to the unforgivable budget, and no
                    // stall grace — corrupt data is active misbehavior.
                    self.handle_silence(
                        from, right, key, lossy, false, &mut corrupt, &metrics, evicted,
                    )
                }
                Err(TransportError::Timeout { .. }) => self.handle_silence(
                    from,
                    right,
                    key,
                    lossy,
                    std::mem::take(&mut stalled),
                    &mut silent,
                    &metrics,
                    evicted,
                ),
                Err(TransportError::PeerDead { peer: _ }) => {
                    self.mode = SyncMode::LossyDegraded;
                    return RecvOutcome::Restart;
                }
                Err(TransportError::Disconnected { peer }) => {
                    self.evict_failed(peer, evicted);
                    return RecvOutcome::Restart;
                }
                Err(TransportError::DeathNotice) => {
                    // A watched ring member failed while we were blocked:
                    // heal now instead of sitting out the deadline.
                    return RecvOutcome::Restart;
                }
                Err(e) => return RecvOutcome::Fatal(e),
            };
            if let Some(out) = out {
                return out;
            }
        }
    }

    /// The shared reaction to a silent (or corrupt) window from `from`:
    /// lossy mode counts a miss, synchronized mode burns a retry from
    /// the caller-chosen budget (`attempt`), requests a resend, tells
    /// `right` we're still here, and backs off. Returns `Some` when the
    /// receive loop should stop retrying.
    ///
    /// `stalled` means the upstream sent a Busy since the last timeout:
    /// it is provably alive but blocked on ring repair, so a lossy
    /// deadline waits one more window rather than skipping the chunk —
    /// finalizing a bucket mid-heal would bake a half-empty contributor
    /// set into the step when a restart is imminent anyway.
    #[allow(clippy::too_many_arguments)]
    fn handle_silence(
        &mut self,
        from: usize,
        right: usize,
        key: Key,
        lossy: bool,
        stalled: bool,
        attempt: &mut u32,
        metrics: &Arc<FaultMetrics>,
        evicted: &mut Vec<usize>,
    ) -> Option<RecvOutcome> {
        if lossy {
            if stalled {
                // Repair in progress upstream: it ends in data, an
                // eviction broadcast, or our own DeathNotice — all of
                // which unblock us. Signal our own waiter and hold.
                self.tp.send_busy(right, key);
                return None;
            }
            self.misses[from] += 1;
            if self.misses[from] > self.policy.max_retries {
                self.evict_failed(from, evicted);
                return Some(RecvOutcome::Restart);
            }
            // Even on the deadline-driven path, our waiter must learn
            // we're alive before it burns its own (short) miss budget.
            self.tp.send_busy(right, key);
            return Some(RecvOutcome::Missed);
        }
        *attempt += 1;
        if *attempt > self.policy.max_retries {
            self.evict_failed(from, evicted);
            return Some(RecvOutcome::Restart);
        }
        FaultMetrics::bump(&metrics.retries);
        let _ = self.tp.request_resend(from, key);
        // Our own waiter must not mistake this stall for our death.
        self.tp.send_busy(right, key);
        let pause = self.policy.backoff(*attempt, &mut self.rng);
        std::thread::sleep(pause);
        None
    }

    /// Feeds a successful receive latency into the peer's EWMA and
    /// flags a straggler when it blows past the estimate.
    fn observe_latency(&mut self, from: usize, took: Duration) {
        let ms = took.as_secs_f64() * 1e3;
        let n = self.ewma_n[from];
        if n >= self.policy.straggler_grace
            && !self.flagged[from]
            && ms > self.policy.straggler_threshold * self.ewma[from].max(0.05)
        {
            self.flagged[from] = true;
            FaultMetrics::bump(&self.tp.metrics().stragglers_detected);
        }
        self.ewma[from] = if n == 0 {
            ms
        } else {
            self.policy.ewma_alpha * ms + (1.0 - self.policy.ewma_alpha) * self.ewma[from]
        };
        self.ewma_n[from] = n.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_spans_cover_exactly_once() {
        for (len, k) in [(10, 3), (7, 7), (3, 5), (0, 2), (16, 4)] {
            let spans = chunk_spans(len, k);
            assert_eq!(spans.len(), k);
            let mut at = 0;
            for s in &spans {
                assert_eq!(s.start, at);
                at = s.end;
            }
            assert_eq!(at, len);
            let sizes: Vec<usize> = spans.iter().map(|s| s.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced chunking");
        }
    }

    #[test]
    fn reference_allreduce_is_a_rotated_mean() {
        let parts = vec![vec![1.0f32; 8], vec![2.0; 8], vec![3.0; 8], vec![6.0; 8]];
        let out = reference_allreduce(&parts);
        for v in out {
            assert_eq!(v, 3.0);
        }
        // Solo contribution comes back untouched.
        let solo = vec![vec![0.1f32, -0.2, 0.3]];
        assert_eq!(reference_allreduce(&solo), solo[0]);
    }

    #[test]
    fn comm_policy_validation_catches_nonsense() {
        assert!(CommPolicy::default().validate().is_ok());
        let nonsense = [
            CommPolicy { op_timeout_ms: 0, ..CommPolicy::default() },
            CommPolicy { jitter: 1.5, ..CommPolicy::default() },
            CommPolicy { straggler_threshold: 0.5, ..CommPolicy::default() },
            CommPolicy { backoff_cap_ms: 0.5, ..CommPolicy::default() },
        ];
        for p in nonsense {
            assert!(p.validate().is_err());
        }
    }

    #[test]
    fn backoff_grows_and_respects_cap_with_jitter() {
        let p = CommPolicy {
            backoff_base_ms: 2.0,
            backoff_cap_ms: 16.0,
            jitter: 0.5,
            ..CommPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let b1 = p.backoff(1, &mut rng).as_secs_f64() * 1e3;
        let b3 = p.backoff(3, &mut rng).as_secs_f64() * 1e3;
        let b9 = p.backoff(9, &mut rng).as_secs_f64() * 1e3;
        assert!((2.0..=3.0).contains(&b1), "base with jitter, got {b1}");
        assert!((8.0..=12.0).contains(&b3), "2*2^2 with jitter, got {b3}");
        assert!(b9 <= 16.0 * 1.5 + 1e-9, "capped with jitter, got {b9}");
        // Deterministic for a fixed seed.
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        assert_eq!(p.backoff(2, &mut r1), p.backoff(2, &mut r2));
    }
}
