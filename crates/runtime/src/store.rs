//! Buffer allocation: realizes the compiler's buffer plan, honoring
//! aliases (shared storage) and batching.
//!
//! Batched buffers are allocated as one contiguous region of
//! `batch * per_item` floats, item-major. Contiguity is what allows the
//! runtime to execute fully-connected GEMMs once per batch instead of per
//! item, and what keeps the double-buffered input loader a single copy.

use std::collections::HashMap;

use latte_ir::{BufferDecl, BufferKind};
use latte_tensor::Shape;

use crate::error::RuntimeError;

/// Resolved placement of one named buffer.
#[derive(Debug, Clone)]
pub struct BufInfo {
    /// Index into the store's storage vector.
    pub storage: usize,
    /// Elements per batch item.
    pub per_item: usize,
    /// Whether the buffer has one copy per batch item.
    pub batched: bool,
    /// The declared role.
    pub kind: BufferKind,
    /// The declared per-item shape.
    pub shape: Shape,
}

/// All allocated storage for one compiled network instance.
#[derive(Debug)]
pub struct BufferStore {
    batch: usize,
    infos: HashMap<String, BufInfo>,
    /// Primary declaration kind per storage (for phase zeroing).
    storage_kinds: Vec<BufferKind>,
    pub(crate) storages: Vec<Vec<f32>>,
}

impl BufferStore {
    /// Allocates storage for a buffer plan.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadAlias`] when an alias target is missing
    /// or incompatible.
    pub fn new(decls: &[BufferDecl], batch: usize) -> Result<Self, RuntimeError> {
        let mut infos: HashMap<String, BufInfo> = HashMap::new();
        let mut storages: Vec<Vec<f32>> = Vec::new();
        let mut storage_kinds: Vec<BufferKind> = Vec::new();
        for decl in decls {
            let per_item = decl.shape.len();
            let batched = decl.kind.is_batched();
            match &decl.alias_of {
                None => {
                    let len = if batched { per_item * batch } else { per_item };
                    storages.push(vec![0.0; len]);
                    storage_kinds.push(decl.kind);
                    infos.insert(
                        decl.name.clone(),
                        BufInfo {
                            storage: storages.len() - 1,
                            per_item,
                            batched,
                            kind: decl.kind,
                            shape: decl.shape.clone(),
                        },
                    );
                }
                Some(target) => {
                    let t = infos.get(target).ok_or_else(|| RuntimeError::BadAlias {
                        name: decl.name.clone(),
                        target: target.clone(),
                    })?;
                    if t.per_item != per_item || t.batched != batched {
                        return Err(RuntimeError::BadAlias {
                            name: decl.name.clone(),
                            target: target.clone(),
                        });
                    }
                    let storage = t.storage;
                    infos.insert(
                        decl.name.clone(),
                        BufInfo {
                            storage,
                            per_item,
                            batched,
                            kind: decl.kind,
                            shape: decl.shape.clone(),
                        },
                    );
                }
            }
        }
        Ok(BufferStore {
            batch,
            infos,
            storage_kinds,
            storages,
        })
    }

    /// The batch size the store was allocated for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Placement of a named buffer.
    pub fn info(&self, name: &str) -> Option<&BufInfo> {
        self.infos.get(name)
    }

    /// Placement of a named buffer, as an error-carrying lookup.
    pub fn require(&self, name: &str) -> Result<&BufInfo, RuntimeError> {
        self.infos.get(name).ok_or_else(|| RuntimeError::UnknownBuffer {
            name: name.to_string(),
        })
    }

    /// Copies a buffer's entire storage out (all batch items).
    pub fn read(&self, name: &str) -> Result<Vec<f32>, RuntimeError> {
        let info = self.require(name)?;
        Ok(self.storages[info.storage].clone())
    }

    /// Copies one item's slice of a batched buffer (or the whole buffer
    /// when unbatched).
    pub fn read_item(&self, name: &str, item: usize) -> Result<Vec<f32>, RuntimeError> {
        let info = self.require(name)?;
        let s = &self.storages[info.storage];
        if info.batched {
            let off = item * info.per_item;
            Ok(s[off..off + info.per_item].to_vec())
        } else {
            Ok(s.clone())
        }
    }

    /// Overwrites a buffer's entire storage.
    ///
    /// # Errors
    ///
    /// Fails when `data` length differs from the storage length.
    pub fn write(&mut self, name: &str, data: &[f32]) -> Result<(), RuntimeError> {
        let info = self.require(name)?.clone();
        let s = &mut self.storages[info.storage];
        if s.len() != data.len() {
            return Err(RuntimeError::InputShape {
                buffer: name.to_string(),
                detail: format!("expected {} elements, got {}", s.len(), data.len()),
            });
        }
        s.copy_from_slice(data);
        Ok(())
    }

    /// Zeroes every activation-gradient storage (`Grad` and
    /// `InputGradStage`), run before each backward pass.
    pub fn zero_grads(&mut self) {
        for (i, kind) in self.storage_kinds.iter().enumerate() {
            if matches!(kind, BufferKind::Grad | BufferKind::InputGradStage) {
                self.storages[i].fill(0.0);
            }
        }
    }

    /// Zeroes every parameter-gradient storage, run before each
    /// accumulation window (usually every iteration).
    pub fn zero_param_grads(&mut self) {
        for (i, kind) in self.storage_kinds.iter().enumerate() {
            if matches!(kind, BufferKind::ParamGrad) {
                self.storages[i].fill(0.0);
            }
        }
    }

    /// Total allocated floats (the memory-consumption metric used by the
    /// shared-buffer ablation).
    pub fn total_elements(&self) -> usize {
        self.storages.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decls() -> Vec<BufferDecl> {
        vec![
            BufferDecl::new("a.value", vec![4], BufferKind::Value),
            BufferDecl::alias("b.value", vec![4], BufferKind::Value, "a.value"),
            BufferDecl::new("a.weights", vec![4, 2], BufferKind::Param),
            BufferDecl::new("a.grad", vec![4], BufferKind::Grad),
            BufferDecl::new("a.g_weights", vec![4, 2], BufferKind::ParamGrad),
        ]
    }

    #[test]
    fn batched_buffers_scale_with_batch() {
        let store = BufferStore::new(&decls(), 3).unwrap();
        assert_eq!(store.read("a.value").unwrap().len(), 12);
        // Params are not batched.
        assert_eq!(store.read("a.weights").unwrap().len(), 8);
    }

    #[test]
    fn aliases_share_storage() {
        let mut store = BufferStore::new(&decls(), 2).unwrap();
        store.write("a.value", &[1.0; 8]).unwrap();
        assert_eq!(store.read("b.value").unwrap(), vec![1.0; 8]);
        assert_eq!(
            store.info("a.value").unwrap().storage,
            store.info("b.value").unwrap().storage
        );
    }

    #[test]
    fn read_item_slices_batched_buffers() {
        let mut store = BufferStore::new(&decls(), 2).unwrap();
        store
            .write("a.value", &[0.0, 0.0, 0.0, 0.0, 5.0, 5.0, 5.0, 5.0])
            .unwrap();
        assert_eq!(store.read_item("a.value", 1).unwrap(), vec![5.0; 4]);
    }

    #[test]
    fn zeroing_is_kind_selective() {
        let mut store = BufferStore::new(&decls(), 1).unwrap();
        store.write("a.grad", &[1.0; 4]).unwrap();
        store.write("a.g_weights", &[1.0; 8]).unwrap();
        store.zero_grads();
        assert_eq!(store.read("a.grad").unwrap(), vec![0.0; 4]);
        assert_eq!(store.read("a.g_weights").unwrap(), vec![1.0; 8]);
        store.zero_param_grads();
        assert_eq!(store.read("a.g_weights").unwrap(), vec![0.0; 8]);
    }

    #[test]
    fn missing_alias_target_rejected() {
        let bad = vec![BufferDecl::alias(
            "x",
            vec![4],
            BufferKind::Value,
            "missing",
        )];
        assert!(matches!(
            BufferStore::new(&bad, 1),
            Err(RuntimeError::BadAlias { .. })
        ));
    }

    #[test]
    fn write_validates_length() {
        let mut store = BufferStore::new(&decls(), 1).unwrap();
        assert!(store.write("a.value", &[0.0; 3]).is_err());
    }

    #[test]
    fn shared_state_is_unbatched() {
        let decls = vec![
            BufferDecl::new("bn.state_prob", vec![4], BufferKind::State),
            BufferDecl::new("bn.state_mean", vec![4], BufferKind::SharedState),
        ];
        let store = BufferStore::new(&decls, 3).unwrap();
        assert_eq!(store.read("bn.state_prob").unwrap().len(), 12);
        assert_eq!(store.read("bn.state_mean").unwrap().len(), 4);
    }

    #[test]
    fn total_elements_counts_unique_storage() {
        let store = BufferStore::new(&decls(), 1).unwrap();
        // a.value(4) + weights(8) + grad(4) + g_weights(8); alias adds 0.
        assert_eq!(store.total_elements(), 24);
    }
}
