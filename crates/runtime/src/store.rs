//! Buffer allocation: realizes the compiler's buffer plan, honoring
//! aliases (shared storage) and batching.
//!
//! Batched buffers are allocated as one contiguous region of
//! `batch * per_item` floats, item-major. Contiguity is what allows the
//! runtime to execute fully-connected GEMMs once per batch instead of per
//! item, and what keeps the double-buffered input loader a single copy.

use std::collections::HashMap;

use latte_ir::{BufferDecl, BufferKind};
use latte_tensor::Shape;

use crate::error::RuntimeError;

/// Whether (and how) a buffer's contents can be observed through the
/// store after a run. Everything is [`Visibility::Retained`] in the
/// default layout; the liveness arena introduces the other states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Private storage, exactly the non-arena semantics.
    Retained,
    /// Lives in a shared arena slot as its *last* occupant: contents are
    /// valid after a run, reads see the buffer's logical length.
    Final,
    /// Lived in a shared arena slot but a later buffer reclaimed it;
    /// reads and writes fail with a structured error instead of exposing
    /// the current occupant's bytes.
    Expired,
    /// No statement touches the buffer, so the arena gave it no storage.
    Dead,
}

/// Resolved placement of one named buffer.
#[derive(Debug, Clone)]
pub struct BufInfo {
    /// Index into the store's storage vector.
    pub storage: usize,
    /// Elements per batch item.
    pub per_item: usize,
    /// Whether the buffer has one copy per batch item.
    pub batched: bool,
    /// The declared role.
    pub kind: BufferKind,
    /// The declared per-item shape.
    pub shape: Shape,
    /// Arena visibility (always [`Visibility::Retained`] without the
    /// arena).
    pub vis: Visibility,
}

impl BufInfo {
    /// The buffer's logical element count: `per_item` times the batch for
    /// batched buffers. Equals the storage length for retained buffers;
    /// arena slots may be larger (sized for their largest occupant).
    pub fn logical_len(&self, batch: usize) -> usize {
        self.per_item * if self.batched { batch } else { 1 }
    }
}

/// All allocated storage for one compiled network instance.
#[derive(Debug)]
pub struct BufferStore {
    batch: usize,
    infos: HashMap<String, BufInfo>,
    /// Primary declaration kind per storage (for phase zeroing).
    storage_kinds: Vec<BufferKind>,
    /// Per storage: shared arena slot (excluded from global zeroing; the
    /// execution plan zeroes occupants at their first-access group).
    arena_storages: Vec<bool>,
    pub(crate) storages: Vec<Vec<f32>>,
}

impl BufferStore {
    /// Allocates storage for a buffer plan, one private storage per
    /// primary declaration (aliases share their target's).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadAlias`] when an alias target is missing
    /// or incompatible.
    pub fn new(decls: &[BufferDecl], batch: usize) -> Result<Self, RuntimeError> {
        Self::build(decls, batch, None)
    }

    /// Allocates storage following an explicit arena layout: classes
    /// mapped to shared backings sized by the layout, with per-class
    /// visibility. `None` behaves exactly like [`BufferStore::new`].
    pub(crate) fn with_layout(
        decls: &[BufferDecl],
        batch: usize,
        layout: Option<&crate::plan::MemoryLayout>,
    ) -> Result<Self, RuntimeError> {
        Self::build(decls, batch, layout)
    }

    fn build(
        decls: &[BufferDecl],
        batch: usize,
        layout: Option<&crate::plan::MemoryLayout>,
    ) -> Result<Self, RuntimeError> {
        let mut infos: HashMap<String, BufInfo> = HashMap::new();
        let mut storages: Vec<Vec<f32>> = layout
            .map(|l| l.backing_len.iter().map(|&n| vec![0.0; n]).collect())
            .unwrap_or_default();
        let mut storage_kinds: Vec<BufferKind> = vec![BufferKind::Value; storages.len()];
        let mut arena_storages: Vec<bool> =
            layout.map(|l| l.backing_arena.clone()).unwrap_or_default();
        // Classes are numbered over primary declarations in order — the
        // same numbering the layout was computed with.
        let mut next_class = 0usize;
        for decl in decls {
            let per_item = decl.shape.len();
            let batched = decl.kind.is_batched();
            match &decl.alias_of {
                None => {
                    let class = next_class;
                    next_class += 1;
                    let (storage, vis) = match layout {
                        Some(l) => (l.backing_of_class[class], l.class_vis[class]),
                        None => {
                            let len = if batched { per_item * batch } else { per_item };
                            storages.push(vec![0.0; len]);
                            storage_kinds.push(decl.kind);
                            arena_storages.push(false);
                            (storages.len() - 1, Visibility::Retained)
                        }
                    };
                    if layout.is_some() {
                        // Record the kind for global zeroing (arena
                        // storages are excluded from it anyway).
                        storage_kinds[storage] = decl.kind;
                    }
                    infos.insert(
                        decl.name.clone(),
                        BufInfo {
                            storage,
                            per_item,
                            batched,
                            kind: decl.kind,
                            shape: decl.shape.clone(),
                            vis,
                        },
                    );
                }
                Some(target) => {
                    let t = infos.get(target).ok_or_else(|| RuntimeError::BadAlias {
                        name: decl.name.clone(),
                        target: target.clone(),
                    })?;
                    if t.per_item != per_item || t.batched != batched {
                        return Err(RuntimeError::BadAlias {
                            name: decl.name.clone(),
                            target: target.clone(),
                        });
                    }
                    let storage = t.storage;
                    let vis = t.vis;
                    infos.insert(
                        decl.name.clone(),
                        BufInfo {
                            storage,
                            per_item,
                            batched,
                            kind: decl.kind,
                            shape: decl.shape.clone(),
                            vis,
                        },
                    );
                }
            }
        }
        Ok(BufferStore {
            batch,
            infos,
            storage_kinds,
            arena_storages,
            storages,
        })
    }

    /// The batch size the store was allocated for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Placement of a named buffer.
    pub fn info(&self, name: &str) -> Option<&BufInfo> {
        self.infos.get(name)
    }

    /// Placement of a named buffer, as an error-carrying lookup.
    pub fn require(&self, name: &str) -> Result<&BufInfo, RuntimeError> {
        self.infos.get(name).ok_or_else(|| RuntimeError::UnknownBuffer {
            name: name.to_string(),
        })
    }

    /// Rejects access to buffers whose storage the arena reclaimed (or
    /// never materialized); passes visible buffers through.
    fn visible<'a>(&self, name: &str, info: &'a BufInfo) -> Result<&'a BufInfo, RuntimeError> {
        match info.vis {
            Visibility::Retained | Visibility::Final => Ok(info),
            Visibility::Expired => Err(RuntimeError::BufferRetired {
                name: name.to_string(),
                detail: "its arena slot was reclaimed by a later-live buffer".to_string(),
            }),
            Visibility::Dead => Err(RuntimeError::BufferRetired {
                name: name.to_string(),
                detail: "no statement touches it, so the arena gave it no storage".to_string(),
            }),
        }
    }

    /// The visible contents of a buffer: its logical prefix of the
    /// backing storage, or `None` when the arena retired it. Used by the
    /// numerical sentinels, which must never scan a co-resident's bytes.
    pub fn scan_view(&self, name: &str) -> Option<&[f32]> {
        let info = self.infos.get(name)?;
        match info.vis {
            Visibility::Retained | Visibility::Final => {
                Some(&self.storages[info.storage][..info.logical_len(self.batch)])
            }
            Visibility::Expired | Visibility::Dead => None,
        }
    }

    /// Copies a buffer's entire logical contents out (all batch items).
    ///
    /// # Errors
    ///
    /// Fails for unknown buffers, and for buffers retired by the arena
    /// (never returns another buffer's bytes).
    pub fn read(&self, name: &str) -> Result<Vec<f32>, RuntimeError> {
        let info = self.visible(name, self.require(name)?)?;
        Ok(self.storages[info.storage][..info.logical_len(self.batch)].to_vec())
    }

    /// Copies one item's slice of a batched buffer (or the whole buffer
    /// when unbatched).
    ///
    /// # Errors
    ///
    /// As [`BufferStore::read`].
    pub fn read_item(&self, name: &str, item: usize) -> Result<Vec<f32>, RuntimeError> {
        let info = self.visible(name, self.require(name)?)?;
        let s = &self.storages[info.storage];
        if info.batched {
            let off = item * info.per_item;
            Ok(s[off..off + info.per_item].to_vec())
        } else {
            Ok(s[..info.per_item].to_vec())
        }
    }

    /// Overwrites a buffer's entire logical contents.
    ///
    /// # Errors
    ///
    /// Fails when `data` length differs from the buffer's logical length,
    /// and for buffers retired by the arena.
    pub fn write(&mut self, name: &str, data: &[f32]) -> Result<(), RuntimeError> {
        let info = self.visible(name, self.require(name)?)?.clone();
        let len = info.logical_len(self.batch);
        if len != data.len() {
            return Err(RuntimeError::InputShape {
                buffer: name.to_string(),
                detail: format!("expected {} elements, got {}", len, data.len()),
            });
        }
        self.storages[info.storage][..len].copy_from_slice(data);
        Ok(())
    }

    /// Overwrites one item's slice of a batched buffer (or the whole
    /// buffer when unbatched — `item` must then be 0).
    ///
    /// # Errors
    ///
    /// Fails when `data` length differs from the buffer's per-item
    /// length, when `item` is outside the batch, and for unknown or
    /// arena-retired buffers.
    pub fn write_item(&mut self, name: &str, item: usize, data: &[f32]) -> Result<(), RuntimeError> {
        let info = self.visible(name, self.require(name)?)?.clone();
        if data.len() != info.per_item {
            return Err(RuntimeError::InputShape {
                buffer: name.to_string(),
                detail: format!("expected {} elements per item, got {}", info.per_item, data.len()),
            });
        }
        let items = if info.batched { self.batch } else { 1 };
        if item >= items {
            return Err(RuntimeError::InputShape {
                buffer: name.to_string(),
                detail: format!("item {item} outside batch of {items}"),
            });
        }
        let off = if info.batched { item * info.per_item } else { 0 };
        self.storages[info.storage][off..off + info.per_item].copy_from_slice(data);
        Ok(())
    }

    /// Zeroes every activation-gradient storage (`Grad` and
    /// `InputGradStage`), run before each backward pass. Shared arena
    /// slots are skipped — the execution plan zeroes each occupant at its
    /// first-access group instead, since a global fill would clobber
    /// whatever buffer currently lives there.
    pub fn zero_grads(&mut self) {
        for (i, kind) in self.storage_kinds.iter().enumerate() {
            if self.arena_storages.get(i).copied().unwrap_or(false) {
                continue;
            }
            if matches!(kind, BufferKind::Grad | BufferKind::InputGradStage) {
                self.storages[i].fill(0.0);
            }
        }
    }

    /// Zeroes every parameter-gradient storage, run before each
    /// accumulation window (usually every iteration).
    pub fn zero_param_grads(&mut self) {
        for (i, kind) in self.storage_kinds.iter().enumerate() {
            if matches!(kind, BufferKind::ParamGrad) {
                self.storages[i].fill(0.0);
            }
        }
    }

    /// Total allocated floats (the memory-consumption metric used by the
    /// shared-buffer ablation).
    pub fn total_elements(&self) -> usize {
        self.storages.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decls() -> Vec<BufferDecl> {
        vec![
            BufferDecl::new("a.value", vec![4], BufferKind::Value),
            BufferDecl::alias("b.value", vec![4], BufferKind::Value, "a.value"),
            BufferDecl::new("a.weights", vec![4, 2], BufferKind::Param),
            BufferDecl::new("a.grad", vec![4], BufferKind::Grad),
            BufferDecl::new("a.g_weights", vec![4, 2], BufferKind::ParamGrad),
        ]
    }

    #[test]
    fn batched_buffers_scale_with_batch() {
        let store = BufferStore::new(&decls(), 3).unwrap();
        assert_eq!(store.read("a.value").unwrap().len(), 12);
        // Params are not batched.
        assert_eq!(store.read("a.weights").unwrap().len(), 8);
    }

    #[test]
    fn aliases_share_storage() {
        let mut store = BufferStore::new(&decls(), 2).unwrap();
        store.write("a.value", &[1.0; 8]).unwrap();
        assert_eq!(store.read("b.value").unwrap(), vec![1.0; 8]);
        assert_eq!(
            store.info("a.value").unwrap().storage,
            store.info("b.value").unwrap().storage
        );
    }

    #[test]
    fn read_item_slices_batched_buffers() {
        let mut store = BufferStore::new(&decls(), 2).unwrap();
        store
            .write("a.value", &[0.0, 0.0, 0.0, 0.0, 5.0, 5.0, 5.0, 5.0])
            .unwrap();
        assert_eq!(store.read_item("a.value", 1).unwrap(), vec![5.0; 4]);
    }

    #[test]
    fn write_item_targets_one_slot() {
        let mut store = BufferStore::new(&decls(), 3).unwrap();
        store.write_item("a.value", 1, &[7.0; 4]).unwrap();
        assert_eq!(store.read_item("a.value", 0).unwrap(), vec![0.0; 4]);
        assert_eq!(store.read_item("a.value", 1).unwrap(), vec![7.0; 4]);
        assert_eq!(store.read_item("a.value", 2).unwrap(), vec![0.0; 4]);
        // Wrong per-item length and out-of-batch items are structured errors.
        assert!(matches!(
            store.write_item("a.value", 0, &[0.0; 5]),
            Err(RuntimeError::InputShape { .. })
        ));
        assert!(matches!(
            store.write_item("a.value", 3, &[0.0; 4]),
            Err(RuntimeError::InputShape { .. })
        ));
        // Unbatched buffers accept only item 0.
        store.write_item("a.weights", 0, &[1.0; 8]).unwrap();
        assert!(store.write_item("a.weights", 1, &[1.0; 8]).is_err());
    }

    #[test]
    fn zeroing_is_kind_selective() {
        let mut store = BufferStore::new(&decls(), 1).unwrap();
        store.write("a.grad", &[1.0; 4]).unwrap();
        store.write("a.g_weights", &[1.0; 8]).unwrap();
        store.zero_grads();
        assert_eq!(store.read("a.grad").unwrap(), vec![0.0; 4]);
        assert_eq!(store.read("a.g_weights").unwrap(), vec![1.0; 8]);
        store.zero_param_grads();
        assert_eq!(store.read("a.g_weights").unwrap(), vec![0.0; 8]);
    }

    #[test]
    fn missing_alias_target_rejected() {
        let bad = vec![BufferDecl::alias(
            "x",
            vec![4],
            BufferKind::Value,
            "missing",
        )];
        assert!(matches!(
            BufferStore::new(&bad, 1),
            Err(RuntimeError::BadAlias { .. })
        ));
    }

    #[test]
    fn write_validates_length() {
        let mut store = BufferStore::new(&decls(), 1).unwrap();
        assert!(store.write("a.value", &[0.0; 3]).is_err());
    }

    #[test]
    fn shared_state_is_unbatched() {
        let decls = vec![
            BufferDecl::new("bn.state_prob", vec![4], BufferKind::State),
            BufferDecl::new("bn.state_mean", vec![4], BufferKind::SharedState),
        ];
        let store = BufferStore::new(&decls, 3).unwrap();
        assert_eq!(store.read("bn.state_prob").unwrap().len(), 12);
        assert_eq!(store.read("bn.state_mean").unwrap().len(), 4);
    }

    #[test]
    fn total_elements_counts_unique_storage() {
        let store = BufferStore::new(&decls(), 1).unwrap();
        // a.value(4) + weights(8) + grad(4) + g_weights(8); alias adds 0.
        assert_eq!(store.total_elements(), 24);
    }
}
