//! Deterministic fault injection for the runtime.
//!
//! A [`FaultPlan`] is an explicit schedule of failures — node crashes,
//! straggler slowdowns, dropped/corrupted gradient transfers, checkpoint
//! I/O errors, and whole-process deaths — that the cluster simulation
//! ([`crate::cluster::simulate_run`]) and the training supervisor
//! ([`crate::supervisor`]) consult at well-defined points. Plans are
//! either written out by hand (tests pin exact scenarios) or generated
//! pseudo-randomly from a seed ([`FaultPlan::random`]), so every failure
//! scenario is reproducible bit-for-bit: same seed, same faults, same
//! recovery trace.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::transport::{corrupt_payload, Frame, FrameKind, TransportError, Wire};

/// One scheduled failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// `node` halts permanently at the start of iteration `iter`.
    NodeCrash {
        /// The crashing node.
        node: usize,
        /// First iteration the node is dead for.
        iter: usize,
    },
    /// `node` computes `factor`× slower for iterations
    /// `from_iter..to_iter`.
    Straggler {
        /// The slow node.
        node: usize,
        /// First affected iteration.
        from_iter: usize,
        /// First iteration back at full speed.
        to_iter: usize,
        /// Compute-time multiplier (> 1).
        factor: f64,
    },
    /// One gradient transfer from `node` for layer `layer` during
    /// iteration `iter` is silently dropped; the receiver times out and
    /// requests a retransmit. Several identical entries model repeated
    /// drops, eating into the retry budget.
    TransferDrop {
        /// The sending node.
        node: usize,
        /// The affected iteration.
        iter: usize,
        /// The layer whose all-reduce is hit.
        layer: usize,
    },
    /// Like [`Fault::TransferDrop`], but the transfer arrives with a bad
    /// checksum — detected immediately instead of after a timeout.
    TransferCorrupt {
        /// The sending node.
        node: usize,
        /// The affected iteration.
        iter: usize,
        /// The layer whose all-reduce is hit.
        layer: usize,
    },
    /// The checkpoint write scheduled at iteration `iter` fails with an
    /// I/O error (fires once).
    IoError {
        /// The affected iteration.
        iter: usize,
    },
    /// The training process dies after completing iteration `iter`
    /// (fires once — the restarted process is not re-killed).
    ProcessDeath {
        /// The last completed iteration before death.
        iter: usize,
    },
    /// The input batch read at global iteration `iter` is corrupted with
    /// NaNs. Persistent, not one-shot: a rolled-back attempt replaying
    /// the same position re-reads the same corrupt record, so recovery
    /// requires quarantining the batch, not retrying it.
    BatchNaN {
        /// The poisoned global iteration.
        iter: usize,
    },
    /// The parameter gradients of global iteration `iter` are corrupted
    /// (NaN) after the backward pass — a transient compute/memory glitch.
    /// One-shot: a replay of the iteration computes clean gradients.
    GradCorrupt {
        /// The affected global iteration.
        iter: usize,
    },
    /// The solver's learning-rate schedule is multiplied by `factor`
    /// just before global iteration `iter` — a bad config push or a
    /// corrupted hyperparameter. One-shot, but the damage persists in
    /// the solver until a health policy reduces the rate again.
    LrSpike {
        /// The first iteration run at the spiked rate.
        iter: usize,
        /// Multiplier applied to the learning-rate schedule (> 1).
        factor: f32,
    },
    /// Node `node`'s gradient contribution to iteration `iter`'s
    /// all-reduce is non-finite; the merge detects and rejects it and
    /// the node is declared faulty.
    GradPoison {
        /// The poisoned node.
        node: usize,
        /// The affected iteration.
        iter: usize,
    },
}

/// How a faulty transfer failed, as seen by the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFault {
    /// Nothing arrived; detected by timeout.
    Dropped,
    /// Payload arrived but failed its checksum; detected immediately.
    Corrupted,
}

/// Rates for [`FaultPlan::random`]; all probabilities are per-node
/// per-iteration.
#[derive(Debug, Clone, Copy)]
pub struct FaultRates {
    /// Probability a healthy node crashes.
    pub crash: f64,
    /// Probability a straggler phase starts.
    pub straggle: f64,
    /// Straggler slowdown factor.
    pub straggle_factor: f64,
    /// Straggler phase length in iterations.
    pub straggle_len: usize,
    /// Probability a node drops one transfer.
    pub transfer_drop: f64,
    /// Probability a node corrupts one transfer.
    pub transfer_corrupt: f64,
    /// Probability a node contributes a non-finite gradient to one
    /// all-reduce. Defaults to 0 (numerical poisoning is opt-in), which
    /// also keeps plans from existing seeds bit-identical.
    pub grad_poison: f64,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            crash: 0.01,
            straggle: 0.05,
            straggle_factor: 3.0,
            straggle_len: 3,
            transfer_drop: 0.02,
            transfer_corrupt: 0.01,
            grad_poison: 0.0,
        }
    }
}

/// A reproducible schedule of failures.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    fired: Vec<bool>,
}

impl FaultPlan {
    /// A plan executing exactly `faults`.
    pub fn new(faults: Vec<Fault>) -> Self {
        let fired = vec![false; faults.len()];
        FaultPlan { faults, fired }
    }

    /// The empty (fault-free) plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Generates a plan over `nodes` nodes and `iters` iterations from a
    /// seed: identical seeds yield identical plans.
    pub fn random(seed: u64, nodes: usize, iters: usize, layers: usize, rates: &FaultRates) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        for iter in 0..iters {
            for node in 0..nodes {
                if rates.crash > 0.0 && rng.gen_range(0.0..1.0) < rates.crash {
                    faults.push(Fault::NodeCrash { node, iter });
                }
                if rates.straggle > 0.0 && rng.gen_range(0.0..1.0) < rates.straggle {
                    faults.push(Fault::Straggler {
                        node,
                        from_iter: iter,
                        to_iter: iter + rates.straggle_len.max(1),
                        factor: rates.straggle_factor,
                    });
                }
                if rates.transfer_drop > 0.0 && rng.gen_range(0.0..1.0) < rates.transfer_drop {
                    let layer = rng.gen_range(0..layers.max(1));
                    faults.push(Fault::TransferDrop { node, iter, layer });
                }
                if rates.transfer_corrupt > 0.0 && rng.gen_range(0.0..1.0) < rates.transfer_corrupt
                {
                    let layer = rng.gen_range(0..layers.max(1));
                    faults.push(Fault::TransferCorrupt { node, iter, layer });
                }
                if rates.grad_poison > 0.0 && rng.gen_range(0.0..1.0) < rates.grad_poison {
                    faults.push(Fault::GradPoison { node, iter });
                }
            }
        }
        FaultPlan::new(faults)
    }

    /// Every scheduled fault.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether `node` is scheduled to have crashed at or before `iter`.
    pub fn crashed_by(&self, node: usize, iter: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::NodeCrash { node: n, iter: i } if *n == node && *i <= iter)
        })
    }

    /// The compute-slowdown factor for `node` at `iter` (1.0 = healthy);
    /// overlapping straggler phases compound.
    pub fn straggle_factor(&self, node: usize, iter: usize) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Straggler {
                    node: n,
                    from_iter,
                    to_iter,
                    factor,
                } if *n == node && (*from_iter..*to_iter).contains(&iter) => Some(*factor),
                _ => None,
            })
            .product::<f64>()
            .max(1.0)
    }

    /// The transfer faults hitting `(node, iter, layer)`, in schedule
    /// order — one retry is needed per entry.
    pub fn transfer_faults(&self, node: usize, iter: usize, layer: usize) -> Vec<TransferFault> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::TransferDrop {
                    node: n,
                    iter: i,
                    layer: l,
                } if (*n, *i, *l) == (node, iter, layer) => Some(TransferFault::Dropped),
                Fault::TransferCorrupt {
                    node: n,
                    iter: i,
                    layer: l,
                } if (*n, *i, *l) == (node, iter, layer) => Some(TransferFault::Corrupted),
                _ => None,
            })
            .collect()
    }

    /// Consumes a pending [`Fault::ProcessDeath`] for `iter`, if one has
    /// not fired yet. One-shot: the restarted process re-executing
    /// `iter` is not killed again.
    pub fn take_process_death(&mut self, iter: u64) -> bool {
        self.take_once(|f| matches!(f, Fault::ProcessDeath { iter: i } if *i as u64 == iter))
    }

    /// Consumes a pending [`Fault::IoError`] for `iter` (one-shot).
    pub fn take_io_error(&mut self, iter: u64) -> bool {
        self.take_once(|f| matches!(f, Fault::IoError { iter: i } if *i as u64 == iter))
    }

    /// Whether the batch read at global iteration `iter` is scheduled to
    /// be NaN-poisoned. Persistent (never consumed): replaying the same
    /// data position re-reads the same corrupt record.
    pub fn batch_poisoned(&self, iter: u64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::BatchNaN { iter: i } if *i as u64 == iter))
    }

    /// Consumes a pending [`Fault::GradCorrupt`] for `iter` (one-shot:
    /// a rolled-back replay of the iteration computes clean gradients).
    pub fn take_grad_corrupt(&mut self, iter: u64) -> bool {
        self.take_once(|f| matches!(f, Fault::GradCorrupt { iter: i } if *i as u64 == iter))
    }

    /// Consumes a pending [`Fault::LrSpike`] for `iter` and returns its
    /// factor (one-shot — the spiked schedule itself persists in the
    /// solver until something corrects it).
    pub fn take_lr_spike(&mut self, iter: u64) -> Option<f32> {
        for (i, f) in self.faults.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            if let Fault::LrSpike { iter: fi, factor } = f {
                if *fi as u64 == iter {
                    let factor = *factor;
                    self.fired[i] = true;
                    return Some(factor);
                }
            }
        }
        None
    }

    /// Whether `node`'s gradient contribution at `iter` is scheduled to
    /// be non-finite. Persistent (never consumed); keyed per iteration.
    pub fn grad_poisoned(&self, node: usize, iter: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::GradPoison { node: n, iter: i } if (*n, *i) == (node, iter))
        })
    }

    fn take_once(&mut self, matches: impl Fn(&Fault) -> bool) -> bool {
        for (i, f) in self.faults.iter().enumerate() {
            if !self.fired[i] && matches(f) {
                self.fired[i] = true;
                return true;
            }
        }
        false
    }
}

/// A [`Wire`] wrapper that injects this module's deterministic fault
/// plans into the *real* transport, so the same scenarios the cluster
/// simulator replays symbolically also exercise the live ring:
///
/// * [`Fault::TransferDrop`] / [`Fault::TransferCorrupt`] apply to the
///   bucket's **first** data frame (reduce-scatter ring-step 0), keyed
///   by `(sender = node, step = iter, bucket = layer)`. The n-th plan
///   entry hits the n-th send attempt of that frame, so repeated
///   entries eat into the receiver's retry budget exactly as the
///   simulator documents — enough of them and the receiver evicts us.
/// * [`Fault::Straggler`] delays every data send by
///   `straggle_unit × (factor − 1)` during its window, which the
///   receiving side's EWMA straggler detector picks up.
/// * [`Fault::NodeCrash`] turns the wire into a silent black hole from
///   its iteration onward — nothing is sent (not even resend services),
///   so peers see timeouts and heal the ring around us.
/// * [`Fault::ProcessDeath`] is *not* handled here: the worker binary
///   maps it to a real `process::exit`, and `BatchNaN` / `GradCorrupt` /
///   `LrSpike` / `GradPoison` stay at the training layer where the data
///   and solver live.
///
/// The extra [`FaultyTransport::with_crash_after_sends`] knob (not part
/// of [`FaultPlan`]) kills the wire after a fixed number of data frames
/// — mid-reduce-scatter — to pin down the partial-chunk healing path.
pub struct FaultyTransport<W: Wire> {
    inner: W,
    rank: usize,
    plan: FaultPlan,
    straggle_unit: Duration,
    crash_after_sends: Option<u64>,
    state: Mutex<FaultyWireState>,
}

#[derive(Default)]
struct FaultyWireState {
    crashed: bool,
    data_sends: u64,
    /// Send attempts of each bucket's fault-targeted frame, keyed by
    /// `(step, bucket)`.
    attempts: HashMap<(u32, u16), usize>,
}

impl<W: Wire> FaultyTransport<W> {
    /// Wraps `inner`, injecting `plan`'s faults for sender `rank`.
    pub fn new(rank: usize, plan: FaultPlan, inner: W) -> FaultyTransport<W> {
        FaultyTransport {
            inner,
            rank,
            plan,
            straggle_unit: Duration::from_millis(5),
            crash_after_sends: None,
            state: Mutex::new(FaultyWireState::default()),
        }
    }

    /// Sets the per-unit straggler delay (default 5 ms per `factor − 1`).
    pub fn with_straggle_unit(mut self, unit: Duration) -> Self {
        self.straggle_unit = unit;
        self
    }

    /// Crashes the wire silently after `n` data frames have been sent —
    /// the mid-reduce-scatter death used by the partial-chunk tests.
    pub fn with_crash_after_sends(mut self, n: u64) -> Self {
        self.crash_after_sends = Some(n);
        self
    }
}

impl<W: Wire> Wire for FaultyTransport<W> {
    fn send(&self, to: usize, mut bytes: Vec<u8>) -> Result<(), TransportError> {
        let peeked = Frame::peek(&bytes);
        let mut st = self.state.lock().unwrap();
        if st.crashed {
            // A dead node neither sends nor errors: peers find out by
            // timing out.
            return Ok(());
        }
        if let Some(p) = peeked {
            if p.kind == FrameKind::Data {
                let step = p.key.step as usize;
                if self.plan.crashed_by(self.rank, step) {
                    st.crashed = true;
                    return Ok(());
                }
                st.data_sends += 1;
                if let Some(n) = self.crash_after_sends {
                    if st.data_sends > n {
                        st.crashed = true;
                        return Ok(());
                    }
                }
                if p.key.phase == 0 && p.key.ring_step == 0 {
                    let site = (p.key.step, p.key.bucket);
                    let attempt = *st.attempts.get(&site).unwrap_or(&0);
                    st.attempts.insert(site, attempt + 1);
                    let faults =
                        self.plan
                            .transfer_faults(self.rank, step, p.key.bucket as usize);
                    if let Some(f) = faults.get(attempt) {
                        match f {
                            TransferFault::Dropped => return Ok(()),
                            TransferFault::Corrupted => {
                                corrupt_payload(&mut bytes);
                            }
                        }
                    }
                }
                let factor = self.plan.straggle_factor(self.rank, step);
                if factor > 1.0 {
                    drop(st);
                    std::thread::sleep(self.straggle_unit.mul_f64(factor - 1.0));
                    return self.inner.send(to, bytes);
                }
            }
        }
        drop(st);
        self.inner.send(to, bytes)
    }

    fn close(&self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let rates = FaultRates::default();
        let a = FaultPlan::random(11, 4, 20, 8, &rates);
        let b = FaultPlan::random(11, 4, 20, 8, &rates);
        assert_eq!(a, b);
        let c = FaultPlan::random(12, 4, 20, 8, &rates);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn crash_is_permanent_from_its_iteration() {
        let plan = FaultPlan::new(vec![Fault::NodeCrash { node: 1, iter: 3 }]);
        assert!(!plan.crashed_by(1, 2));
        assert!(plan.crashed_by(1, 3));
        assert!(plan.crashed_by(1, 10));
        assert!(!plan.crashed_by(0, 10));
    }

    #[test]
    fn straggle_factor_windows_and_compounds() {
        let plan = FaultPlan::new(vec![
            Fault::Straggler {
                node: 0,
                from_iter: 2,
                to_iter: 5,
                factor: 2.0,
            },
            Fault::Straggler {
                node: 0,
                from_iter: 4,
                to_iter: 6,
                factor: 3.0,
            },
        ]);
        assert_eq!(plan.straggle_factor(0, 1), 1.0);
        assert_eq!(plan.straggle_factor(0, 2), 2.0);
        assert_eq!(plan.straggle_factor(0, 4), 6.0);
        assert_eq!(plan.straggle_factor(0, 5), 3.0);
        assert_eq!(plan.straggle_factor(1, 4), 1.0);
    }

    #[test]
    fn transfer_faults_accumulate_per_site() {
        let plan = FaultPlan::new(vec![
            Fault::TransferDrop { node: 2, iter: 1, layer: 0 },
            Fault::TransferDrop { node: 2, iter: 1, layer: 0 },
            Fault::TransferCorrupt { node: 2, iter: 1, layer: 0 },
        ]);
        let faults = plan.transfer_faults(2, 1, 0);
        assert_eq!(
            faults,
            vec![
                TransferFault::Dropped,
                TransferFault::Dropped,
                TransferFault::Corrupted
            ]
        );
        assert!(plan.transfer_faults(2, 1, 1).is_empty());
    }

    #[test]
    fn one_shot_faults_fire_once() {
        let mut plan = FaultPlan::new(vec![
            Fault::ProcessDeath { iter: 5 },
            Fault::IoError { iter: 2 },
        ]);
        assert!(!plan.take_process_death(4));
        assert!(plan.take_process_death(5));
        assert!(!plan.take_process_death(5), "death is one-shot");
        assert!(plan.take_io_error(2));
        assert!(!plan.take_io_error(2));
    }

    #[test]
    fn duplicate_identical_faults_each_fire_once() {
        // Two deaths scheduled for the same iteration model "the restarted
        // process is killed again at the same point": the first attempt
        // consumes one, the retry consumes the other, the third replay of
        // that iteration survives.
        let mut plan = FaultPlan::new(vec![
            Fault::ProcessDeath { iter: 3 },
            Fault::ProcessDeath { iter: 3 },
        ]);
        assert!(plan.take_process_death(3), "first attempt dies");
        assert!(plan.take_process_death(3), "restart dies again");
        assert!(!plan.take_process_death(3), "second restart survives");
    }

    #[test]
    fn consumed_faults_stay_consumed_across_restart_attempts() {
        // The supervisor reuses one plan object across restore attempts;
        // a fault consumed before the crash must not re-fire when the
        // restarted attempt replays the same iterations.
        let mut plan = FaultPlan::new(vec![
            Fault::IoError { iter: 2 },
            Fault::ProcessDeath { iter: 4 },
        ]);
        // Attempt 1: iterations 0..=4.
        for iter in 0..=4u64 {
            let io = plan.take_io_error(iter);
            assert_eq!(io, iter == 2);
            if plan.take_process_death(iter) {
                assert_eq!(iter, 4);
                break;
            }
        }
        // Attempt 2 replays iterations 0..=4 after the restore: neither
        // the I/O error nor the death fires again.
        for iter in 0..=4u64 {
            assert!(!plan.take_io_error(iter), "io error re-fired at {iter}");
            assert!(!plan.take_process_death(iter), "death re-fired at {iter}");
        }
    }

    #[test]
    fn batch_poison_is_persistent_and_grad_corrupt_is_one_shot() {
        let mut plan = FaultPlan::new(vec![
            Fault::BatchNaN { iter: 3 },
            Fault::GradCorrupt { iter: 5 },
        ]);
        // Replaying iteration 3 (e.g. after a rollback) re-reads the
        // same corrupt record every time.
        assert!(plan.batch_poisoned(3));
        assert!(plan.batch_poisoned(3));
        assert!(!plan.batch_poisoned(4));
        // A gradient glitch does not reproduce on replay.
        assert!(!plan.take_grad_corrupt(4));
        assert!(plan.take_grad_corrupt(5));
        assert!(!plan.take_grad_corrupt(5), "glitch is one-shot");
    }

    #[test]
    fn lr_spike_returns_its_factor_once() {
        let mut plan = FaultPlan::new(vec![Fault::LrSpike { iter: 2, factor: 100.0 }]);
        assert_eq!(plan.take_lr_spike(1), None);
        assert_eq!(plan.take_lr_spike(2), Some(100.0));
        assert_eq!(plan.take_lr_spike(2), None);
    }

    #[test]
    fn grad_poison_is_keyed_by_node_and_iteration() {
        let plan = FaultPlan::new(vec![Fault::GradPoison { node: 1, iter: 4 }]);
        assert!(plan.grad_poisoned(1, 4));
        assert!(plan.grad_poisoned(1, 4), "persistent within its iteration");
        assert!(!plan.grad_poisoned(1, 5));
        assert!(!plan.grad_poisoned(0, 4));
    }

    #[test]
    fn grad_poison_rate_samples_into_random_plans() {
        let rates = FaultRates {
            grad_poison: 1.0,
            ..FaultRates::default()
        };
        let plan = FaultPlan::random(7, 2, 3, 4, &rates);
        let poisons = plan
            .faults()
            .iter()
            .filter(|f| matches!(f, Fault::GradPoison { .. }))
            .count();
        assert_eq!(poisons, 6, "rate 1.0 poisons every node every iteration");
    }

    #[test]
    fn take_once_is_keyed_by_iteration_not_order() {
        let mut plan = FaultPlan::new(vec![
            Fault::IoError { iter: 7 },
            Fault::IoError { iter: 2 },
        ]);
        // Consuming the later iteration first leaves the earlier intact.
        assert!(plan.take_io_error(7));
        assert!(plan.take_io_error(2));
        assert!(!plan.take_io_error(7));
        assert!(!plan.take_io_error(2));
    }
}
