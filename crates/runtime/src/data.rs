//! Data sources: synthetic datasets (the stand-ins for ImageNet and
//! MNIST, which are not available in this environment) and a
//! double-buffered prefetching loader matching the paper's Section 6.1
//! input pipeline.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::RuntimeError;

/// A batch: `(data ensemble name, batch * per_item values)` pairs.
pub type Batch = Vec<(String, Vec<f32>)>;

/// A source of training batches.
pub trait BatchSource {
    /// The next batch, `Ok(None)` at the end of an epoch, or an error
    /// when the source itself failed (I/O, a dead prefetch thread, …) —
    /// infallible in-memory sources simply always return `Ok`.
    fn next_batch(&mut self) -> Result<Option<Batch>, RuntimeError>;

    /// Restarts the epoch.
    fn reset(&mut self);
}

/// An in-memory dataset of `(input, label)` items served in fixed-size
/// batches (the stand-in for the paper's `HDF5DataLayer`).
#[derive(Debug, Clone)]
pub struct MemoryDataSource {
    input_name: String,
    label_name: String,
    items: Vec<(Vec<f32>, f32)>,
    batch: usize,
    cursor: usize,
}

impl MemoryDataSource {
    /// Creates a source over items; partial trailing batches are dropped
    /// (as in Caffe).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] when `batch` is zero or
    /// there are fewer items than one batch.
    pub fn try_new(
        input_name: impl Into<String>,
        label_name: impl Into<String>,
        items: Vec<(Vec<f32>, f32)>,
        batch: usize,
    ) -> Result<Self, RuntimeError> {
        if batch == 0 {
            return Err(RuntimeError::InvalidConfig {
                detail: "data source batch size must be non-zero".to_string(),
            });
        }
        if items.len() < batch {
            return Err(RuntimeError::InvalidConfig {
                detail: format!(
                    "data source needs at least one full batch ({} items < batch {batch})",
                    items.len()
                ),
            });
        }
        Ok(MemoryDataSource {
            input_name: input_name.into(),
            label_name: label_name.into(),
            items,
            batch,
            cursor: 0,
        })
    }

    /// Number of full batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.items.len() / self.batch
    }

    /// The items (for accuracy evaluation).
    pub fn items(&self) -> &[(Vec<f32>, f32)] {
        &self.items
    }
}

impl BatchSource for MemoryDataSource {
    fn next_batch(&mut self) -> Result<Option<Batch>, RuntimeError> {
        if self.cursor + self.batch > self.items.len() {
            return Ok(None);
        }
        let slice = &self.items[self.cursor..self.cursor + self.batch];
        self.cursor += self.batch;
        let mut inputs = Vec::with_capacity(slice.len() * slice[0].0.len());
        let mut labels = Vec::with_capacity(slice.len());
        for (x, y) in slice {
            inputs.extend_from_slice(x);
            labels.push(*y);
        }
        Ok(Some(vec![
            (self.input_name.clone(), inputs),
            (self.label_name.clone(), labels),
        ]))
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// A double-buffered prefetching wrapper: while the consumer processes
/// batch `i`, a background thread prepares batch `i+1` into the spare
/// buffer and the buffers swap on [`BatchSource::next_batch`] — the
/// paper's input double buffering, at the host level.
///
/// Batches carry an epoch *generation*; [`BatchSource::reset`] bumps the
/// consumer's generation and the next acknowledgement tells the prefetch
/// thread to reset, so a batch prefetched before the reset is discarded
/// rather than served stale.
///
/// A panicked prefetch thread is *not* contagious: the panic is caught
/// at the thread boundary and surfaces as a [`RuntimeError::Interrupted`]
/// from `next_batch` / [`DoubleBufferedSource::into_inner`] (carrying
/// the panic message), so the supervisor can treat it like any other
/// recoverable crash instead of unwinding the training loop.
#[derive(Debug)]
pub struct DoubleBufferedSource<S: BatchSource + Send + 'static> {
    rx: std::sync::mpsc::Receiver<(u64, Result<Option<Batch>, RuntimeError>)>,
    control: std::sync::mpsc::Sender<Control>,
    handle: Option<std::thread::JoinHandle<S>>,
    gen: u64,
    resets_pending: u64,
    failed: Option<RuntimeError>,
}

#[derive(Debug)]
enum Control {
    Continue,
    Reset,
    Stop,
}

impl<S: BatchSource + Send + 'static> DoubleBufferedSource<S> {
    /// Wraps a source, spawning the prefetch thread.
    pub fn new(mut inner: S) -> Self {
        let (tx, rx) =
            std::sync::mpsc::sync_channel::<(u64, Result<Option<Batch>, RuntimeError>)>(1);
        let (ctl_tx, ctl_rx) = std::sync::mpsc::channel::<Control>();
        let handle = std::thread::spawn(move || {
            let mut generation = 0u64;
            loop {
                let batch = inner.next_batch();
                if tx.send((generation, batch)).is_err() {
                    break;
                }
                match ctl_rx.recv() {
                    Ok(Control::Continue) => {}
                    Ok(Control::Reset) => {
                        generation += 1;
                        inner.reset();
                    }
                    Ok(Control::Stop) | Err(_) => break,
                }
            }
            inner
        });
        DoubleBufferedSource {
            rx,
            control: ctl_tx,
            handle: Some(handle),
            gen: 0,
            resets_pending: 0,
            failed: None,
        }
    }

    /// Stops the prefetcher and returns the inner source.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Interrupted`] when the prefetch thread panicked —
    /// the inner source died with it and cannot be returned.
    pub fn into_inner(mut self) -> Result<S, RuntimeError> {
        let _ = self.control.send(Control::Stop);
        let _ = self.rx.try_recv();
        match self.handle.take() {
            Some(h) => h.join().map_err(|p| RuntimeError::Interrupted {
                detail: format!(
                    "prefetch thread panicked: {}",
                    crate::error::panic_message(p.as_ref())
                ),
            }),
            // next_batch already reaped the dead thread.
            None => Err(self.failed.clone().unwrap_or(RuntimeError::Interrupted {
                detail: "prefetch thread already shut down".into(),
            })),
        }
    }

    /// Diagnoses a closed batch channel: joins the prefetch thread and
    /// converts its panic (the only way the channel closes while `self`
    /// holds the control sender) into a runtime error.
    fn reap_prefetch_thread(&mut self) -> RuntimeError {
        let detail = match self.handle.take() {
            Some(h) => match h.join() {
                Ok(_) => "prefetch thread exited unexpectedly".to_string(),
                Err(p) => format!(
                    "prefetch thread panicked: {}",
                    crate::error::panic_message(p.as_ref())
                ),
            },
            None => "prefetch thread already shut down".to_string(),
        };
        RuntimeError::Interrupted { detail }
    }
}

impl<S: BatchSource + Send + 'static> BatchSource for DoubleBufferedSource<S> {
    fn next_batch(&mut self) -> Result<Option<Batch>, RuntimeError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        loop {
            let (g, batch) = match self.rx.recv() {
                Ok(msg) => msg,
                Err(_) => {
                    let e = self.reap_prefetch_thread();
                    self.failed = Some(e.clone());
                    return Err(e);
                }
            };
            // One control acknowledgement per received buffer. A stale
            // generation gets the pending Reset; current ones Continue.
            if g == self.gen {
                let _ = self.control.send(Control::Continue);
                return batch;
            }
            if self.resets_pending > 0 {
                let _ = self.control.send(Control::Reset);
                self.resets_pending -= 1;
            } else {
                let _ = self.control.send(Control::Continue);
            }
            // Discard the stale buffer and wait for the fresh epoch.
        }
    }

    fn reset(&mut self) {
        self.gen += 1;
        self.resets_pending += 1;
    }
}

impl<S: BatchSource + Send + 'static> Drop for DoubleBufferedSource<S> {
    fn drop(&mut self) {
        let _ = self.control.send(Control::Stop);
        let _ = self.rx.try_recv();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Synthetic image batches of a given `(y, x, c)` shape — pixel content
/// does not affect throughput benchmarks, so uniform noise stands in for
/// ImageNet.
pub fn synthetic_images(
    shape: (usize, usize, usize),
    n_items: usize,
    classes: usize,
    seed: u64,
) -> Vec<(Vec<f32>, f32)> {
    let (h, w, c) = shape;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_items)
        .map(|_| {
            let img: Vec<f32> = (0..h * w * c).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let label = rng.gen_range(0..classes) as f32;
            (img, label)
        })
        .collect()
}

/// A deterministic MNIST-like dataset: 10 class-conditional 28x28 digit
/// prototypes (coarse stroke patterns) plus per-item Gaussian-ish noise.
/// Fig. 20 compares lossy vs. sequential gradient accumulation *on the
/// same data*, which any separable dataset exhibits.
pub fn synthetic_mnist(n_items: usize, seed: u64) -> Vec<(Vec<f32>, f32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = 28;
    // Build 10 prototypes: a bright rectangle band whose position and
    // orientation depend on the class.
    let mut prototypes = Vec::with_capacity(10);
    for class in 0..10usize {
        let mut img = vec![0.0f32; side * side];
        let horizontal = class % 2 == 0;
        let band = 3 + (class / 2) * 5; // 3, 3, 8, 8, 13, ...
        for y in 0..side {
            for x in 0..side {
                let on = if horizontal {
                    y >= band && y < band + 4
                } else {
                    x >= band && x < band + 4
                };
                // A class-specific diagonal accent makes all ten
                // prototypes pairwise distinct.
                let accent = (x + y * (1 + class % 3)) % 9 == class % 9;
                img[y * side + x] = if on { 1.0 } else { 0.0 } + if accent { 0.5 } else { 0.0 };
            }
        }
        prototypes.push(img);
    }
    (0..n_items)
        .map(|_| {
            let class = rng.gen_range(0..10usize);
            let img: Vec<f32> = prototypes[class]
                .iter()
                .map(|&p| p + rng.gen_range(-0.2..0.2))
                .collect();
            (img, class as f32)
        })
        .collect()
}

/// A tiny sequence task for the RNN examples: given `steps` input
/// vectors, the label is the index of the step whose sum is largest.
/// Returns per-item `(concatenated inputs, label)`.
pub fn synthetic_sequences(
    steps: usize,
    width: usize,
    n_items: usize,
    seed: u64,
) -> Vec<(Vec<f32>, f32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_items)
        .map(|_| {
            let hot = rng.gen_range(0..steps);
            let mut xs = Vec::with_capacity(steps * width);
            for t in 0..steps {
                for _ in 0..width {
                    let base: f32 = rng.gen_range(-0.3..0.3);
                    xs.push(if t == hot { base + 1.0 } else { base });
                }
            }
            (xs, hot as f32)
        })
        .collect()
}

/// A bounded batch queue used by the accelerator scheduler tests.
#[derive(Debug, Default)]
pub struct BatchQueue {
    inner: VecDeque<Batch>,
}

impl BatchQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BatchQueue::default()
    }

    /// Enqueues a batch.
    pub fn push(&mut self, b: Batch) {
        self.inner.push_back(b);
    }

    /// Dequeues the oldest batch.
    pub fn pop(&mut self) -> Option<Batch> {
        self.inner.pop_front()
    }

    /// Queue length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<(Vec<f32>, f32)> {
        (0..n).map(|i| (vec![i as f32; 2], (i % 3) as f32)).collect()
    }

    #[test]
    fn try_new_rejects_degenerate_configs() {
        let err = MemoryDataSource::try_new("data", "label", items(5), 0).unwrap_err();
        assert!(err.to_string().contains("non-zero"), "{err}");
        let err = MemoryDataSource::try_new("data", "label", items(2), 3).unwrap_err();
        assert!(err.to_string().contains("full batch"), "{err}");
    }

    #[test]
    fn memory_source_batches_and_resets() {
        let mut s = MemoryDataSource::try_new("data", "label", items(7), 3).unwrap();
        assert_eq!(s.batches_per_epoch(), 2);
        let b1 = s.next_batch().unwrap().unwrap();
        assert_eq!(b1[0].1.len(), 6);
        assert_eq!(b1[1].1, vec![0.0, 1.0, 2.0]);
        assert!(s.next_batch().unwrap().is_some());
        assert!(s.next_batch().unwrap().is_none(), "partial batch dropped");
        s.reset();
        assert!(s.next_batch().unwrap().is_some());
    }

    #[test]
    fn double_buffered_source_yields_same_batches() {
        let plain: Vec<Batch> = {
            let mut s = MemoryDataSource::try_new("data", "label", items(9), 3).unwrap();
            std::iter::from_fn(|| s.next_batch().unwrap()).collect()
        };
        let mut db = DoubleBufferedSource::new(
            MemoryDataSource::try_new("data", "label", items(9), 3).unwrap(),
        );
        let buffered: Vec<Batch> = std::iter::from_fn(|| db.next_batch().unwrap()).collect();
        assert_eq!(plain, buffered);
    }

    #[test]
    fn double_buffered_reset_restarts_epoch() {
        let mut db = DoubleBufferedSource::new(
            MemoryDataSource::try_new("data", "label", items(6), 3).unwrap(),
        );
        let first = db.next_batch().unwrap().unwrap();
        let _ = db.next_batch();
        db.reset();
        let again = db.next_batch().unwrap().unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn double_buffered_into_inner_returns_the_source() {
        let mut db = DoubleBufferedSource::new(
            MemoryDataSource::try_new("data", "label", items(6), 3).unwrap(),
        );
        let _ = db.next_batch().unwrap();
        let inner = db.into_inner().expect("healthy prefetcher");
        assert_eq!(inner.batches_per_epoch(), 2);
    }

    /// A source whose `call`-th `next_batch` panics — stands in for a
    /// decoder hitting corrupt data inside the prefetch thread.
    #[derive(Debug)]
    struct PanickySource {
        calls: usize,
        panic_at: usize,
    }

    impl BatchSource for PanickySource {
        fn next_batch(&mut self) -> Result<Option<Batch>, RuntimeError> {
            self.calls += 1;
            assert!(self.calls < self.panic_at, "synthetic prefetch panic");
            Ok(Some(vec![("data".into(), vec![self.calls as f32])]))
        }

        fn reset(&mut self) {}
    }

    #[test]
    fn prefetch_panic_surfaces_as_error_not_panic() {
        let mut db = DoubleBufferedSource::new(PanickySource { calls: 0, panic_at: 3 });
        // Two good batches arrive; the third call panics the thread.
        assert!(db.next_batch().unwrap().is_some());
        assert!(db.next_batch().unwrap().is_some());
        let err = db.next_batch().unwrap_err();
        assert!(
            matches!(&err, RuntimeError::Interrupted { detail }
                if detail.contains("prefetch thread panicked")),
            "unexpected error: {err}"
        );
        // The failure is sticky, and into_inner reports it too.
        assert_eq!(db.next_batch().unwrap_err(), err);
        let err = db.into_inner().unwrap_err();
        assert!(err.to_string().contains("prefetch"), "{err}");
    }

    #[test]
    fn into_inner_reports_panic_directly() {
        let mut db = DoubleBufferedSource::new(PanickySource { calls: 0, panic_at: 1 });
        // Give the prefetch thread time to panic before asking for the
        // inner source back (recv blocks until the send or the hangup).
        let _ = db.next_batch();
        let err = db.into_inner().unwrap_err();
        assert!(
            err.to_string().contains("panicked"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn inner_source_errors_propagate_through_the_prefetcher() {
        struct FailingSource;
        impl BatchSource for FailingSource {
            fn next_batch(&mut self) -> Result<Option<Batch>, RuntimeError> {
                Err(RuntimeError::Io { detail: "disk gone".into(), source: None })
            }
            fn reset(&mut self) {}
        }
        let mut db = DoubleBufferedSource::new(FailingSource);
        let err = db.next_batch().unwrap_err();
        assert!(matches!(err, RuntimeError::Io { .. }), "{err}");
        // The thread is still alive (an inner error is not a panic), so
        // the source can be recovered.
        assert!(db.into_inner().is_ok());
    }

    #[test]
    fn synthetic_mnist_is_deterministic_and_classful() {
        let a = synthetic_mnist(50, 1);
        let b = synthetic_mnist(50, 1);
        assert_eq!(a, b);
        let classes: std::collections::HashSet<u32> =
            a.iter().map(|(_, y)| *y as u32).collect();
        assert!(classes.len() >= 5, "classes seen: {classes:?}");
        assert!(a[0].0.len() == 28 * 28);
    }

    #[test]
    fn synthetic_sequences_label_matches_hot_step() {
        for (xs, y) in synthetic_sequences(4, 3, 20, 9) {
            let sums: Vec<f32> = (0..4).map(|t| xs[t * 3..(t + 1) * 3].iter().sum()).collect();
            let argmax = sums
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(argmax as f32, y);
        }
    }
}
