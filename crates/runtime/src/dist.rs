//! Distributed data-parallel training over a real [`Transport`]: the
//! paper's overlapped ring all-reduce, layer by layer.
//!
//! [`DistTrainer`] owns one replica's [`Executor`] plus a background
//! comm thread driving a [`RingComm`]. Each training step runs forward,
//! then [`Executor::backward_hooked`]: the moment a backward group's
//! gradient-lane fold completes, that group's parameter gradients (its
//! [`GradBucket`]) are handed to the comm thread, which ring-reduces
//! them **while the remaining backward groups still execute** — the
//! paper's comm/compute overlap. After backward, the trainer waits only
//! for whatever communication is still exposed, writes the merged
//! gradients back into the executor's gradient buffers, and lets the
//! caller's ordinary [`crate::solver::Solver`] apply the update — the
//! solver cannot tell distributed training from local training.
//!
//! Determinism: buckets are enqueued in backward-group order on every
//! rank, each bucket's ring fold order is fixed (see [`crate::ring`]),
//! and the merged values are independent of thread timing — so a
//! synchronized run is bit-identical to the serial
//! [`crate::cluster::train_replicated`] oracle, and a world-of-one run
//! is bit-identical to plain single-process training.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use crate::checkpoint::crc32;
use crate::cluster::SyncMode;
use crate::error::RuntimeError;
use crate::exec::{Executor, GradBucket};
use crate::metrics::FaultMetrics;
use crate::ring::{BucketReport, CommPolicy, RingComm};
use crate::transport::Transport;

/// Fingerprints the compiled program a rank is about to train, for the
/// transport handshake: two processes whose batch size, parameters
/// (names and sizes), or backward bucketing differ must not average
/// gradients, whatever their binaries think. CRC32 over a canonical
/// description, via the same [`crate::checkpoint::crc32`] as everything
/// else.
pub fn net_fingerprint(exec: &Executor) -> u32 {
    let mut desc = format!("batch={};", exec.batch());
    for p in exec.params() {
        let len = exec.read_buffer(&p.value).map(|v| v.len()).unwrap_or(0);
        desc.push_str(&format!("param={}:{len};", p.value));
    }
    for b in exec.grad_buckets() {
        desc.push_str(&format!("bucket={}:{};", b.group, b.name));
    }
    crc32(desc.as_bytes())
}

struct CommJob {
    step: u32,
    idx: usize,
    data: Vec<f32>,
}

struct CommResult {
    idx: usize,
    data: Vec<f32>,
    report: Result<BucketReport, RuntimeError>,
}

/// One step's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// This replica's loss on its own shard.
    pub loss: f32,
    /// Mode the step's all-reduces ran in.
    pub mode: SyncMode,
    /// Live ranks at the end of the step.
    pub live: usize,
    /// Total communication time across the step's buckets, ms.
    pub comm_ms: f64,
    /// Communication time *not* hidden behind backward (the wait after
    /// backward finished), ms.
    pub exposed_ms: f64,
    /// Backward wall-clock (during which comm overlapped), ms.
    pub backward_ms: f64,
    /// Peers this rank evicted during the step.
    pub evicted: Vec<usize>,
}

/// Accumulated timing over a trainer's lifetime, for the overlap
///-efficiency figure in `BENCH_cluster.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DistStats {
    /// Steps taken.
    pub steps: u64,
    /// Steps whose all-reduce ran lossy.
    pub lossy_steps: u64,
    /// Total communication ms (sum over buckets).
    pub comm_ms: f64,
    /// Total exposed (non-overlapped) communication ms.
    pub exposed_ms: f64,
    /// Total backward ms.
    pub backward_ms: f64,
}

impl DistStats {
    /// Fraction of communication hidden behind backward: `1 −
    /// exposed/comm` (1 when there was nothing to communicate).
    pub fn overlap_efficiency(&self) -> f64 {
        if self.comm_ms > 0.0 {
            (1.0 - self.exposed_ms / self.comm_ms).max(0.0)
        } else {
            1.0
        }
    }
}

/// A distributed data-parallel trainer: one replica of the network, a
/// background comm thread, and layer-by-layer gradient streaming.
pub struct DistTrainer {
    exec: Executor,
    buckets: Vec<GradBucket>,
    /// Per bucket: the gradient buffer names, in param order.
    grad_names: Vec<Vec<String>>,
    jobs: Option<mpsc::Sender<CommJob>>,
    results: mpsc::Receiver<CommResult>,
    comm: Option<std::thread::JoinHandle<()>>,
    metrics: Arc<FaultMetrics>,
    rank: usize,
    world: usize,
    live: usize,
    mode: SyncMode,
    step: u32,
    stats: DistStats,
}

impl DistTrainer {
    /// Wires a replica executor to a transport. The comm thread starts
    /// immediately; training starts at step 0.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] for a bad policy.
    pub fn new(
        exec: Executor,
        transport: Box<dyn Transport>,
        policy: CommPolicy,
    ) -> Result<DistTrainer, RuntimeError> {
        let rank = transport.rank();
        let world = transport.world();
        let metrics = Arc::clone(transport.metrics());
        let buckets = exec.grad_buckets();
        let grad_names: Vec<Vec<String>> = buckets
            .iter()
            .map(|b| {
                b.params
                    .iter()
                    .map(|&pi| exec.params()[pi].grad.clone())
                    .collect()
            })
            .collect();
        let mut ring = RingComm::new(transport, policy)?;
        let (jtx, jrx) = mpsc::channel::<CommJob>();
        let (rtx, rrx) = mpsc::channel::<CommResult>();
        let comm = std::thread::Builder::new()
            .name(format!("latte-comm-{rank}"))
            .spawn(move || {
                // Jobs arrive in backward-group order and are reduced
                // FIFO; the loop ends when the trainer drops its sender.
                while let Ok(mut job) = jrx.recv() {
                    let report = ring.allreduce(job.step, job.idx as u16, &mut job.data);
                    let done = rtx
                        .send(CommResult {
                            idx: job.idx,
                            data: job.data,
                            report,
                        })
                        .is_err();
                    if done {
                        break;
                    }
                }
            })
            .map_err(|e| RuntimeError::Transport {
                detail: format!("spawning comm thread: {e}"),
            })?;
        Ok(DistTrainer {
            exec,
            buckets,
            grad_names,
            jobs: Some(jtx),
            results: rrx,
            comm: Some(comm),
            metrics,
            rank,
            world,
            live: world,
            mode: SyncMode::Synchronized,
            step: 0,
            stats: DistStats::default(),
        })
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Configured world size.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Live ranks as of the last step.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Mode as of the last step.
    pub fn mode(&self) -> SyncMode {
        self.mode
    }

    /// The replica's executor (read losses, params, buffers).
    pub fn exec(&self) -> &Executor {
        &self.exec
    }

    /// Mutable executor access (e.g. for evaluation between steps).
    pub fn exec_mut(&mut self) -> &mut Executor {
        &mut self.exec
    }

    /// The transport's fault counters.
    pub fn metrics(&self) -> &Arc<FaultMetrics> {
        &self.metrics
    }

    /// Lifetime timing totals.
    pub fn stats(&self) -> DistStats {
        self.stats
    }

    /// The communicator buckets (one per gradient-producing backward
    /// group).
    pub fn buckets(&self) -> &[GradBucket] {
        &self.buckets
    }

    /// Runs one training step on this replica's `batch` shard: forward,
    /// hooked backward with per-bucket gradient streaming, wait for the
    /// exposed remainder of communication, write merged gradients back,
    /// then `apply` (typically `|e| solver.step(e)`).
    ///
    /// # Errors
    ///
    /// Input errors from the executor and terminal
    /// [`RuntimeError::Transport`] failures.
    pub fn step(
        &mut self,
        batch: &[(String, Vec<f32>)],
        apply: &mut dyn FnMut(&mut Executor),
    ) -> Result<StepReport, RuntimeError> {
        for (ensemble, data) in batch {
            self.exec.set_input(ensemble, data)?;
        }
        self.exec.forward();
        let loss = self.exec.loss();

        let step = self.step;
        let t_bwd = Instant::now();
        {
            let buckets = &self.buckets;
            let grad_names = &self.grad_names;
            let jobs = &self.jobs;
            let mut hook = |gi: usize, exec: &Executor| {
                for (bi, b) in buckets.iter().enumerate() {
                    if b.group != gi {
                        continue;
                    }
                    let mut data = Vec::new();
                    for name in &grad_names[bi] {
                        data.extend(exec.read_buffer(name).expect("param grad readable"));
                    }
                    if let Some(tx) = jobs.as_ref() {
                        let _ = tx.send(CommJob {
                            step,
                            idx: bi,
                            data,
                        });
                    }
                }
            };
            self.exec.backward_hooked(&mut hook);
        }
        let backward_ms = t_bwd.elapsed().as_secs_f64() * 1e3;

        // Reap every bucket; only the part of comm that outlives
        // backward is exposed.
        let t_wait = Instant::now();
        let mut merged: Vec<Option<Vec<f32>>> = vec![None; self.buckets.len()];
        let mut comm_ms = 0.0;
        let mut evicted = Vec::new();
        let mut live = self.live;
        let mut mode = self.mode;
        for _ in 0..self.buckets.len() {
            let res = self.results.recv().map_err(|_| RuntimeError::Transport {
                detail: "comm thread died mid-step".into(),
            })?;
            let report = res.report?;
            comm_ms += report.elapsed_ms;
            live = report.live;
            if report.mode == SyncMode::LossyDegraded {
                mode = SyncMode::LossyDegraded;
            }
            evicted.extend(report.evicted.iter().copied());
            merged[res.idx] = Some(res.data);
        }
        let exposed_ms = t_wait.elapsed().as_secs_f64() * 1e3;

        for (bi, data) in merged.into_iter().enumerate() {
            let data = data.expect("every bucket reduced");
            let mut at = 0;
            for name in &self.grad_names[bi] {
                let len = self.exec.read_buffer(name)?.len();
                self.exec.write_buffer(name, &data[at..at + len])?;
                at += len;
            }
        }
        apply(&mut self.exec);

        self.step += 1;
        self.live = live;
        self.mode = mode;
        self.stats.steps += 1;
        self.stats.comm_ms += comm_ms;
        self.stats.exposed_ms += exposed_ms;
        self.stats.backward_ms += backward_ms;
        if mode == SyncMode::LossyDegraded {
            self.stats.lossy_steps += 1;
            FaultMetrics::bump(&self.metrics.lossy_steps);
            FaultMetrics::bump(&self.metrics.degraded_iterations);
        }
        Ok(StepReport {
            loss,
            mode,
            live,
            comm_ms,
            exposed_ms,
            backward_ms,
            evicted,
        })
    }
}

impl Drop for DistTrainer {
    fn drop(&mut self) {
        // Closing the job channel ends the comm loop; joining it drops
        // the RingComm, whose endpoint says goodbye to the ring.
        self.jobs.take();
        if let Some(h) = self.comm.take() {
            let _ = h.join();
        }
    }
}
