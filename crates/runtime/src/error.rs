//! Runtime error type.

use std::fmt;

/// An error raised while lowering or executing a compiled network.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A statement references a buffer missing from the buffer table.
    UnknownBuffer {
        /// The missing buffer's name.
        name: String,
    },
    /// An alias chain points at a missing or later-declared buffer.
    BadAlias {
        /// The aliasing buffer.
        name: String,
        /// The missing target.
        target: String,
    },
    /// An extern statement names an unregistered kernel.
    UnknownExtern {
        /// The kernel name.
        op: String,
    },
    /// Input data does not match the destination buffer.
    InputShape {
        /// The input buffer.
        buffer: String,
        /// Explanation.
        detail: String,
    },
    /// A statement is malformed for execution (e.g. index uses an unbound
    /// variable).
    Malformed {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownBuffer { name } => {
                write!(f, "statement references unknown buffer `{name}`")
            }
            RuntimeError::BadAlias { name, target } => {
                write!(f, "buffer `{name}` aliases unknown buffer `{target}`")
            }
            RuntimeError::UnknownExtern { op } => {
                write!(f, "no extern kernel registered for `{op}`")
            }
            RuntimeError::InputShape { buffer, detail } => {
                write!(f, "bad input for buffer `{buffer}`: {detail}")
            }
            RuntimeError::Malformed { detail } => write!(f, "malformed program: {detail}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RuntimeError::UnknownExtern {
            op: "softmax_forward".into(),
        };
        assert!(e.to_string().contains("softmax_forward"));
    }
}
