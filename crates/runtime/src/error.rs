//! Runtime error type.

use std::fmt;
use std::sync::Arc;

/// An error raised while lowering or executing a compiled network.
#[derive(Debug, Clone)]
pub enum RuntimeError {
    /// A statement references a buffer missing from the buffer table.
    UnknownBuffer {
        /// The missing buffer's name.
        name: String,
    },
    /// An alias chain points at a missing or later-declared buffer.
    BadAlias {
        /// The aliasing buffer.
        name: String,
        /// The missing target.
        target: String,
    },
    /// An extern statement names an unregistered kernel.
    UnknownExtern {
        /// The kernel name.
        op: String,
    },
    /// Input data does not match the destination buffer.
    InputShape {
        /// The input buffer.
        buffer: String,
        /// Explanation.
        detail: String,
    },
    /// A statement is malformed for execution (e.g. index uses an unbound
    /// variable).
    Malformed {
        /// Explanation.
        detail: String,
    },
    /// A runtime component was configured inconsistently (zero batch,
    /// empty dataset, bad fault-tolerance policy, …).
    InvalidConfig {
        /// Explanation.
        detail: String,
    },
    /// An I/O operation failed (checkpoint read/write, dataset access).
    ///
    /// Carries the originating [`std::io::Error`] when one exists, so
    /// callers can walk [`std::error::Error::source`] chains.
    Io {
        /// What the runtime was doing when the failure occurred.
        detail: String,
        /// The underlying OS-level error, if any.
        source: Option<Arc<std::io::Error>>,
    },
    /// Execution was interrupted by a (possibly injected) fault; the
    /// supervisor treats this as a recoverable crash.
    Interrupted {
        /// What fault fired.
        detail: String,
    },
    /// A numerical-health guard tripped: a NaN/Inf sentinel, a
    /// non-finite loss, or a diverging trajectory. Deliberately *not*
    /// recoverable by a plain restart (the same data and weights would
    /// reproduce it); the supervisor recovers only through its rollback
    /// budget, quarantining or re-tuning along the way.
    Numerical {
        /// Which guard tripped, where, and on what.
        detail: String,
    },
    /// A data-parallel worker thread failed; carries the worker index
    /// and the underlying error (a panic is reported as
    /// [`RuntimeError::Interrupted`]).
    Worker {
        /// Index of the failed worker.
        worker: usize,
        /// What went wrong inside the worker.
        source: Box<RuntimeError>,
    },
    /// A distributed-transport operation failed terminally: handshake
    /// rejected, every peer evicted, the comm thread lost, or a wire
    /// error that retries and ring healing could not absorb.
    Transport {
        /// What failed and why.
        detail: String,
    },
    /// The buffer exists in the program but its contents are not
    /// materialized under the liveness arena: either its storage slot was
    /// reclaimed by a later-live buffer (expired) or it is never touched
    /// by any statement and was given no storage (dead). Raised instead
    /// of ever returning another buffer's stale bytes.
    BufferRetired {
        /// The buffer name.
        name: String,
        /// Why the contents are unavailable.
        detail: String,
    },
    /// Compiling a traced network on a [`TraceCache`](crate::TraceCache)
    /// miss failed — the recorded net does not pass the compiler (cycle,
    /// verification failure, …).
    Compile {
        /// The compiler's error, rendered.
        detail: String,
    },
}

impl RuntimeError {
    /// Wraps an I/O error with context about the failed operation.
    pub fn io(detail: impl Into<String>, source: std::io::Error) -> Self {
        RuntimeError::Io {
            detail: detail.into(),
            source: Some(Arc::new(source)),
        }
    }

    /// A numerical-guard trip with context.
    pub fn numerical(detail: impl Into<String>) -> Self {
        RuntimeError::Numerical {
            detail: detail.into(),
        }
    }
}

/// Renders a thread panic payload for error messages (panics carry
/// `&str` or `String` in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

impl PartialEq for RuntimeError {
    fn eq(&self, other: &Self) -> bool {
        use RuntimeError::*;
        match (self, other) {
            (UnknownBuffer { name: a }, UnknownBuffer { name: b }) => a == b,
            (
                BadAlias { name: a, target: ta },
                BadAlias { name: b, target: tb },
            ) => a == b && ta == tb,
            (UnknownExtern { op: a }, UnknownExtern { op: b }) => a == b,
            (
                InputShape { buffer: a, detail: da },
                InputShape { buffer: b, detail: db },
            ) => a == b && da == db,
            (Malformed { detail: a }, Malformed { detail: b }) => a == b,
            (InvalidConfig { detail: a }, InvalidConfig { detail: b }) => a == b,
            // I/O errors compare by context and OS error kind; the
            // underlying error object itself is not comparable.
            (
                Io { detail: a, source: sa },
                Io { detail: b, source: sb },
            ) => a == b && sa.as_ref().map(|e| e.kind()) == sb.as_ref().map(|e| e.kind()),
            (Interrupted { detail: a }, Interrupted { detail: b }) => a == b,
            (Numerical { detail: a }, Numerical { detail: b }) => a == b,
            (
                Worker { worker: a, source: sa },
                Worker { worker: b, source: sb },
            ) => a == b && sa == sb,
            (Transport { detail: a }, Transport { detail: b }) => a == b,
            (
                BufferRetired { name: a, detail: da },
                BufferRetired { name: b, detail: db },
            ) => a == b && da == db,
            (Compile { detail: a }, Compile { detail: b }) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownBuffer { name } => {
                write!(f, "statement references unknown buffer `{name}`")
            }
            RuntimeError::BadAlias { name, target } => {
                write!(f, "buffer `{name}` aliases unknown buffer `{target}`")
            }
            RuntimeError::UnknownExtern { op } => {
                write!(f, "no extern kernel registered for `{op}`")
            }
            RuntimeError::InputShape { buffer, detail } => {
                write!(f, "bad input for buffer `{buffer}`: {detail}")
            }
            RuntimeError::Malformed { detail } => write!(f, "malformed program: {detail}"),
            RuntimeError::InvalidConfig { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
            RuntimeError::Io { detail, source } => match source {
                Some(e) => write!(f, "i/o failure: {detail}: {e}"),
                None => write!(f, "i/o failure: {detail}"),
            },
            RuntimeError::Interrupted { detail } => {
                write!(f, "execution interrupted: {detail}")
            }
            RuntimeError::Numerical { detail } => {
                write!(f, "numerical fault: {detail}")
            }
            RuntimeError::Worker { worker, source } => {
                write!(f, "worker {worker} failed: {source}")
            }
            RuntimeError::Transport { detail } => {
                write!(f, "transport failure: {detail}")
            }
            RuntimeError::BufferRetired { name, detail } => {
                write!(f, "buffer `{name}` is not materialized: {detail}")
            }
            RuntimeError::Compile { detail } => {
                write!(f, "trace compilation failed: {detail}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Io {
                source: Some(e), ..
            } => Some(e.as_ref()),
            RuntimeError::Worker { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_is_informative() {
        let e = RuntimeError::UnknownExtern {
            op: "softmax_forward".into(),
        };
        assert!(e.to_string().contains("softmax_forward"));
    }

    #[test]
    fn io_errors_chain_their_source() {
        let os = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short read");
        let e = RuntimeError::io("loading checkpoint `w.bin`", os);
        assert!(e.to_string().contains("loading checkpoint"));
        let src = e.source().expect("source present");
        assert!(src.to_string().contains("short read"));
        let plain = RuntimeError::Malformed { detail: "x".into() };
        assert!(plain.source().is_none());
    }

    #[test]
    fn worker_errors_chain_their_source() {
        let e = RuntimeError::Worker {
            worker: 2,
            source: Box::new(RuntimeError::Interrupted {
                detail: "worker thread panicked: boom".into(),
            }),
        };
        assert!(e.to_string().contains("worker 2"));
        let src = e.source().expect("source present");
        assert!(src.to_string().contains("boom"));
    }

    #[test]
    fn io_errors_compare_by_context_and_kind() {
        let a = RuntimeError::io(
            "x",
            std::io::Error::new(std::io::ErrorKind::NotFound, "a"),
        );
        let b = RuntimeError::io(
            "x",
            std::io::Error::new(std::io::ErrorKind::NotFound, "b"),
        );
        let c = RuntimeError::io(
            "x",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "a"),
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
