//! Lowering: compiles the optimizer's loop-nest groups into executable
//! kernels.
//!
//! This is the runtime's stand-in for the paper's code-generation stage
//! (ParallelAccelerator.jl emitting C++ compiled by ICC). Every statement
//! is translated once, ahead of execution, into a [`Kernel`] tree whose
//! buffer references are pre-resolved affine functions of loop slots:
//!
//! * innermost loops are specialized — unit-stride multiply-accumulate
//!   reductions become native dot products, and unit-stride element maps
//!   run over raw slices (the stand-in for `#pragma simd` vectorization,
//!   gated by the compiler's `vectorize` flag);
//! * matched GEMM statements call the blocked kernel in `latte-tensor`;
//!   top-level fully-connected GEMMs whose operands are batched buffers
//!   are *hoisted* to one whole-batch GEMM per pass;
//! * data-copy nests run as native strided loops with a contiguous-run
//!   fast path and zero-padding at the source boundary.
//!
//! Lowering statically verifies that every compiled reference stays inside
//! its buffer for all loop-variable values — a bounds proof that lets the
//! execution hot path use unchecked accesses.

use std::collections::HashMap;

use latte_core::{CompiledNet, Group};
use latte_ir::{
    AssignOp, BinOp, BufRef, CopyStmt, Expr, ExternOp, GemmStmt, IndexExpr, Stmt,
    UnaryOp,
};

use crate::error::RuntimeError;
use crate::registry::{ExternFn, KernelRegistry};
use crate::store::BufferStore;

/// A compiled affine index: `base + Σ terms[i].1 * env[terms[i].0]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CIdx {
    pub base: i64,
    pub terms: Vec<(usize, i64)>,
}

impl CIdx {
    pub fn constant(base: i64) -> Self {
        CIdx {
            base,
            terms: Vec::new(),
        }
    }

    pub fn eval(&self, env: &[i64]) -> i64 {
        let mut v = self.base;
        for &(slot, coef) in &self.terms {
            v += coef * env[slot];
        }
        v
    }

    /// The coefficient of a slot (0 when absent).
    pub fn coef(&self, slot: usize) -> i64 {
        self.terms
            .iter()
            .find(|(s, _)| *s == slot)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Minimum and maximum value over slot ranges `[0, extent)`.
    fn range(&self, extents: &[usize]) -> (i64, i64) {
        let mut lo = self.base;
        let mut hi = self.base;
        for &(slot, coef) in &self.terms {
            let max_v = extents.get(slot).map(|&e| e as i64 - 1).unwrap_or(0);
            if coef >= 0 {
                hi += coef * max_v;
            } else {
                lo += coef * max_v;
            }
        }
        (lo, hi)
    }
}

/// A buffer reference resolved to a buffer-table index plus an affine
/// element offset.
#[derive(Debug, Clone)]
pub(crate) struct CRef {
    pub buf: usize,
    pub idx: CIdx,
}

/// A compiled scalar expression; loads index into the owning
/// [`CAssign::loads`] table.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    Const(f32),
    Load(usize),
    Un(UnaryOp, Box<CExpr>),
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
}

/// A compiled scalar store.
#[derive(Debug, Clone)]
pub(crate) struct CAssign {
    pub dest: CRef,
    pub op: AssignOp,
    pub expr: CExpr,
    pub loads: Vec<CRef>,
}

/// Specialization of an innermost loop, chosen at lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FastKind {
    /// Per-element interpretation (hoisted strides).
    Generic,
    /// `dest += Σ a[i] * b[i]` with unit strides: native dot product.
    Dot,
    /// `dest[i] (op)= f(src[i])` with unit strides and a pure unary map.
    UnitMap,
    /// `dest max= src[i]` with unit stride: native max reduction
    /// (max-pooling windows).
    MaxReduce,
}

/// An innermost loop containing a single store.
#[derive(Debug, Clone)]
pub(crate) struct InnerLoop {
    pub slot: usize,
    pub extent: usize,
    pub assign: CAssign,
    pub fast: FastKind,
}

/// A compiled GEMM.
#[derive(Debug, Clone)]
pub(crate) struct CGemm {
    pub ta: bool,
    pub tb: bool,
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub a: CRef,
    pub b: CRef,
    pub c: CRef,
}

/// A whole-batch GEMM hoisted out of the per-item loop. Operand fields
/// are *storage* indices (not group buffer indices): the whole storage is
/// the batched operand.
#[derive(Debug, Clone)]
pub(crate) struct BatchedGemm {
    /// `true` transposes the (batch-major) left operand.
    pub ta: bool,
    pub tb: bool,
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub a: usize,
    pub a_base: usize,
    pub b: usize,
    pub b_base: usize,
    pub c: usize,
    pub c_base: usize,
}

/// A compiled data-copy nest.
#[derive(Debug, Clone)]
pub(crate) struct CCopy {
    pub dest: usize,
    /// Row-major strides of the staging buffer.
    pub dest_strides: Vec<usize>,
    /// Iterated extents per destination dimension.
    pub extents: Vec<usize>,
    /// Global starting index per destination dimension.
    pub offsets: Vec<CIdx>,
    pub src: usize,
    pub src_dims: Vec<usize>,
    pub src_strides: Vec<usize>,
    /// `coefs[s][d]`: source dim `s`'s dependence on global dest index `d`.
    pub coefs: Vec<Vec<i64>>,
    /// Constant part of each source index.
    pub src_base: Vec<i64>,
    pub scatter: bool,
    /// Statically proven: no source index can ever fall outside the
    /// buffer, so execution may skip every padding check and walk flat
    /// offsets incrementally.
    pub never_oob: bool,
    /// Flat source-offset increment per unit of each global dest index:
    /// `flat_stride[d] = Σ_s coefs[s][d] * src_strides[s]`.
    pub flat_stride: Vec<i64>,
    /// Constant flat source offset: `Σ_s src_base[s] * src_strides[s]`.
    pub src_flat_base: i64,
    /// Precompiled transfer programs, indexed by the values of the offset
    /// slots (mixed-radix). All clipping decisions are resolved ahead of
    /// time, leaving pure run copies at execution.
    pub programs: Option<ProgramTable>,
}

/// A table of precompiled transfer programs, one per combination of the
/// enclosing loop variables the copy's offsets depend on.
#[derive(Debug, Clone)]
pub(crate) struct ProgramTable {
    /// Slots feeding the offsets, major first.
    pub slots: Vec<usize>,
    /// Extent of each slot.
    pub extents: Vec<usize>,
    /// Programs in mixed-radix order over `extents`.
    pub programs: Vec<std::sync::Arc<CopyProgram>>,
}

/// One precompiled transfer program: the complete run list of a copy.
#[derive(Debug, Clone, Default)]
pub(crate) struct CopyProgram {
    /// Inner source stride (elements) within a run.
    pub s_step: i64,
    /// Inner destination stride within a run.
    pub d_step: i64,
    /// The runs.
    pub runs: Vec<CopyRun>,
}

/// One run: `pre` padding zeros, `len` transferred elements, `post`
/// padding zeros (padding applies to gathers only).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CopyRun {
    /// First destination element of the run (including padding).
    pub d_off: i64,
    /// First *transferred* source element.
    pub s_off: i64,
    /// Leading padding elements.
    pub pre: u32,
    /// Transferred elements.
    pub len: u32,
    /// Trailing padding elements.
    pub post: u32,
}

/// Enumerates a copy's runs for fixed offset values — the shared
/// generator behind both the precompiled programs and (indirectly) the
/// runtime fallback semantics.
#[allow(clippy::needless_range_loop)] // walks several parallel index arrays
pub(crate) fn copy_runs(c: &CCopy, offsets: &[i64]) -> CopyProgram {
    let ndd = c.extents.len();
    let nsd = c.src_dims.len();
    let last = ndd - 1;
    let inner = c.extents[last] as i64;
    let mut prog = CopyProgram {
        s_step: c.flat_stride[last],
        d_step: c.dest_strides[last] as i64,
        runs: Vec::new(),
    };
    let mut sidx = vec![0i64; nsd];
    for (s, si) in sidx.iter_mut().enumerate() {
        *si = c.src_base[s]
            + offsets
                .iter()
                .enumerate()
                .map(|(d, &o)| c.coefs[s][d] * o)
                .sum::<i64>();
    }
    let mut d_off: i64 = offsets
        .iter()
        .zip(&c.dest_strides)
        .map(|(&o, &st)| o * st as i64)
        .sum();
    let mut s_base: i64 = (0..nsd).map(|s| sidx[s] * c.src_strides[s] as i64).sum();
    let outer: usize = c.extents[..last].iter().product();
    let mut ctr = vec![0usize; last];
    let div_ceil = |a: i64, b: i64| if a >= 0 { (a + b - 1) / b } else { a / b };
    for _ in 0..outer.max(1) {
        let mut lo = 0i64;
        let mut hi = inner;
        for s in 0..nsd {
            let coef = c.coefs[s][last];
            let v = sidx[s];
            let dim = c.src_dims[s] as i64;
            if coef == 0 {
                if v < 0 || v >= dim {
                    hi = 0;
                    break;
                }
            } else if coef > 0 {
                lo = lo.max(div_ceil(-v, coef));
                hi = hi.min(div_ceil(dim - v, coef));
            } else {
                let nc = -coef;
                hi = hi.min(v / nc + 1);
                lo = lo.max(div_ceil(v - dim + 1, nc));
            }
        }
        let lo = lo.clamp(0, inner);
        let hi = hi.clamp(lo, inner);
        let run = CopyRun {
            d_off,
            s_off: s_base + lo * prog.s_step,
            pre: lo as u32,
            len: (hi - lo) as u32,
            post: (inner - hi) as u32,
        };
        // Merge with the previous run when both are unpadded and
        // contiguous in source and destination.
        let merged = match prog.runs.last_mut() {
            Some(prev)
                if prog.s_step == 1
                    && prog.d_step == 1
                    && prev.pre == 0
                    && prev.post == 0
                    && run.pre == 0
                    && run.post == 0
                    && prev.d_off + prev.len as i64 == run.d_off
                    && prev.s_off + prev.len as i64 == run.s_off =>
            {
                prev.len += run.len;
                true
            }
            _ => false,
        };
        if !merged {
            prog.runs.push(run);
        }
        let mut d = last;
        while d > 0 {
            d -= 1;
            ctr[d] += 1;
            d_off += c.dest_strides[d] as i64;
            s_base += c.flat_stride[d];
            for s in 0..nsd {
                sidx[s] += c.coefs[s][d];
            }
            if ctr[d] < c.extents[d] {
                break;
            }
            ctr[d] = 0;
            d_off -= (c.dest_strides[d] * c.extents[d]) as i64;
            s_base -= c.flat_stride[d] * c.extents[d] as i64;
            for s in 0..nsd {
                sidx[s] -= c.coefs[s][d] * c.extents[d] as i64;
            }
        }
    }
    prog
}

/// A compiled gather/scatter.
#[derive(Debug, Clone)]
pub(crate) struct CGather {
    pub dest: usize,
    pub src: usize,
    pub table: std::sync::Arc<Vec<i64>>,
    pub scatter: bool,
}

/// A compiled extern-kernel call.
#[derive(Clone)]
pub(crate) struct CExtern {
    pub op: String,
    pub f: ExternFn,
    pub attrs: std::collections::BTreeMap<String, f64>,
    pub bufs: Vec<usize>,
}

impl std::fmt::Debug for CExtern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CExtern")
            .field("op", &self.op)
            .field("bufs", &self.bufs)
            .finish_non_exhaustive()
    }
}

/// An executable kernel.
#[derive(Debug, Clone)]
pub(crate) enum Kernel {
    Loop {
        slot: usize,
        extent: usize,
        body: Vec<Kernel>,
    },
    Inner(InnerLoop),
    Assign(CAssign),
    Gemm(CGemm),
    Copy(CCopy),
    Gather(CGather),
    Extern(CExtern),
}

/// One buffer used by a group.
#[derive(Debug, Clone)]
pub(crate) struct BufBinding {
    pub storage: usize,
    pub per_item: usize,
    pub batched: bool,
    pub param_grad: bool,
}

/// A schedulable compiled group.
#[derive(Debug, Clone)]
pub(crate) enum Segment {
    PerItem(Vec<Kernel>),
    Batched(BatchedGemm),
    ExternWhole(CExtern),
}

/// A compiled group: its buffer table plus segments.
#[derive(Debug, Clone)]
pub(crate) struct CGroup {
    pub name: String,
    pub parallel: bool,
    /// Tuned-serial decision: keep the parallel lane structure (bits are
    /// decision-invariant) but drive every lane from the calling thread.
    pub serial_hint: bool,
    pub bufs: Vec<BufBinding>,
    /// Buffer name behind each `bufs` entry, kept so a step-shared clone
    /// can rebind the table under the `@t{j}` → `@t{j+delta}` rename.
    pub buf_names: Vec<String>,
    pub segments: Vec<Segment>,
    /// Operand names of each `Segment::Batched`, in segment order, laid
    /// out as the batched kernel's `[a, b, c]` (the hoist may swap the
    /// statement's operands). Batched GEMMs address raw storage rather
    /// than the buffer table, so rebinding needs the names directly.
    pub gemm_names: Vec<[String; 3]>,
}

/// The fully lowered program.
#[derive(Debug, Clone)]
pub(crate) struct Plan {
    pub forward: Vec<CGroup>,
    pub backward: Vec<CGroup>,
    pub n_slots: usize,
    /// Groups whose compiled body was reused from an earlier unrolled
    /// step (see [`latte_core::StepShare`]) instead of being re-lowered.
    pub step_groups_reused: usize,
}

/// Lowers a compiled network against an allocated store.
///
/// Groups the step-share pass marked α-equivalent to an earlier unrolled
/// time step reuse that step's compiled body: the buffer table is rebound
/// through the `@t{j}` → `@t{j+delta}` rename and verified against the
/// store, so the kernels themselves — including their bounds proofs,
/// which depend only on per-item extents — carry over unchanged. Any
/// mismatch (different layout, missing buffer) falls back to a fresh
/// lowering of the group.
pub(crate) fn lower(
    net: &CompiledNet,
    store: &BufferStore,
    registry: &KernelRegistry,
    vectorize: bool,
) -> Result<Plan, RuntimeError> {
    let mut max_slots = 1;
    let mut reused = 0usize;
    let lower_phase = |groups: &[Group],
                           max_slots: &mut usize,
                           reused: &mut usize|
     -> Result<Vec<CGroup>, RuntimeError> {
        let mut out: Vec<CGroup> = Vec::with_capacity(groups.len());
        let mut done: HashMap<String, usize> = HashMap::new();
        for g in groups {
            let shared = g.meta.share_body_with.as_ref().and_then(|ss| {
                let rep = done.get(&ss.group).map(|&i| &out[i])?;
                reuse_group(rep, g, ss.delta, store)
            });
            let cg = match shared {
                Some(cg) => {
                    *reused += 1;
                    cg
                }
                None => lower_group(g, store, registry, vectorize, max_slots)?,
            };
            done.insert(g.name.clone(), out.len());
            out.push(cg);
        }
        Ok(out)
    };
    let forward = lower_phase(&net.forward, &mut max_slots, &mut reused)?;
    let backward = lower_phase(&net.backward, &mut max_slots, &mut reused)?;
    Ok(Plan {
        forward,
        backward,
        n_slots: max_slots,
        step_groups_reused: reused,
    })
}

/// Rewrites every `@t<digits>` step index in a buffer name by `delta`.
/// Returns `None` when any index would go negative; substrings like
/// `@tile` (no digits after `@t`) pass through untouched.
fn shift_name(name: &str, delta: i64) -> Option<String> {
    let bytes = name.as_bytes();
    let mut out = String::with_capacity(name.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'@' && i + 1 < bytes.len() && bytes[i + 1] == b't' {
            let start = i + 2;
            let mut end = start;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            if end > start {
                let step: i64 = name[start..end].parse().ok()?;
                let shifted = step + delta;
                if shifted < 0 {
                    return None;
                }
                out.push_str("@t");
                out.push_str(&shifted.to_string());
                i = end;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    Some(out)
}

/// Clones a representative step's compiled body for an α-equivalent later
/// step: every buffer in the table is renamed by `delta`, re-resolved
/// against the store, and verified to have the same per-item layout as
/// the representative's binding. Returns `None` (caller falls back to a
/// fresh lowering) when any buffer is missing or laid out differently.
fn reuse_group(rep: &CGroup, group: &Group, delta: i64, store: &BufferStore) -> Option<CGroup> {
    let mut bufs = Vec::with_capacity(rep.bufs.len());
    let mut buf_names = Vec::with_capacity(rep.buf_names.len());
    for (binding, name) in rep.bufs.iter().zip(&rep.buf_names) {
        let new_name = shift_name(name, delta)?;
        let old = store.info(name)?;
        let new = store.info(&new_name)?;
        if new.per_item != old.per_item
            || new.batched != old.batched
            || new.kind != old.kind
            || new.shape.dims() != old.shape.dims()
        {
            return None;
        }
        bufs.push(BufBinding {
            storage: new.storage,
            per_item: binding.per_item,
            batched: binding.batched,
            param_grad: binding.param_grad,
        });
        buf_names.push(new_name);
    }
    let mut gemm_names = Vec::with_capacity(rep.gemm_names.len());
    let mut segments = rep.segments.clone();
    let mut next_gemm = 0usize;
    for seg in &mut segments {
        if let Segment::Batched(b) = seg {
            let names = rep.gemm_names.get(next_gemm)?;
            let mut renamed = Vec::with_capacity(3);
            for name in names {
                let new_name = shift_name(name, delta)?;
                let old = store.info(name)?;
                let new = store.info(&new_name)?;
                if new.per_item != old.per_item || new.batched != old.batched {
                    return None;
                }
                renamed.push(new_name);
            }
            let shifted: [String; 3] = renamed.try_into().ok()?;
            b.a = store.info(&shifted[0])?.storage;
            b.b = store.info(&shifted[1])?.storage;
            b.c = store.info(&shifted[2])?.storage;
            gemm_names.push(shifted);
            next_gemm += 1;
        }
    }
    Some(CGroup {
        name: group.name.clone(),
        parallel: rep.parallel,
        serial_hint: group.meta.serial_hint,
        bufs,
        buf_names,
        segments,
        gemm_names,
    })
}

struct GroupLowerer<'a> {
    store: &'a BufferStore,
    registry: &'a KernelRegistry,
    vectorize: bool,
    slots: HashMap<String, usize>,
    /// Extent per slot (for bounds verification).
    slot_extents: Vec<usize>,
    bufs: Vec<BufBinding>,
    buf_names: Vec<String>,
    buf_index: HashMap<String, usize>,
}

fn lower_group(
    group: &Group,
    store: &BufferStore,
    registry: &KernelRegistry,
    vectorize: bool,
    max_slots: &mut usize,
) -> Result<CGroup, RuntimeError> {
    let mut lw = GroupLowerer {
        store,
        registry,
        vectorize,
        slots: HashMap::new(),
        slot_extents: Vec::new(),
        bufs: Vec::new(),
        buf_names: Vec::new(),
        buf_index: HashMap::new(),
    };
    let mut segments: Vec<Segment> = Vec::new();
    let mut gemm_names: Vec<[String; 3]> = Vec::new();
    let mut current: Vec<Kernel> = Vec::new();
    let parallel = group_is_parallel(group);

    for stmt in &group.stmts {
        // Whole-batch hoists first.
        if let Stmt::Gemm(g) = stmt {
            if let Some((b, names)) = lw.try_batch_gemm(g)? {
                if !current.is_empty() {
                    segments.push(Segment::PerItem(std::mem::take(&mut current)));
                }
                segments.push(Segment::Batched(b));
                gemm_names.push(names);
                continue;
            }
        }
        if let Stmt::Extern(e) = stmt {
            let (f, whole) = registry.get(&e.op)?;
            if whole {
                let ce = lw.lower_extern(e, f.clone(), true)?;
                if !current.is_empty() {
                    segments.push(Segment::PerItem(std::mem::take(&mut current)));
                }
                segments.push(Segment::ExternWhole(ce));
                continue;
            }
        }
        current.push(lw.lower_stmt(stmt)?);
    }
    if !current.is_empty() {
        segments.push(Segment::PerItem(current));
    }
    *max_slots = (*max_slots).max(lw.slot_extents.len());
    Ok(CGroup {
        name: group.name.clone(),
        parallel,
        serial_hint: group.meta.serial_hint,
        bufs: lw.bufs,
        buf_names: lw.buf_names,
        segments,
        gemm_names,
    })
}

fn group_is_parallel(group: &Group) -> bool {
    fn any_parallel(s: &Stmt) -> bool {
        let mut found = false;
        s.visit(&mut |st| {
            if let Stmt::For(l) = st {
                found |= l.annot.parallel;
            }
        });
        found
    }
    group.stmts.iter().any(any_parallel)
}

impl GroupLowerer<'_> {
    fn slot(&mut self, var: &str, extent: usize) -> usize {
        if let Some(&s) = self.slots.get(var) {
            self.slot_extents[s] = extent;
            return s;
        }
        let s = self.slot_extents.len();
        self.slots.insert(var.to_string(), s);
        self.slot_extents.push(extent);
        s
    }

    fn buf(&mut self, name: &str) -> Result<usize, RuntimeError> {
        if let Some(&i) = self.buf_index.get(name) {
            return Ok(i);
        }
        let info = self.store.require(name)?;
        let binding = BufBinding {
            storage: info.storage,
            per_item: info.per_item,
            batched: info.batched,
            param_grad: matches!(info.kind, latte_ir::BufferKind::ParamGrad),
        };
        self.bufs.push(binding);
        self.buf_names.push(name.to_string());
        let i = self.bufs.len() - 1;
        self.buf_index.insert(name.to_string(), i);
        Ok(i)
    }

    fn cidx(&mut self, e: &IndexExpr) -> Result<CIdx, RuntimeError> {
        let mut terms = Vec::new();
        for (var, coef) in e.terms() {
            let slot = self.slots.get(var).copied().ok_or_else(|| {
                RuntimeError::Malformed {
                    detail: format!("index uses unbound variable `{var}`"),
                }
            })?;
            terms.push((slot, coef));
        }
        Ok(CIdx {
            base: e.offset(),
            terms,
        })
    }

    /// Compiles a buffer reference, flattening multi-dim indices through
    /// the buffer's strides and statically checking bounds.
    fn cref(&mut self, r: &BufRef) -> Result<CRef, RuntimeError> {
        let buf = self.buf(&r.buffer)?;
        let info = self.store.require(&r.buffer)?;
        if r.indices.len() != info.shape.rank() {
            return Err(RuntimeError::Malformed {
                detail: format!(
                    "reference {r} has {} indices but buffer has rank {}",
                    r.indices.len(),
                    info.shape.rank()
                ),
            });
        }
        let mut flat = CIdx::constant(0);
        for (idx, &stride) in r.indices.iter().zip(info.shape.strides()) {
            let c = self.cidx(idx)?;
            flat.base += c.base * stride as i64;
            for (slot, coef) in c.terms {
                let existing = flat.terms.iter_mut().find(|(s, _)| *s == slot);
                match existing {
                    Some((_, e)) => *e += coef * stride as i64,
                    None => flat.terms.push((slot, coef * stride as i64)),
                }
            }
        }
        let (lo, hi) = flat.range(&self.slot_extents);
        if lo < 0 || hi >= info.per_item as i64 {
            return Err(RuntimeError::Malformed {
                detail: format!(
                    "reference {r} ranges over [{lo}, {hi}] outside buffer of {} elements",
                    info.per_item
                ),
            });
        }
        Ok(CRef { buf, idx: flat })
    }

    fn cexpr(&mut self, e: &Expr, loads: &mut Vec<CRef>) -> Result<CExpr, RuntimeError> {
        Ok(match e {
            Expr::Const(c) => CExpr::Const(*c),
            Expr::Load(r) => {
                loads.push(self.cref(r)?);
                CExpr::Load(loads.len() - 1)
            }
            Expr::Unary(op, x) => CExpr::Un(*op, Box::new(self.cexpr(x, loads)?)),
            Expr::Binary(op, a, b) => CExpr::Bin(
                *op,
                Box::new(self.cexpr(a, loads)?),
                Box::new(self.cexpr(b, loads)?),
            ),
        })
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<Kernel, RuntimeError> {
        match stmt {
            Stmt::For(l) => {
                let slot = self.slot(&l.var, l.extent);
                // Innermost single-assign loops get the specialized path.
                if l.body.len() == 1 {
                    if let Stmt::Assign(a) = &l.body[0] {
                        let mut loads = Vec::new();
                        let expr = self.cexpr(&a.value, &mut loads)?;
                        let dest = self.cref(&a.dest)?;
                        let assign = CAssign {
                            dest,
                            op: a.op,
                            expr,
                            loads,
                        };
                        let fast = self.classify_inner(&assign, slot);
                        return Ok(Kernel::Inner(InnerLoop {
                            slot,
                            extent: l.extent,
                            assign,
                            fast,
                        }));
                    }
                }
                let body = l
                    .body
                    .iter()
                    .map(|s| self.lower_stmt(s))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Kernel::Loop {
                    slot,
                    extent: l.extent,
                    body,
                })
            }
            Stmt::Assign(a) => {
                let mut loads = Vec::new();
                let expr = self.cexpr(&a.value, &mut loads)?;
                let dest = self.cref(&a.dest)?;
                Ok(Kernel::Assign(CAssign {
                    dest,
                    op: a.op,
                    expr,
                    loads,
                }))
            }
            Stmt::Gemm(g) => Ok(Kernel::Gemm(self.lower_gemm(g)?)),
            Stmt::Copy(c) => Ok(Kernel::Copy(self.lower_copy(c)?)),
            Stmt::Gather(g) => Ok(Kernel::Gather(CGather {
                dest: self.buf(&g.dest)?,
                src: self.buf(&g.src)?,
                table: g.table.clone(),
                scatter: g.scatter,
            })),
            Stmt::Extern(e) => {
                let (f, whole) = self.registry.get(&e.op)?;
                if whole {
                    return Err(RuntimeError::Malformed {
                        detail: format!("whole-batch extern `{}` nested inside a loop", e.op),
                    });
                }
                let f = f.clone();
                Ok(Kernel::Extern(self.lower_extern(e, f, false)?))
            }
            Stmt::Barrier => Ok(Kernel::Loop {
                slot: 0,
                extent: 0,
                body: Vec::new(),
            }),
        }
    }

    fn classify_inner(&self, a: &CAssign, slot: usize) -> FastKind {
        if !self.vectorize {
            return FastKind::Generic;
        }
        let dstep = a.dest.idx.coef(slot);
        match (&a.expr, a.op) {
            // dest += x[i] * y[i], dest invariant in i.
            (CExpr::Bin(BinOp::Mul, l, r), AssignOp::Add) if dstep == 0 => {
                if let (CExpr::Load(i), CExpr::Load(j)) = (l.as_ref(), r.as_ref()) {
                    if a.loads[*i].idx.coef(slot) == 1 && a.loads[*j].idx.coef(slot) == 1 {
                        return FastKind::Dot;
                    }
                }
                FastKind::Generic
            }
            // dest max= src[i]: max-pooling reduction.
            (CExpr::Load(i), AssignOp::Max) if dstep == 0 => {
                if a.loads[*i].idx.coef(slot) == 1 {
                    FastKind::MaxReduce
                } else {
                    FastKind::Generic
                }
            }
            // dest[i] op= f(...) where every load steps by 0 or 1.
            _ if dstep == 1 => {
                let ok = a
                    .loads
                    .iter()
                    .all(|l| matches!(l.idx.coef(slot), 0 | 1));
                if ok {
                    FastKind::UnitMap
                } else {
                    FastKind::Generic
                }
            }
            _ => FastKind::Generic,
        }
    }

    fn lower_gemm(&mut self, g: &GemmStmt) -> Result<CGemm, RuntimeError> {
        let a = CRef {
            buf: self.buf(&g.a)?,
            idx: self.cidx(&g.a_off)?,
        };
        let b = CRef {
            buf: self.buf(&g.b)?,
            idx: self.cidx(&g.b_off)?,
        };
        let c = CRef {
            buf: self.buf(&g.c)?,
            idx: self.cidx(&g.c_off)?,
        };
        // Static bounds: offset range + operand extent within the buffer.
        for (r, need, name) in [
            (&a, g.m * g.k, &g.a),
            (&b, g.k * g.n, &g.b),
            (&c, g.m * g.n, &g.c),
        ] {
            let (lo, hi) = r.idx.range(&self.slot_extents);
            let len = self.store.require(name)?.per_item as i64;
            if lo < 0 || hi + need as i64 > len {
                return Err(RuntimeError::Malformed {
                    detail: format!(
                        "gemm operand `{name}` spans [{lo}, {}] outside {len} elements",
                        hi + need as i64
                    ),
                });
            }
        }
        Ok(CGemm {
            ta: g.ta,
            tb: g.tb,
            m: g.m,
            n: g.n,
            k: g.k,
            a,
            b,
            c,
        })
    }

    /// Recognizes the three whole-batch GEMM forms (fully-connected
    /// forward, backward-data, backward-weights) and hoists them out of
    /// the per-item loop.
    /// On success also returns the operand buffer names in the batched
    /// kernel's `[a, b, c]` order (the hoist may swap the statement's
    /// operands), for the step-share rebinding in [`reuse_group`].
    fn try_batch_gemm(
        &mut self,
        g: &GemmStmt,
    ) -> Result<Option<(BatchedGemm, [String; 3])>, RuntimeError> {
        if !(g.a_off.is_constant() && g.b_off.is_constant() && g.c_off.is_constant()) {
            return Ok(None);
        }
        let (a_base, b_base, c_base) = (g.a_off.offset(), g.b_off.offset(), g.c_off.offset());
        if a_base < 0 || b_base < 0 || c_base < 0 {
            return Ok(None);
        }
        let ai = self.store.require(&g.a)?.clone();
        let bi = self.store.require(&g.b)?.clone();
        let ci = self.store.require(&g.c)?.clone();
        let (a, b, c) = (ai.storage, bi.storage, ci.storage);
        let batch = self.store.batch();

        // FC forward: per-item C(1xN) += A(1xK)·op(B). Batched:
        // C(batch x N) += A(batch x K)·op(B).
        if g.m == 1
            && ai.batched
            && ci.batched
            && !bi.batched
            && ai.per_item == g.k
            && ci.per_item == g.n
            && a_base == 0
            && c_base == 0
            && !g.ta
        {
            return Ok(Some((
                BatchedGemm {
                    ta: false,
                    tb: g.tb,
                    m: batch,
                    n: g.n,
                    k: g.k,
                    a,
                    a_base: 0,
                    b,
                    b_base: b_base as usize,
                    c,
                    c_base: 0,
                },
                [g.a.clone(), g.b.clone(), g.c.clone()],
            )));
        }
        // FC backward-data: per-item C(Mx1) += op(A)(MxK)·B(Kx1).
        // Batched: C'(batch x M) += B'(batch x K) · op(A)ᵀ.
        if g.n == 1
            && bi.batched
            && ci.batched
            && !ai.batched
            && bi.per_item == g.k
            && ci.per_item == g.m
            && b_base == 0
            && c_base == 0
        {
            return Ok(Some((
                BatchedGemm {
                    ta: false,
                    // stored A is (m x k) when !ta → logical Aᵀ needs transpose;
                    // stored A is (k x m) when ta → usable directly.
                    tb: !g.ta,
                    m: batch,
                    n: g.m,
                    k: g.k,
                    a: b,
                    a_base: 0,
                    b: a,
                    b_base: a_base as usize,
                    c,
                    c_base: 0,
                },
                [g.b.clone(), g.a.clone(), g.c.clone()],
            )));
        }
        // Weight gradient (outer product): per-item C(MxN) += A(Mx1)·B(1xN)
        // with A, B batched and C shared. Batched:
        // C += A'(batch x M)ᵀ · B'(batch x N).
        if g.k == 1
            && ai.batched
            && bi.batched
            && !ci.batched
            && ai.per_item == g.m
            && bi.per_item == g.n
            && a_base == 0
            && b_base == 0
            && c_base == 0
        {
            return Ok(Some((
                BatchedGemm {
                    ta: true,
                    tb: false,
                    m: g.m,
                    n: g.n,
                    k: batch,
                    a,
                    a_base: 0,
                    b,
                    b_base: 0,
                    c,
                    c_base: 0,
                },
                [g.a.clone(), g.b.clone(), g.c.clone()],
            )));
        }
        Ok(None)
    }

    fn lower_copy(&mut self, c: &CopyStmt) -> Result<CCopy, RuntimeError> {
        let dest = self.buf(&c.dest)?;
        let src = self.buf(&c.src)?;
        let dinfo = self.store.require(&c.dest)?;
        let sinfo = self.store.require(&c.src)?;
        let dest_shape = latte_tensor::Shape::new(c.dest_shape.clone());
        if dest_shape.len() != dinfo.per_item {
            return Err(RuntimeError::Malformed {
                detail: format!(
                    "copy dest shape {dest_shape} does not match buffer `{}`",
                    c.dest
                ),
            });
        }
        let src_shape = latte_tensor::Shape::new(c.src_shape.clone());
        if src_shape.len() != sinfo.per_item {
            return Err(RuntimeError::Malformed {
                detail: format!(
                    "copy src shape {src_shape} does not match buffer `{}`",
                    c.src
                ),
            });
        }
        let ndd = c.extents.len();
        let nsd = c.src_shape.len();
        // Decompose each source map into coefficients over global dest
        // dims (variables d0..d{ndd-1}); any other variable is malformed.
        let mut coefs = vec![vec![0i64; ndd]; nsd];
        let mut src_base = vec![0i64; nsd];
        for (s, m) in c.map.iter().enumerate() {
            src_base[s] = m.offset();
            for (var, coef) in m.terms() {
                let d = var
                    .strip_prefix('d')
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&d| d < ndd)
                    .ok_or_else(|| RuntimeError::Malformed {
                        detail: format!("copy map uses unexpected variable `{var}`"),
                    })?;
                coefs[s][d] = coef;
            }
        }
        let offsets = c
            .offsets
            .iter()
            .map(|o| self.cidx(o))
            .collect::<Result<Vec<_>, _>>()?;
        // Static bound: offset + extent within dest shape per dim.
        for (d, off) in offsets.iter().enumerate() {
            let (lo, hi) = off.range(&self.slot_extents);
            if lo < 0 || hi + c.extents[d] as i64 > c.dest_shape[d] as i64 {
                return Err(RuntimeError::Malformed {
                    detail: format!(
                        "copy dim {d} covers [{lo}, {}] outside extent {}",
                        hi + c.extents[d] as i64,
                        c.dest_shape[d]
                    ),
                });
            }
        }
        // Trim unit iteration dimensions with zero offset: they contribute
        // nothing to any index and only add odometer overhead (pooling
        // windows routinely end in a channel extent of 1).
        let mut extents = c.extents.clone();
        let mut dest_strides = dest_shape.strides().to_vec();
        let keep: Vec<usize> = (0..ndd)
            .filter(|&d| {
                !(extents[d] == 1 && offsets[d].terms.is_empty() && offsets[d].base == 0)
            })
            .collect();
        let keep = if keep.is_empty() { vec![ndd - 1] } else { keep };
        let mut offsets = offsets;
        if keep.len() != ndd {
            extents = keep.iter().map(|&d| extents[d]).collect();
            dest_strides = keep.iter().map(|&d| dest_strides[d]).collect();
            offsets = keep.iter().map(|&d| offsets[d].clone()).collect();
            for row in &mut coefs {
                *row = keep.iter().map(|&d| row[d]).collect();
            }
        }
        let ndd = extents.len();

        // Static padding-free proof: bound every source index over the
        // whole (offset range) x (extent) iteration space.
        let mut never_oob = true;
        for s in 0..nsd {
            let mut lo = src_base[s];
            let mut hi = src_base[s];
            for d in 0..ndd {
                let (off_lo, off_hi) = offsets[d].range(&self.slot_extents);
                let g_lo = off_lo;
                let g_hi = off_hi + extents[d] as i64 - 1;
                let coef = coefs[s][d];
                if coef >= 0 {
                    lo += coef * g_lo;
                    hi += coef * g_hi;
                } else {
                    lo += coef * g_hi;
                    hi += coef * g_lo;
                }
            }
            if lo < 0 || hi >= c.src_shape[s] as i64 {
                never_oob = false;
            }
        }
        let flat_stride: Vec<i64> = (0..ndd)
            .map(|d| {
                (0..nsd)
                    .map(|s| coefs[s][d] * src_shape.strides()[s] as i64)
                    .sum()
            })
            .collect();
        let src_flat_base: i64 = (0..nsd)
            .map(|s| src_base[s] * src_shape.strides()[s] as i64)
            .sum();
        let mut copy = CCopy {
            dest,
            dest_strides,
            extents,
            offsets,
            src,
            src_dims: c.src_shape.clone(),
            src_strides: src_shape.strides().to_vec(),
            coefs,
            src_base,
            scatter: c.scatter,
            never_oob,
            flat_stride,
            src_flat_base,
            programs: None,
        };
        copy.programs = self.build_programs(&copy);
        Ok(copy)
    }

    /// Precompiles a copy's transfer programs for every combination of
    /// its offset variables, when the combination count is manageable.
    fn build_programs(&self, c: &CCopy) -> Option<ProgramTable> {
        let mut slots: Vec<usize> = Vec::new();
        for o in &c.offsets {
            for &(s, _) in &o.terms {
                if !slots.contains(&s) {
                    slots.push(s);
                }
            }
        }
        slots.sort_unstable();
        let extents: Vec<usize> = slots
            .iter()
            .map(|&s| self.slot_extents.get(s).copied().unwrap_or(1).max(1))
            .collect();
        let combos: usize = extents.iter().product();
        let dest_total: usize = c.extents.iter().product();
        if combos > 256 || combos.saturating_mul(dest_total) > 16_000_000 {
            return None;
        }
        let n_slots = self.slot_extents.len().max(1);
        let mut programs = Vec::with_capacity(combos);
        let mut env = vec![0i64; n_slots];
        for idx in 0..combos {
            // Mixed-radix decode, major first.
            let mut rem = idx;
            for (pos, (&slot, &ext)) in slots.iter().zip(&extents).enumerate().rev() {
                let _ = pos;
                env[slot] = (rem % ext) as i64;
                rem /= ext;
            }
            let offsets: Vec<i64> = c.offsets.iter().map(|o| o.eval(&env)).collect();
            programs.push(std::sync::Arc::new(copy_runs(c, &offsets)));
        }
        Some(ProgramTable {
            slots,
            extents,
            programs,
        })
    }

    fn lower_extern(
        &mut self,
        e: &ExternOp,
        f: ExternFn,
        whole_batch: bool,
    ) -> Result<CExtern, RuntimeError> {
        let mut bufs = Vec::with_capacity(e.buffers.len());
        let mut storages = Vec::new();
        for name in &e.buffers {
            let i = self.buf(name)?;
            let st = self.bufs[i].storage;
            if storages.contains(&st) {
                return Err(RuntimeError::Malformed {
                    detail: format!(
                        "extern `{}` receives aliasing buffers (storage {st} twice)",
                        e.op
                    ),
                });
            }
            storages.push(st);
            bufs.push(i);
        }
        let _ = whole_batch;
        Ok(CExtern {
            op: e.op.clone(),
            f,
            attrs: e.attrs.clone(),
            bufs,
        })
    }
}
