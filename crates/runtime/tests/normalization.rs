//! Normalization-ensemble integration: batch-norm, plain softmax, and
//! LRN running inside compiled networks (not just as raw kernels), with
//! finite-difference checks through the extern backward paths.

use latte_core::dsl::Net;
use latte_core::{compile, OptLevel};
use latte_nn::layers::{batch_norm, data, fully_connected, l2_loss, lrn, softmax};
use latte_runtime::Executor;

fn seeded(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            ((h >> 8) % 1000) as f32 / 400.0 - 1.25
        })
        .collect()
}

#[test]
fn batch_norm_normalizes_per_channel_across_batch() {
    let (batch, c) = (8usize, 3usize);
    let mut net = Net::new(batch);
    let d = data(&mut net, "data", vec![2, 2, c]);
    batch_norm(&mut net, "bn", d, 1e-5);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();
    exec.set_input("data", &seeded(batch * 4 * c, 5)).unwrap();
    exec.forward();
    let out = exec.read_buffer("bn.value").unwrap();
    // Per channel, across batch and spatial positions: mean ~0, var ~1.
    for ch in 0..c {
        let vals: Vec<f32> = (0..batch * 4)
            .map(|i| out[i * c + ch])
            .collect();
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        let var: f32 =
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
        assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
    }
}

#[test]
fn batch_norm_backward_passes_finite_difference() {
    let (batch, width) = (4usize, 3usize);
    let mut net = Net::new(batch);
    let d = data(&mut net, "data", vec![1, 1, width]);
    let fc_in = fully_connected(&mut net, "fc0", d, width, 3);
    // Reshape through a 3-channel spatial form for BN.
    let bn_in = {
        use latte_core::dsl::{Ensemble, Mapping};
        use latte_core::dsl::stdlib::identity_neuron;
        let e = net.add(Ensemble::new("as_chw", vec![1, 1, width], identity_neuron()));
        net.connect(
            fc_in,
            e,
            Mapping::new(|idx| {
                latte_core::dsl::SourceRegion::new(vec![latte_core::dsl::SourceRange::single(
                    idx[2] as isize,
                )])
            }),
        );
        e
    };
    let bn = batch_norm(&mut net, "bn", bn_in, 1e-3);
    let target = data(&mut net, "target", vec![1, 1, width]);
    l2_loss(&mut net, "loss", bn, target);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();
    exec.set_input("data", &seeded(batch * width, 2)).unwrap();
    exec.set_input("target", &seeded(batch * width, 9)).unwrap();
    exec.forward();
    exec.backward();
    let grads = exec.read_buffer("fc0.g_weights").unwrap();
    let values = exec.read_buffer("fc0.weights").unwrap();
    for idx in [0, values.len() - 1] {
        let eps = 2e-3;
        let mut probe = |delta: f32| {
            let mut w = values.clone();
            w[idx] += delta;
            exec.write_buffer("fc0.weights", &w).unwrap();
            exec.forward();
            exec.loss()
        };
        let numeric = (probe(eps) - probe(-eps)) / (2.0 * eps);
        probe(0.0);
        assert!(
            (numeric - grads[idx]).abs() < 3e-2 * grads[idx].abs().max(0.2),
            "w[{idx}]: numeric {numeric} vs analytic {}",
            grads[idx]
        );
    }
}

#[test]
fn plain_softmax_rows_are_distributions() {
    let mut net = Net::new(3);
    let d = data(&mut net, "data", vec![5]);
    softmax(&mut net, "sm", d);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();
    exec.set_input("data", &seeded(15, 8)).unwrap();
    exec.forward();
    let out = exec.read_buffer("sm.value").unwrap();
    for item in 0..3 {
        let row = &out[item * 5..(item + 1) * 5];
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "row sums to {sum}");
        assert!(row.iter().all(|&p| p > 0.0));
    }
}

#[test]
fn lrn_matches_caffe_layer() {
    use latte_baselines::{caffe, spec::LayerSpec};
    let (h, c, batch) = (3usize, 4usize, 2usize);
    let mut net = Net::new(batch);
    let d = data(&mut net, "data", vec![h, h, c]);
    lrn(&mut net, "lrn1", d, 3, 2e-2, 0.75);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();
    let logical = |b: usize, ch: usize, y: usize, x: usize| {
        seeded(1, (b * 131 + ch * 17 + y * 5 + x) as u32)[0]
    };
    let mut in_yxc = vec![0.0f32; batch * h * h * c];
    let mut in_cyx = vec![0.0f32; batch * h * h * c];
    for b in 0..batch {
        for ch in 0..c {
            for y in 0..h {
                for x in 0..h {
                    let v = logical(b, ch, y, x);
                    in_yxc[((b * h + y) * h + x) * c + ch] = v;
                    in_cyx[((b * c + ch) * h + y) * h + x] = v;
                }
            }
        }
    }
    exec.set_input("data", &in_yxc).unwrap();
    exec.forward();
    let got = exec.read_buffer("lrn1.value").unwrap();

    let mut base = caffe::build(
        (c, h, h),
        batch,
        &[LayerSpec::Lrn { size: 3, alpha: 2e-2, beta: 0.75 }],
        0,
    );
    base.set_input(&in_cyx);
    base.forward();
    let expect = &base.output().data;
    for b in 0..batch {
        for ch in 0..c {
            for y in 0..h {
                for x in 0..h {
                    let l = got[((b * h + y) * h + x) * c + ch];
                    let e = expect[((b * c + ch) * h + y) * h + x];
                    assert!((l - e).abs() < 1e-4, "b{b} c{ch} y{y} x{x}: {l} vs {e}");
                }
            }
        }
    }
}

#[test]
fn scale_shift_learns_affine_params() {
    use latte_nn::layers::scale_shift;
    let (batch, c) = (4usize, 2usize);
    let mut net = Net::new(batch);
    let d = data(&mut net, "data", vec![2, 2, c]);
    let s = scale_shift(&mut net, "scale1", d, 0);
    let target = data(&mut net, "target", vec![2, 2, c]);
    l2_loss(&mut net, "loss", s, target);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();
    // Fit y = 3x - 1 per channel.
    let input = seeded(batch * 4 * c, 3);
    let target_vals: Vec<f32> = input.iter().map(|x| 3.0 * x - 1.0).collect();
    exec.set_input("data", &input).unwrap();
    exec.set_input("target", &target_vals).unwrap();
    for _ in 0..300 {
        exec.forward();
        exec.backward();
        exec.for_each_param_mut(|v, g, lr| {
            for (vi, gi) in v.iter_mut().zip(g) {
                *vi -= 0.05 * lr * gi;
            }
        });
    }
    exec.forward();
    assert!(exec.loss() < 1e-4, "loss {}", exec.loss());
    let gamma = exec.read_buffer("scale1.gamma").unwrap();
    let beta = exec.read_buffer("scale1.beta").unwrap();
    for g in &gamma {
        assert!((g - 3.0).abs() < 0.05, "gamma {g}");
    }
    for b in &beta {
        assert!((b + 1.0).abs() < 0.05, "beta {b}");
    }
}
