//! Bit-identity and fault behaviour of the real distributed trainer:
//! a synchronized in-process `DistTrainer` group must match the serial
//! `train_replicated` oracle bit for bit, a world of one must match
//! plain single-process training, and a mid-run crash must leave the
//! survivors training in lossy mode.

use std::sync::Arc;

use latte_core::{compile, OptLevel};
use latte_nn::models::{mlp, ModelConfig};
use latte_runtime::cluster::{train_replicated, SyncMode};
use latte_runtime::data::Batch;
use latte_runtime::dist::{net_fingerprint, DistTrainer};
use latte_runtime::fault::{Fault, FaultPlan, FaultyTransport};
use latte_runtime::ring::CommPolicy;
use latte_runtime::solver::{LrPolicy, MomPolicy, Sgd, Solver, SolverParams};
use latte_runtime::transport::{channel_group, channel_group_with, Transport};
use latte_runtime::Executor;

const BATCH: usize = 4;
const INPUT: usize = 6;
const CLASSES: usize = 3;
const WORLD: usize = 4;
const STEPS: u32 = 2;

fn build_executor(opt: &OptLevel) -> Executor {
    let cfg = ModelConfig {
        batch: BATCH,
        input_size: INPUT,
        channel_div: 1,
        classes: CLASSES,
        with_loss: true,
        seed: 7,
    };
    Executor::new(compile(&mlp(&cfg, &[8]).net, opt).expect("compile")).expect("executor")
}

fn solver() -> Sgd {
    Sgd::new(SolverParams {
        lr_policy: LrPolicy::Fixed { lr: 0.05 },
        mom_policy: MomPolicy::Fixed { mom: 0.9 },
        regu_coef: 0.0,
        max_epoch: 1,
    })
}

/// The deterministic shard `(step, rank)` consumes — the same function
/// the worker binary uses, so every process agrees on the data.
fn shard(step: u32, rank: usize) -> Batch {
    let mut inputs = Vec::with_capacity(BATCH * INPUT);
    let mut labels = Vec::with_capacity(BATCH);
    for item in 0..BATCH {
        let g = 7u64
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((step as u64) << 24)
            .wrapping_add((rank as u64) << 12)
            .wrapping_add(item as u64);
        let class = (g % CLASSES as u64) as usize;
        for j in 0..INPUT {
            let base = if j % CLASSES == class { 1.0 } else { 0.1 };
            inputs.push(base + ((g >> 8).wrapping_add(j as u64) % 7) as f32 * 0.01);
        }
        labels.push(class as f32);
    }
    vec![("data".into(), inputs), ("label".into(), labels)]
}

fn read_params(exec: &Executor) -> Vec<Vec<f32>> {
    exec.params()
        .iter()
        .map(|p| exec.read_buffer(&p.value).expect("param readable"))
        .collect()
}

/// Runs a `world`-rank in-process DistTrainer group for `steps` steps
/// and returns every rank's final parameters.
fn run_group(world: usize, steps: u32, opt: &OptLevel) -> Vec<Vec<Vec<f32>>> {
    let endpoints = channel_group(world).unwrap();
    let handles: Vec<_> = endpoints
        .into_iter()
        .enumerate()
        .map(|(rank, ep)| {
            let opt = *opt;
            std::thread::spawn(move || {
                let exec = build_executor(&opt);
                let mut trainer =
                    DistTrainer::new(exec, Box::new(ep), CommPolicy::default()).unwrap();
                let mut solver = solver();
                for step in 0..steps {
                    let batch = shard(step, rank);
                    let rep = trainer.step(&batch, &mut |e| solver.step(e)).unwrap();
                    assert_eq!(rep.mode, SyncMode::Synchronized, "rank {rank} degraded");
                    assert_eq!(rep.live, world);
                }
                read_params(trainer.exec())
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank thread panicked"))
        .collect()
}

/// The serial oracle's parameters after the same schedule.
fn run_oracle(world: usize, steps: u32, opt: &OptLevel) -> Vec<Vec<f32>> {
    let mut exec = build_executor(opt);
    let shards: Vec<Vec<Batch>> = (0..steps)
        .map(|s| (0..world).map(|r| shard(s, r)).collect())
        .collect();
    let mut solver = solver();
    train_replicated(&mut exec, &mut solver, &shards).unwrap();
    read_params(&exec)
}

#[test]
fn synchronized_group_matches_serial_oracle_bitwise() {
    // The tentpole's determinism contract, across optimization levels:
    // the real transport, comm thread, and overlapped streaming must not
    // perturb a single bit relative to the serial replicated oracle.
    for opt in [OptLevel::none(), OptLevel::parallel_only(), OptLevel::full()] {
        let oracle = run_oracle(WORLD, STEPS, &opt);
        let ranks = run_group(WORLD, STEPS, &opt);
        for (rank, params) in ranks.iter().enumerate() {
            assert_eq!(
                params, &oracle,
                "rank {rank} diverged from the serial oracle at {opt:?}"
            );
        }
    }
}

#[test]
fn world_of_one_matches_plain_training_bitwise() {
    // A solo ring must be invisible: same bits as a plain train loop.
    let mut exec = build_executor(&OptLevel::full());
    let mut plain_solver = solver();
    for step in 0..STEPS {
        for (name, data) in &shard(step, 0) {
            exec.set_input(name, data).unwrap();
        }
        exec.forward();
        exec.backward();
        plain_solver.step(&mut exec);
    }
    let plain = read_params(&exec);

    let dist = run_group(1, STEPS, &OptLevel::full());
    assert_eq!(dist[0], plain, "world-1 trainer diverged from plain training");
}

#[test]
fn fingerprint_spots_a_mismatched_net() {
    let a = net_fingerprint(&build_executor(&OptLevel::full()));
    let b = net_fingerprint(&build_executor(&OptLevel::full()));
    assert_eq!(a, b, "fingerprint must be deterministic");
    let cfg = ModelConfig {
        batch: BATCH,
        input_size: INPUT,
        channel_div: 1,
        classes: CLASSES,
        with_loss: true,
        seed: 7,
    };
    let wider =
        Executor::new(compile(&mlp(&cfg, &[16]).net, &OptLevel::full()).unwrap()).unwrap();
    assert_ne!(a, net_fingerprint(&wider), "a wider net must not match");
}

#[test]
fn mid_run_crash_degrades_survivors_to_lossy() {
    // Rank 2 of 3 goes silent from step 1 on: the survivors must evict
    // it, finish every step, and report the degraded mode with the
    // eviction on the books.
    let world = 3;
    let steps = 3u32;
    let plan = FaultPlan::new(vec![Fault::NodeCrash { node: 2, iter: 1 }]);
    let endpoints = channel_group_with(world, |rank, wire| {
        FaultyTransport::new(rank, if rank == 2 { plan.clone() } else { FaultPlan::none() }, wire)
    })
    .unwrap();
    let policy = CommPolicy {
        op_timeout_ms: 400,
        max_retries: 2,
        lossy_timeout_ms: 150,
        ..CommPolicy::default()
    };
    let handles: Vec<_> = endpoints
        .into_iter()
        .enumerate()
        .map(|(rank, ep)| {
            let policy = policy.clone();
            std::thread::spawn(move || {
                let metrics = Arc::clone(ep.metrics());
                let exec = build_executor(&OptLevel::full());
                let mut trainer = DistTrainer::new(exec, Box::new(ep), policy).unwrap();
                let mut solver = solver();
                let mut last_mode = SyncMode::Synchronized;
                let mut last_live = world;
                for step in 0..steps {
                    let batch = shard(step, rank);
                    match trainer.step(&batch, &mut |e| solver.step(e)) {
                        Ok(rep) => {
                            last_mode = rep.mode;
                            last_live = rep.live;
                        }
                        Err(e) => {
                            // Only the crashed rank may fail its step.
                            assert_eq!(rank, 2, "survivor {rank} errored: {e}");
                            break;
                        }
                    }
                }
                (rank, last_mode, last_live, metrics.snapshot(), trainer.stats())
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (rank, mode, live, metrics, stats) in &results {
        if *rank == 2 {
            continue;
        }
        assert_eq!(*mode, SyncMode::LossyDegraded, "survivor {rank} not degraded");
        assert_eq!(*live, 2, "survivor {rank} sees wrong ring size");
        assert!(stats.lossy_steps >= 1, "survivor {rank} recorded no lossy step");
        assert!(
            metrics.peers_evicted >= 1 || metrics.nodes_failed >= 1,
            "survivor {rank} has no eviction on the books"
        );
    }
}
