//! Inception-style multi-branch blocks through the concat ensemble: a
//! 1x1 branch, a 3x3 branch, and a pooling branch merged along channels,
//! trained end to end.

use latte_core::dsl::Net;
use latte_core::{compile, OptLevel};
use latte_nn::layers::{
    concat, convolution, data, fully_connected, max_pool, relu, softmax_loss, ConvSpec,
};
use latte_runtime::Executor;

fn seeded(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            ((h >> 8) % 1000) as f32 / 500.0 - 1.0
        })
        .collect()
}

/// One inception-ish block over an (h, h, cin) input.
fn inception_block(
    net: &mut Net,
    prefix: &str,
    input: latte_core::dsl::EnsembleId,
) -> latte_core::dsl::EnsembleId {
    let b1 = convolution(
        net,
        &format!("{prefix}_1x1"),
        input,
        ConvSpec { out_channels: 3, kernel: 1, stride: 1, pad: 0 },
        1,
    );
    let b1 = relu(net, &format!("{prefix}_1x1_relu"), b1);
    let b3 = convolution(net, &format!("{prefix}_3x3"), input, ConvSpec::same(4, 3), 2);
    let b3 = relu(net, &format!("{prefix}_3x3_relu"), b3);
    // Pool branch keeps spatial size with a stride-1 3x3 window + pad via
    // a stride-1 conv after pooling is overkill here; use a 1x1 conv to
    // keep it simple and spatially aligned.
    let bp = convolution(
        net,
        &format!("{prefix}_proj"),
        input,
        ConvSpec { out_channels: 2, kernel: 1, stride: 1, pad: 0 },
        3,
    );
    concat(net, &format!("{prefix}_concat"), &[b1, b3, bp])
}

#[test]
fn concat_lays_sources_side_by_side() {
    let mut net = Net::new(2);
    let a = data(&mut net, "a", vec![2, 2, 2]);
    let b = data(&mut net, "b", vec![2, 2, 3]);
    let c = concat(&mut net, "cat", &[a, b]);
    assert_eq!(net.ensemble(c).dims(), &[2, 2, 5]);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();
    let av = seeded(2 * 8, 1);
    let bv = seeded(2 * 12, 2);
    exec.set_input("a", &av).unwrap();
    exec.set_input("b", &bv).unwrap();
    exec.forward();
    let out = exec.read_buffer("cat.value").unwrap();
    for item in 0..2 {
        for y in 0..2 {
            for x in 0..2 {
                for ch in 0..5 {
                    let got = out[((item * 2 + y) * 2 + x) * 5 + ch];
                    let expect = if ch < 2 {
                        av[((item * 2 + y) * 2 + x) * 2 + ch]
                    } else {
                        bv[((item * 2 + y) * 2 + x) * 3 + (ch - 2)]
                    };
                    assert_eq!(got, expect, "item {item} y{y} x{x} ch{ch}");
                }
            }
        }
    }
}

#[test]
fn inception_block_trains_end_to_end() {
    let batch = 4;
    let mut net = Net::new(batch);
    let d = data(&mut net, "data", vec![6, 6, 2]);
    let block = inception_block(&mut net, "inc1", d);
    let pooled = max_pool(&mut net, "pool", block, 2, 2);
    let fc = fully_connected(&mut net, "fc", pooled, 3, 9);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", fc, label);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    assert_eq!(net.ensemble(block).dims(), &[6, 6, 9]);
    let mut exec = Executor::new(compiled).unwrap();
    exec.set_input("data", &seeded(batch * 72, 5)).unwrap();
    exec.set_input("label", &[0.0, 1.0, 2.0, 1.0]).unwrap();
    exec.forward();
    let initial = exec.loss();
    for _ in 0..50 {
        exec.forward();
        exec.backward();
        exec.for_each_param_mut(|v, g, lr| {
            for (vi, gi) in v.iter_mut().zip(g) {
                *vi -= 0.1 * lr * gi;
            }
        });
    }
    exec.forward();
    assert!(exec.loss() < initial * 0.3, "{initial} -> {}", exec.loss());
}

#[test]
fn concat_gradients_split_back_to_branches() {
    let mut net = Net::new(1);
    let d = data(&mut net, "data", vec![4, 4, 2]);
    let c1 = convolution(&mut net, "c1", d, ConvSpec::same(2, 1), 1);
    let c2 = convolution(&mut net, "c2", d, ConvSpec::same(3, 1), 2);
    let cat = concat(&mut net, "cat", &[c1, c2]);
    let target = data(&mut net, "target", vec![4, 4, 5]);
    latte_nn::layers::l2_loss(&mut net, "loss", cat, target);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();
    exec.set_input("data", &seeded(32, 3)).unwrap();
    exec.set_input("target", &vec![0.0; 80]).unwrap();
    exec.forward();
    exec.backward();
    // Both branches receive gradient; finite-difference check one weight
    // of each.
    for (param, grad_buf) in [("c1.weights", "c1.g_weights"), ("c2.weights", "c2.g_weights")] {
        let grads = exec.read_buffer(grad_buf).unwrap();
        let values = exec.read_buffer(param).unwrap();
        assert!(grads.iter().any(|g| *g != 0.0), "{param} got no gradient");
        let idx = values.len() / 2;
        let eps = 1e-2;
        let mut probe = |delta: f32| {
            let mut w = values.clone();
            w[idx] += delta;
            exec.write_buffer(param, &w).unwrap();
            exec.forward();
            exec.loss()
        };
        let numeric = (probe(eps) - probe(-eps)) / (2.0 * eps);
        probe(0.0);
        assert!(
            (numeric - grads[idx]).abs() < 2e-2 * grads[idx].abs().max(0.3),
            "{param}: numeric {numeric} vs analytic {}",
            grads[idx]
        );
    }
}
