//! Grouped convolution through the irregular-mapping (gather) path,
//! checked against per-group dense reference convolutions.

use latte_core::dsl::Net;
use latte_core::{compile, OptLevel};
use latte_nn::layers::{data, grouped_convolution, ConvSpec};
use latte_runtime::Executor;
use latte_tensor::conv::{conv2d_reference, Conv2dParams};

fn seeded(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            ((h >> 8) % 1000) as f32 / 500.0 - 1.0
        })
        .collect()
}

#[test]
fn grouped_conv_matches_per_group_references() {
    let (h, in_c, out_c, groups, batch) = (6usize, 4usize, 6usize, 2usize, 2usize);
    let k = 3;
    let mut net = Net::new(batch);
    let d = data(&mut net, "data", vec![h, h, in_c]);
    grouped_convolution(
        &mut net,
        "gconv",
        d,
        ConvSpec {
            out_channels: out_c,
            kernel: k,
            stride: 1,
            pad: 1,
        },
        groups,
        5,
    );
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    // The irregular connection must have been staged through a gather.
    let printed = compiled.pretty();
    assert!(printed.contains("gather"), "{printed}");
    let wsoa = compiled
        .param_inits
        .iter()
        .find(|(n, _)| n == "gconv.weights")
        .unwrap()
        .1
        .clone();
    let mut exec = Executor::new(compiled).unwrap();

    // Input in both layouts.
    let in_pg = in_c / groups;
    let out_pg = out_c / groups;
    let patch = k * k * in_pg;
    let input_yxc = seeded(batch * h * h * in_c, 3);
    let to_cyx = |item: usize, group: usize| -> Vec<f32> {
        let mut out = vec![0.0f32; in_pg * h * h];
        for c in 0..in_pg {
            for y in 0..h {
                for x in 0..h {
                    out[c * h * h + y * h + x] = input_yxc
                        [((item * h + y) * h + x) * in_c + group * in_pg + c];
                }
            }
        }
        out
    };

    exec.set_input("data", &input_yxc).unwrap();
    exec.forward();
    let got = exec.read_buffer("gconv.value").unwrap();

    let p = Conv2dParams {
        in_channels: in_pg,
        out_channels: out_pg,
        height: h,
        width: h,
        kernel: k,
        stride: 1,
        pad: 1,
    };
    for item in 0..batch {
        for g in 0..groups {
            // Reference weights for this group's output channels, in
            // (oc, c, ky, kx) layout from Latte's (ky, kx, c) patch rows.
            let mut wref = vec![0.0f32; out_pg * patch];
            for oc in 0..out_pg {
                let global_oc = g * out_pg + oc;
                for ky in 0..k {
                    for kx in 0..k {
                        for c in 0..in_pg {
                            wref[oc * patch + c * k * k + ky * k + kx] =
                                wsoa[global_oc * patch + (ky * k + kx) * in_pg + c];
                        }
                    }
                }
            }
            let x = to_cyx(item, g);
            let mut expect = vec![0.0f32; out_pg * h * h];
            conv2d_reference(&p, &x, &wref, &[], &mut expect);
            for oc in 0..out_pg {
                for y in 0..h {
                    for xx in 0..h {
                        let e = expect[oc * h * h + y * h + xx];
                        let got_v = got
                            [((item * h + y) * h + xx) * out_c + g * out_pg + oc];
                        assert!(
                            (got_v - e).abs() < 1e-3,
                            "item {item} group {g} oc {oc} y{y} x{xx}: {got_v} vs {e}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn grouped_conv_gradients_flow() {
    let mut net = Net::new(1);
    let d = data(&mut net, "data", vec![4, 4, 2]);
    let c = grouped_convolution(
        &mut net,
        "gconv",
        d,
        ConvSpec {
            out_channels: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
        },
        2,
        1,
    );
    let target = data(&mut net, "target", vec![4, 4, 4]);
    latte_nn::layers::l2_loss(&mut net, "loss", c, target);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();
    exec.set_input("data", &seeded(32, 1)).unwrap();
    exec.set_input("target", &vec![0.0; 64]).unwrap();
    exec.forward();
    exec.backward();
    let g = exec.read_buffer("gconv.g_weights").unwrap();
    assert!(g.iter().any(|x| *x != 0.0));
    // Finite-difference check on one weight.
    let values = exec.read_buffer("gconv.weights").unwrap();
    let grads = g;
    let idx = 7;
    let eps = 1e-2;
    let mut probe = |delta: f32| {
        let mut w = values.clone();
        w[idx] += delta;
        exec.write_buffer("gconv.weights", &w).unwrap();
        exec.forward();
        exec.loss()
    };
    let numeric = (probe(eps) - probe(-eps)) / (2.0 * eps);
    probe(0.0);
    assert!(
        (numeric - grads[idx]).abs() < 2e-2 * grads[idx].abs().max(0.5),
        "numeric {numeric} vs analytic {}",
        grads[idx]
    );
}
