//! Property-based tests over the whole compile→lower→execute stack.
//!
//! The central property: for *any* network shape, every optimization
//! level computes the same function. A disagreement pinpoints a bug in
//! synthesis, pattern matching, tiling, fusion, or lowering.

use latte_core::dsl::Net;
use latte_core::{compile, OptLevel};
use latte_nn::layers::{
    convolution, data, fully_connected, max_pool, mean_pool, relu, sigmoid, tanh, ConvSpec,
};
use latte_runtime::Executor;
use proptest::prelude::*;

fn seeded(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(seed.wrapping_mul(97));
            ((h >> 8) % 1000) as f32 / 400.0 - 1.25
        })
        .collect()
}

/// Builds a random conv(+activation)(+pool) stack and returns the final
/// buffer name to compare.
#[allow(clippy::too_many_arguments)]
fn build_stack(
    batch: usize,
    h: usize,
    cin: usize,
    cout: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    act: u8,
    pool: u8,
) -> Option<(Net, String, usize)> {
    if h + 2 * pad < kernel {
        return None;
    }
    let mut net = Net::new(batch);
    let d = data(&mut net, "data", vec![h, h, cin]);
    let conv = convolution(
        &mut net,
        "conv1",
        d,
        ConvSpec {
            out_channels: cout,
            kernel,
            stride,
            pad,
        },
        7,
    );
    let oh = (h + 2 * pad - kernel) / stride + 1;
    let mut lastname = "conv1".to_string();
    let mut last = conv;
    match act {
        1 => {
            last = relu(&mut net, "act", last);
            lastname = "act".into();
        }
        2 => {
            last = sigmoid(&mut net, "act", last);
            lastname = "act".into();
        }
        3 => {
            last = tanh(&mut net, "act", last);
            lastname = "act".into();
        }
        _ => {}
    }
    if pool > 0 && oh >= 2 {
        let _ = match pool {
            1 => max_pool(&mut net, "pool", last, 2, 2),
            _ => mean_pool(&mut net, "pool", last, 2, 2),
        };
        lastname = "pool".into();
    }
    Some((net, format!("{lastname}.value"), h * h * cin))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All optimization levels compute identical forward values for
    /// random convolution stacks.
    #[test]
    fn opt_levels_agree_on_random_conv_stacks(
        batch in 1usize..4,
        h in 4usize..11,
        cin in 1usize..4,
        cout in 1usize..6,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        act in 0u8..4,
        pool in 0u8..3,
        seed in 0u32..1000,
    ) {
        let Some((net, out_buf, in_len)) =
            build_stack(batch, h, cin, cout, kernel, stride, pad, act, pool)
        else {
            return Ok(());
        };
        let input = seeded(batch * in_len, seed);
        let mut reference: Option<Vec<f32>> = None;
        for opt in [
            OptLevel::none(),
            OptLevel::none().with_pattern_match(true),
            OptLevel::full().with_fusion(false),
            OptLevel::full().with_shared_buffers(false),
            OptLevel::full(),
        ] {
            let compiled = compile(&net, &opt).unwrap();
            let mut exec = Executor::new(compiled).unwrap();
            exec.set_input("data", &input).unwrap();
            exec.forward();
            let out = exec.read_buffer(&out_buf).unwrap();
            match &reference {
                None => reference = Some(out),
                Some(r) => {
                    for (a, b) in r.iter().zip(&out) {
                        prop_assert!(
                            (a - b).abs() <= 2e-3 * a.abs().max(1.0),
                            "{opt:?}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    /// Backward parameter gradients also agree across optimization
    /// levels (exercises backward fusion, scatter copies, and the
    /// batched weight-gradient GEMMs).
    #[test]
    fn opt_levels_agree_on_gradients(
        batch in 1usize..3,
        h in 4usize..9,
        cin in 1usize..3,
        cout in 1usize..4,
        seed in 0u32..1000,
    ) {
        let build = |_tag: &str| {
            let mut net = Net::new(batch);
            let d = data(&mut net, "data", vec![h, h, cin]);
            let conv = convolution(&mut net, "conv1", d, ConvSpec::same(cout, 3), 7);
            let r = relu(&mut net, "relu1", conv);
            let p = if h >= 2 { max_pool(&mut net, "pool1", r, 2, 2) } else { r };
            let fc = fully_connected(&mut net, "fc1", p, 3, 9);
            let label = data(&mut net, "label", vec![1]);
            latte_nn::layers::softmax_loss(&mut net, "loss", fc, label);
            net
        };
        let input = seeded(batch * h * h * cin, seed);
        let labels: Vec<f32> = (0..batch).map(|i| (i % 3) as f32).collect();
        let mut reference: Option<(Vec<f32>, Vec<f32>)> = None;
        for opt in [OptLevel::none(), OptLevel::full()] {
            let compiled = compile(&build("x"), &opt).unwrap();
            let mut exec = Executor::new(compiled).unwrap();
            exec.set_input("data", &input).unwrap();
            exec.set_input("label", &labels).unwrap();
            exec.forward();
            exec.backward();
            let gw = exec.read_buffer("conv1.g_weights").unwrap();
            let gf = exec.read_buffer("fc1.g_weights").unwrap();
            match &reference {
                None => reference = Some((gw, gf)),
                Some((rw, rf)) => {
                    for (a, b) in rw.iter().zip(&gw).chain(rf.iter().zip(&gf)) {
                        prop_assert!(
                            (a - b).abs() <= 5e-3 * a.abs().max(0.5),
                            "{opt:?}: grad {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    /// Fully-connected stacks of random depth/widths learn and agree
    /// across levels.
    #[test]
    fn fc_chains_agree(
        batch in 1usize..5,
        input in 2usize..10,
        widths in proptest::collection::vec(1usize..8, 1..4),
        seed in 0u32..1000,
    ) {
        let mut net = Net::new(batch);
        let d = data(&mut net, "data", vec![input]);
        let mut prev = d;
        for (i, &w) in widths.iter().enumerate() {
            prev = fully_connected(&mut net, &format!("fc{i}"), prev, w, i as u64);
            prev = tanh(&mut net, &format!("t{i}"), prev);
        }
        let out_buf = format!("t{}.value", widths.len() - 1);
        let xs = seeded(batch * input, seed);
        let mut reference: Option<Vec<f32>> = None;
        for opt in [OptLevel::none(), OptLevel::full()] {
            let compiled = compile(&net, &opt).unwrap();
            let mut exec = Executor::new(compiled).unwrap();
            exec.set_input("data", &xs).unwrap();
            exec.forward();
            let out = exec.read_buffer(&out_buf).unwrap();
            match &reference {
                None => reference = Some(out),
                Some(r) => {
                    for (a, b) in r.iter().zip(&out) {
                        prop_assert!((a - b).abs() <= 1e-3, "{a} vs {b}");
                    }
                }
            }
        }
    }
}
