//! Step-share lowering: unrolled recurrent steps marked α-equivalent by
//! the compiler's step-share pass must reuse one compiled body, and the
//! reused plan must be bit-identical to lowering every step from scratch.

use latte_core::dsl::Net;
use latte_core::{compile, OptLevel};
use latte_nn::layers::{data, fully_connected, softmax_loss};
use latte_nn::rnn::lstm;
use latte_runtime::Executor;

const STEPS: usize = 5;

fn lstm_net(batch: usize) -> Net {
    let mut step_net = Net::new(batch);
    let x = data(&mut step_net, "x", vec![3]);
    lstm(&mut step_net, "lstm", x, 4, 19);
    let mut net = step_net.unroll(STEPS);
    let final_h = net.find(&format!("lstm_h@t{}", STEPS - 1)).unwrap();
    let head = fully_connected(&mut net, "head", final_h, 3, 20);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

fn seeded(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            ((h >> 8) % 1000) as f32 / 500.0 - 1.0
        })
        .collect()
}

fn run(exec: &mut Executor, batch: usize) -> (f32, Vec<f32>) {
    for t in 0..STEPS {
        exec.set_input(&format!("x@t{t}"), &seeded(batch * 3, t as u32 + 1))
            .unwrap();
    }
    exec.set_input("label", &vec![1.0; batch]).unwrap();
    exec.forward();
    exec.backward();
    let h = exec
        .read_buffer(&format!("lstm_h@t{}.value", STEPS - 1))
        .unwrap();
    (exec.loss(), h)
}

/// The pass marks clone steps, lowering reuses their bodies, and the
/// reused plan computes the same bits as a scratch lowering.
#[test]
fn unrolled_steps_reuse_compiled_bodies() {
    let batch = 2;
    for opt in [OptLevel::none(), OptLevel::full()] {
        let compiled = compile(&lstm_net(batch), &opt).unwrap();
        assert!(
            compiled.stats.step_groups_shared > 0,
            "step-share pass found no clone steps ({opt:?})"
        );
        assert!(compiled.stats.step_stmts_deduped > 0);

        // Baseline: same program with the share annotations stripped, so
        // every group lowers from scratch.
        let mut scratch = compiled.clone();
        for g in scratch.forward.iter_mut().chain(scratch.backward.iter_mut()) {
            g.meta.share_body_with = None;
        }

        let mut shared_exec = Executor::new(compiled).unwrap();
        let mut scratch_exec = Executor::new(scratch).unwrap();
        assert!(
            shared_exec.plan().step_groups_reused() > 0,
            "lowering reused no step bodies ({opt:?})"
        );
        assert_eq!(scratch_exec.plan().step_groups_reused(), 0);

        let (loss_a, h_a) = run(&mut shared_exec, batch);
        let (loss_b, h_b) = run(&mut scratch_exec, batch);
        assert_eq!(loss_a.to_bits(), loss_b.to_bits(), "loss diverged ({opt:?})");
        assert_eq!(h_a.len(), h_b.len());
        for (i, (a, b)) in h_a.iter().zip(&h_b).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "h[{i}] diverged ({opt:?})");
        }

        // Gradients must match bit-for-bit too: the reused backward
        // bodies accumulate into the same shared parameter gradients.
        let mut grads_a: Vec<(String, Vec<f32>)> = Vec::new();
        shared_exec.for_each_param_grad_mut(|name, g| grads_a.push((name.to_string(), g.to_vec())));
        let mut grads_b: Vec<(String, Vec<f32>)> = Vec::new();
        scratch_exec.for_each_param_grad_mut(|name, g| grads_b.push((name.to_string(), g.to_vec())));
        assert_eq!(grads_a.len(), grads_b.len());
        for ((na, ga), (nb, gb)) in grads_a.iter().zip(&grads_b) {
            assert_eq!(na, nb);
            for (x, y) in ga.iter().zip(gb) {
                assert_eq!(x.to_bits(), y.to_bits(), "grad {na} diverged ({opt:?})");
            }
        }
    }
}

/// A step count of one has nothing to share; the counters stay zero and
/// the program still runs.
#[test]
fn single_step_shares_nothing() {
    let batch = 2;
    let mut step_net = Net::new(batch);
    let x = data(&mut step_net, "x", vec![3]);
    lstm(&mut step_net, "lstm", x, 4, 19);
    let mut net = step_net.unroll(1);
    let final_h = net.find("lstm_h@t0").unwrap();
    let head = fully_connected(&mut net, "head", final_h, 3, 20);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    assert_eq!(compiled.stats.step_groups_shared, 0);
    let exec = Executor::new(compiled).unwrap();
    assert_eq!(exec.plan().step_groups_reused(), 0);
}
