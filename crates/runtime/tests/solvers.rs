//! Solver convergence: every update rule trains the same small MLP to a
//! fraction of its initial loss.

use latte_core::{compile, OptLevel};
use latte_nn::models::{mlp, ModelConfig};
use latte_runtime::data::MemoryDataSource;
use latte_runtime::solver::{
    solve, AdaDelta, AdaGrad, LrPolicy, MomPolicy, RmsProp, Sgd, Solver, SolverParams,
};
use latte_runtime::Executor;

fn task() -> (Executor, MemoryDataSource) {
    let cfg = ModelConfig {
        batch: 8,
        input_size: 12,
        channel_div: 1,
        classes: 3,
        with_loss: true,
        seed: 4,
    };
    let compiled = compile(&mlp(&cfg, &[16]).net, &OptLevel::full()).unwrap();
    let exec = Executor::new(compiled).unwrap();
    let items: Vec<(Vec<f32>, f32)> = (0..64)
        .map(|i| {
            let class = i % 3;
            let x: Vec<f32> = (0..12)
                .map(|j| {
                    let base = if j % 3 == class { 1.0 } else { 0.1 };
                    base + ((i * 12 + j) % 7) as f32 * 0.01
                })
                .collect();
            (x, class as f32)
        })
        .collect();
    (exec, MemoryDataSource::try_new("data", "label", items, 8).unwrap())
}

fn check(solver: &mut dyn Solver, tag: &str) {
    let (mut exec, mut source) = task();
    let report = solve(solver, &mut exec, &mut source).unwrap();
    assert!(
        report.final_loss < report.initial_loss * 0.5,
        "{tag}: {report:?}"
    );
    assert!(report.final_loss.is_finite(), "{tag}: {report:?}");
}

fn params(lr: f32, epochs: usize) -> SolverParams {
    SolverParams {
        lr_policy: LrPolicy::Fixed { lr },
        mom_policy: MomPolicy::Fixed { mom: 0.9 },
        regu_coef: 1e-4,
        max_epoch: epochs,
    }
}

#[test]
fn sgd_converges() {
    check(&mut Sgd::new(params(0.1, 10)), "sgd");
}

#[test]
fn sgd_with_inv_policy_converges() {
    let mut p = params(0.0, 10);
    p.lr_policy = LrPolicy::Inv {
        base: 0.1,
        gamma: 1e-4,
        power: 0.75,
    };
    check(&mut Sgd::new(p), "sgd-inv");
}

#[test]
fn rmsprop_converges() {
    let mut p = params(0.005, 10);
    p.mom_policy = MomPolicy::None;
    check(&mut RmsProp::new(p, 0.9, 1e-6), "rmsprop");
}

#[test]
fn adagrad_converges() {
    let mut p = params(0.05, 10);
    p.mom_policy = MomPolicy::None;
    check(&mut AdaGrad::new(p, 1e-6), "adagrad");
}

#[test]
fn adadelta_converges() {
    let mut p = params(1.0, 25);
    p.mom_policy = MomPolicy::None;
    check(&mut AdaDelta::new(p, 0.95, 1e-6), "adadelta");
}

#[test]
fn solve_report_counts_iterations() {
    let (mut exec, mut source) = task();
    let mut sgd = Sgd::new(params(0.05, 2));
    let report = solve(&mut sgd, &mut exec, &mut source).unwrap();
    // 64 items / batch 8 = 8 iterations per epoch, two epochs.
    assert_eq!(report.iterations, 16);
}
