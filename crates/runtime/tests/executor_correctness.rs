//! End-to-end executor correctness: Latte-compiled programs must produce
//! the same numbers as direct tensor-library references, at every
//! optimization level, and gradients must pass finite-difference checks.

use latte_core::{compile, OptLevel};
use latte_nn::layers::{
    self, convolution, data, fully_connected, max_pool, relu, softmax_loss, ConvSpec,
};
use latte_nn::models::{lenet, mlp, ModelConfig};
use latte_core::dsl::Net;
use latte_runtime::{ExecConfig, Executor};
use latte_runtime::registry::KernelRegistry;
use latte_tensor::conv::{conv2d_batch_reference, maxpool2d, Conv2dParams};
use latte_tensor::Tensor;

fn seeded(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            ((h >> 8) % 1000) as f32 / 500.0 - 1.0
        })
        .collect()
}

fn all_opt_levels() -> Vec<(&'static str, OptLevel)> {
    vec![
        ("none", OptLevel::none()),
        ("parallel_only", OptLevel::parallel_only()),
        ("pattern", OptLevel::none().with_pattern_match(true)),
        ("pattern+tiling", OptLevel::none().with_pattern_match(true).with_tiling(true)),
        (
            "pattern+tiling+fusion",
            OptLevel::none()
                .with_pattern_match(true)
                .with_tiling(true)
                .with_fusion(true),
        ),
        ("full-no-shared", OptLevel::full().with_shared_buffers(false)),
        ("full-no-vectorize", OptLevel::full().with_vectorize(false)),
        ("full", OptLevel::full()),
    ]
}

/// FC forward equals a hand-rolled matrix multiply for every opt level.
#[test]
fn fc_forward_matches_reference() {
    let batch = 3;
    let (n_in, n_out) = (10, 7);
    for (tag, opt) in all_opt_levels() {
        let mut net = Net::new(batch);
        let d = data(&mut net, "data", vec![n_in]);
        fully_connected(&mut net, "fc1", d, n_out, 5);
        let compiled = compile(&net, &opt).unwrap();
        let weights = compiled
            .param_inits
            .iter()
            .find(|(n, _)| n == "fc1.weights")
            .unwrap()
            .1
            .clone();
        let mut exec = Executor::new(compiled).unwrap();
        let input = seeded(batch * n_in, 1);
        exec.set_input("data", &input).unwrap();
        exec.forward();
        let out = exec.read_buffer("fc1.value").unwrap();
        for item in 0..batch {
            for o in 0..n_out {
                let mut expect = 0.0; // zero bias
                for i in 0..n_in {
                    expect += input[item * n_in + i] * weights[o * n_in + i];
                }
                let got = out[item * n_out + o];
                assert!(
                    (got - expect).abs() < 1e-3,
                    "[{tag}] item {item} out {o}: {got} vs {expect}"
                );
            }
        }
    }
}

/// Convolution (+ReLU +pool) forward equals the direct-loop reference for
/// every opt level — this exercises staging copies, dimension dropping,
/// GEMM matching, tiling, and fusion.
#[test]
fn conv_relu_pool_forward_matches_reference() {
    let batch = 2;
    let (h, w, cin, cout) = (8, 8, 3, 4);
    let p = Conv2dParams {
        in_channels: cin,
        out_channels: cout,
        height: h,
        width: w,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    // Reference uses (c, y, x) layout; Latte uses (y, x, c). Build the
    // input in both layouts from the same logical values.
    let logical = |b: usize, c: usize, y: usize, x: usize| -> f32 {
        seeded(1, (b * 1000 + c * 100 + y * 10 + x) as u32)[0]
    };
    let mut input_cyx = Tensor::zeros(vec![batch, cin, h, w]);
    let mut input_yxc = vec![0.0f32; batch * h * w * cin];
    for b in 0..batch {
        for c in 0..cin {
            for y in 0..h {
                for x in 0..w {
                    let v = logical(b, c, y, x);
                    input_cyx[&[b, c, y, x][..]] = v;
                    input_yxc[((b * h + y) * w + x) * cin + c] = v;
                }
            }
        }
    }

    for (tag, opt) in all_opt_levels() {
        let mut net = Net::new(batch);
        let d = data(&mut net, "data", vec![h, w, cin]);
        let conv = convolution(&mut net, "conv1", d, ConvSpec::same(cout, 3), 9);
        let r = relu(&mut net, "relu1", conv);
        max_pool(&mut net, "pool1", r, 2, 2);
        let compiled = compile(&net, &opt).unwrap();

        // Translate Latte's SoA weights [cout, k*k*cin] (patch order
        // (ky, kx, c)) to the reference layout [cout, cin, ky, kx].
        let wsoa = compiled
            .param_inits
            .iter()
            .find(|(n, _)| n == "conv1.weights")
            .unwrap()
            .1
            .clone();
        let mut wref = Tensor::zeros(vec![cout, cin, 3, 3]);
        for oc in 0..cout {
            for ky in 0..3 {
                for kx in 0..3 {
                    for c in 0..cin {
                        let soa_idx = oc * 27 + (ky * 3 + kx) * cin + c;
                        wref[&[oc, c, ky, kx][..]] = wsoa[soa_idx];
                    }
                }
            }
        }

        let mut exec = Executor::new(compiled).unwrap();
        exec.set_input("data", &input_yxc).unwrap();
        exec.forward();

        let expected_conv = conv2d_batch_reference(&p, &input_cyx, &wref, &Tensor::zeros(vec![cout]));
        // Compare pooled output.
        let pool_p = Conv2dParams {
            in_channels: cout,
            out_channels: cout,
            height: h,
            width: w,
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        let got_pool = exec.read_buffer("pool1.value").unwrap();
        let (oh, ow) = (h / 2, w / 2);
        for b in 0..batch {
            // relu then pool on the reference, per channel plane.
            let mut relued = vec![0.0f32; cout * h * w];
            for c in 0..cout {
                for y in 0..h {
                    for x in 0..w {
                        relued[c * h * w + y * w + x] =
                            expected_conv.at(&[b, c, y, x]).max(0.0);
                    }
                }
            }
            let mut pooled = vec![0.0f32; cout * oh * ow];
            maxpool2d(&pool_p, &relued, &mut pooled, &mut []);
            for c in 0..cout {
                for y in 0..oh {
                    for x in 0..ow {
                        let expect = pooled[c * oh * ow + y * ow + x];
                        let got = got_pool[b * oh * ow * cout + (y * ow + x) * cout + c];
                        assert!(
                            (got - expect).abs() < 1e-3,
                            "[{tag}] b{b} c{c} y{y} x{x}: {got} vs {expect}"
                        );
                    }
                }
            }
        }
    }
}

/// Finite-difference gradient check through conv + relu + pool + fc +
/// softmax loss, at both extreme opt levels.
#[test]
fn gradients_pass_finite_difference_check() {
    for opt in [OptLevel::none(), OptLevel::full()] {
        let batch = 2;
        let mut net = Net::new(batch);
        let d = data(&mut net, "data", vec![6, 6, 2]);
        let label = data(&mut net, "label", vec![1]);
        let conv = convolution(&mut net, "conv1", d, ConvSpec::same(3, 3), 11);
        let r = relu(&mut net, "relu1", conv);
        let p = max_pool(&mut net, "pool1", r, 2, 2);
        let fc = fully_connected(&mut net, "fc1", p, 4, 12);
        softmax_loss(&mut net, "loss", fc, label);
        let compiled = compile(&net, &opt).unwrap();
        let mut exec = Executor::new(compiled).unwrap();

        let input = seeded(batch * 72, 21);
        exec.set_input("data", &input).unwrap();
        exec.set_input("label", &[1.0, 3.0]).unwrap();

        exec.forward();
        exec.backward();

        // Check a few weights of each parameter against central
        // differences of the mean loss (softmax_loss divides by batch, so
        // the summed per-item losses / batch is the differentiated value).
        for (param, grad_buf) in [
            ("conv1.weights", "conv1.g_weights"),
            ("fc1.weights", "fc1.g_weights"),
            ("fc1.bias", "fc1.g_bias"),
        ] {
            let grads = exec.read_buffer(grad_buf).unwrap();
            let values = exec.read_buffer(param).unwrap();
            let probe = [0, values.len() / 2, values.len() - 1];
            for &idx in &probe {
                let eps = 2e-3;
                let mut plus = values.clone();
                plus[idx] += eps;
                exec.write_buffer(param, &plus).unwrap();
                exec.forward();
                let lp = exec.loss();
                let mut minus = values.clone();
                minus[idx] -= eps;
                exec.write_buffer(param, &minus).unwrap();
                exec.forward();
                let lm = exec.loss();
                exec.write_buffer(param, &values).unwrap();
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[idx];
                assert!(
                    (numeric - analytic).abs() < 2e-2 * analytic.abs().max(0.3),
                    "{param}[{idx}]: numeric {numeric} vs analytic {analytic} ({opt:?})"
                );
            }
        }
    }
}

/// Training the Figure-7 MLP with plain SGD decreases the loss.
#[test]
fn mlp_training_decreases_loss() {
    let cfg = ModelConfig {
        batch: 8,
        input_size: 12,
        channel_div: 1,
        classes: 3,
        with_loss: true,
        seed: 3,
    };
    let model = mlp(&cfg, &[16]);
    let compiled = compile(&model.net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();

    // Deterministic, linearly-separable-ish synthetic task.
    let mut inputs = vec![0.0f32; 8 * 12];
    let mut labels = vec![0.0f32; 8];
    for item in 0..8 {
        let class = item % 3;
        labels[item] = class as f32;
        for j in 0..12 {
            inputs[item * 12 + j] = if j % 3 == class { 1.0 } else { 0.1 }
                + seeded(1, (item * 12 + j) as u32)[0] * 0.05;
        }
    }
    exec.set_input("data", &inputs).unwrap();
    exec.set_input("label", &labels).unwrap();
    exec.forward();
    let initial = exec.loss();
    for _ in 0..60 {
        exec.forward();
        exec.backward();
        exec.for_each_param_mut(|v, g, lr_mult| {
            for (vi, gi) in v.iter_mut().zip(g) {
                *vi -= 0.1 * lr_mult * gi;
            }
        });
    }
    exec.forward();
    let trained = exec.loss();
    assert!(
        trained < initial * 0.5,
        "loss {initial} -> {trained}: no learning"
    );
}

/// Parallel batch execution (2 threads) produces the same activations and
/// parameter gradients as sequential execution.
#[test]
fn parallel_execution_matches_sequential() {
    let cfg = ModelConfig {
        batch: 4,
        input_size: 12,
        channel_div: 8,
        classes: 4,
        with_loss: true,
        seed: 5,
    };
    let build = || {
        let m = lenet(&cfg);
        compile(&m.net, &OptLevel::full()).unwrap()
    };
    let registry = KernelRegistry::with_builtins();
    let mut seq =
        Executor::with_registry(build(), &registry, ExecConfig { threads: 1, ..ExecConfig::default() }).unwrap();
    let mut par =
        Executor::with_registry(build(), &registry, ExecConfig { threads: 2, ..ExecConfig::default() }).unwrap();

    let input = seeded(4 * 12 * 12, 77);
    let labels = [0.0f32, 1.0, 2.0, 3.0];
    for exec in [&mut seq, &mut par] {
        exec.set_input("data", &input).unwrap();
        exec.set_input("label", &labels).unwrap();
        exec.forward();
        exec.backward();
    }
    assert!((seq.loss() - par.loss()).abs() < 1e-5);
    for buf in ["conv1.g_weights", "ip2.g_weights", "ip1.g_bias"] {
        let a = seq.read_buffer(buf).unwrap();
        let b = par.read_buffer(buf).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4, "{buf}: {x} vs {y}");
        }
    }
}

/// Irregular (non-affine) mappings execute through the gather table and
/// reproduce the permutation in both directions.
#[test]
fn irregular_permutation_roundtrips() {
    use latte_core::dsl::{Ensemble, Mapping, SourceRange, SourceRegion};
    use latte_core::dsl::stdlib::identity_neuron;
    let n = 8;
    let perm = move |i: usize| (i * 3 + i * i) % n;
    let mut net = Net::new(2);
    let d = data(&mut net, "data", vec![n]);
    let shuf = net.add(Ensemble::new("shuffle", vec![n], identity_neuron()));
    net.connect(
        d,
        shuf,
        Mapping::new(move |idx| {
            SourceRegion::new(vec![SourceRange::single(perm(idx[0]) as isize)])
        }),
    );
    layers::l2_loss(&mut net, "loss", shuf, d);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let mut exec = Executor::new(compiled).unwrap();
    let input: Vec<f32> = (0..2 * n).map(|i| i as f32).collect();
    exec.set_input("data", &input).unwrap();
    exec.forward();
    let out = exec.read_buffer("shuffle.value").unwrap();
    for item in 0..2 {
        for i in 0..n {
            assert_eq!(out[item * n + i], input[item * n + perm(i)]);
        }
    }
}

/// The shared-buffer optimization reduces allocation (paper Section 5.2's
/// memory claim) without changing results.
#[test]
fn shared_buffers_reduce_memory() {
    let build = |shared: bool| {
        let mut net = Net::new(2);
        let d = data(&mut net, "data", vec![8, 8, 3]);
        convolution(&mut net, "conv1", d, ConvSpec::same(8, 3), 3);
        compile(&net, &OptLevel::full().with_shared_buffers(shared)).unwrap()
    };
    let with = Executor::new(build(true)).unwrap();
    let without = Executor::new(build(false)).unwrap();
    assert!(
        with.allocated_elements() < without.allocated_elements(),
        "{} !< {}",
        with.allocated_elements(),
        without.allocated_elements()
    );
}
