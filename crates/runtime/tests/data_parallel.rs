//! Data-parallel trainer behaviour: synchronized and lossy modes both
//! learn, and the lossy mode's lost updates do not change the outcome
//! (the Figure-20 claim, in miniature).

use latte_core::{compile, OptLevel};
use latte_nn::models::{mlp, ModelConfig};
use latte_runtime::data::{BatchSource, MemoryDataSource};
use latte_runtime::parallel::{DataParallelConfig, DataParallelTrainer, GradSync};

fn items(n: usize) -> Vec<(Vec<f32>, f32)> {
    (0..n)
        .map(|i| {
            let class = i % 3;
            let x: Vec<f32> = (0..9)
                .map(|j| if j % 3 == class { 1.0 } else { 0.05 + (i % 5) as f32 * 0.01 })
                .collect();
            (x, class as f32)
        })
        .collect()
}

fn train(workers: usize, sync: GradSync, epochs: usize) -> (f32, f32) {
    let cfg = ModelConfig {
        batch: 4,
        input_size: 9,
        channel_div: 1,
        classes: 3,
        with_loss: true,
        seed: 11,
    };
    let mut trainer = DataParallelTrainer::new(
        || compile(&mlp(&cfg, &[8]).net, &OptLevel::full()).unwrap(),
        DataParallelConfig {
            workers,
            sync,
            lr: 0.05,
            momentum: 0.9,
        },
    )
    .unwrap();
    let all = items(96);
    let mut sources: Vec<MemoryDataSource> = (0..workers)
        .map(|w| {
            let shard: Vec<_> = all.iter().skip(w).step_by(workers).cloned().collect();
            MemoryDataSource::try_new("data", "label", shard, 4).unwrap()
        })
        .collect();
    let mut last = f32::NAN;
    for _ in 0..epochs {
        for s in &mut sources {
            s.reset();
        }
        loop {
            let shards: Option<Vec<_>> =
                sources.iter_mut().map(|s| s.next_batch().unwrap()).collect();
            match shards {
                Some(shards) => last = trainer.step(&shards).unwrap(),
                None => break,
            }
        }
    }
    let acc = trainer.accuracy("data", "ip_out.value", &items(48)).unwrap();
    (last, acc)
}

#[test]
fn synchronized_multi_worker_learns() {
    let (loss, acc) = train(4, GradSync::Synchronized, 6);
    assert!(loss < 0.3, "loss {loss}");
    assert!(acc > 0.9, "accuracy {acc}");
}

#[test]
fn lossy_multi_worker_learns_equally_well() {
    let (_, acc_lossy) = train(4, GradSync::Lossy, 6);
    let (_, acc_sync) = train(4, GradSync::Synchronized, 6);
    assert!(
        (acc_lossy - acc_sync).abs() < 0.05,
        "lossy {acc_lossy} vs sync {acc_sync}"
    );
}

#[test]
fn single_worker_degenerates_to_plain_training() {
    let (loss, acc) = train(1, GradSync::Synchronized, 6);
    assert!(loss < 0.3, "loss {loss}");
    assert!(acc > 0.9, "accuracy {acc}");
}

#[test]
fn failing_worker_is_identified_by_index() {
    let cfg = ModelConfig {
        batch: 4,
        input_size: 9,
        channel_div: 1,
        classes: 3,
        with_loss: true,
        seed: 11,
    };
    let mut trainer = DataParallelTrainer::new(
        || compile(&mlp(&cfg, &[8]).net, &OptLevel::full()).unwrap(),
        DataParallelConfig {
            workers: 3,
            sync: GradSync::Synchronized,
            lr: 0.05,
            momentum: 0.9,
        },
    )
    .unwrap();
    let good: latte_runtime::data::Batch = vec![
        ("data".into(), vec![0.1; 4 * 9]),
        ("label".into(), vec![0.0; 4]),
    ];
    // Worker 2's shard names an ensemble that does not exist.
    let bad: latte_runtime::data::Batch = vec![("nonsense".into(), vec![0.0; 4])];
    let err = trainer
        .step(&[good.clone(), good.clone(), bad])
        .unwrap_err();
    match err {
        latte_runtime::RuntimeError::Worker { worker, source } => {
            assert_eq!(worker, 2);
            assert!(source.to_string().contains("nonsense"), "{source}");
        }
        other => panic!("expected a worker error, got {other:?}"),
    }
    // The trainer is still usable: a NaN loss would have been
    // indistinguishable from this failure under the old sentinel.
    let loss = trainer.step(&[good.clone(), good.clone(), good]).unwrap();
    assert!(loss.is_finite());
}
