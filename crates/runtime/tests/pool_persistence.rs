//! The worker pool is persistent: all threads an executor will ever use
//! are spawned at construction, and no amount of forward/backward/update
//! traffic spawns more. This file holds the single test that reads the
//! process-global spawn counter, so no sibling test in the same binary
//! can perturb it.

use latte_core::{compile, OptLevel};
use latte_nn::models::{mlp, ModelConfig};
use latte_runtime::pool::total_threads_spawned;
use latte_runtime::registry::KernelRegistry;
use latte_runtime::{ExecConfig, Executor};

fn seeded(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            ((h >> 8) % 1000) as f32 / 500.0 - 1.0
        })
        .collect()
}

#[test]
fn executor_never_spawns_threads_after_construction() {
    let cfg = ModelConfig {
        batch: 4,
        input_size: 48,
        ..ModelConfig::default()
    };
    let model = mlp(&cfg, &[32, 24]);
    let registry = KernelRegistry::with_builtins();

    // threads = 4 → exactly 3 spawned workers (the caller is worker 0),
    // all at construction time.
    let compiled = compile(&model.net, &OptLevel::full()).expect("compile");
    let before = total_threads_spawned();
    let mut exec = Executor::with_registry(
        compiled,
        &registry,
        ExecConfig {
            threads: 4,
            arena: false,
            gemm_blocking: None,
        },
    )
    .expect("lower");
    let after_build = total_threads_spawned();
    assert_eq!(
        after_build - before,
        3,
        "a 4-thread executor spawns exactly 3 workers at construction"
    );

    exec.set_input("data", &seeded(cfg.batch * cfg.input_size, 11))
        .expect("data");
    exec.set_input("label", &vec![0.0; cfg.batch]).expect("label");

    // Many full training iterations — kernel groups, batched GEMMs, and
    // parameter updates — must reuse the same workers.
    for _ in 0..12 {
        exec.forward();
        exec.backward();
        exec.for_each_param_mut(|value, grad, lr_mult| {
            for (v, g) in value.iter_mut().zip(grad) {
                *v -= 0.01 * lr_mult * g;
            }
        });
    }
    assert!(exec.loss().is_finite());
    assert_eq!(
        total_threads_spawned(),
        after_build,
        "iterating must not spawn any new threads"
    );

    // threads = 1 executors run inline and spawn nothing at all.
    let compiled = compile(&model.net, &OptLevel::full()).expect("compile");
    let before = total_threads_spawned();
    let mut exec1 = Executor::with_registry(
        compiled,
        &registry,
        ExecConfig {
            threads: 1,
            arena: false,
            gemm_blocking: None,
        },
    )
    .expect("lower");
    exec1
        .set_input("data", &seeded(cfg.batch * cfg.input_size, 11))
        .expect("data");
    exec1.set_input("label", &vec![0.0; cfg.batch]).expect("label");
    for _ in 0..3 {
        exec1.forward();
        exec1.backward();
    }
    assert_eq!(
        total_threads_spawned(),
        before,
        "a single-threaded executor never spawns"
    );
}
