//! Integration tests for the real communicator: ring all-reduce over the
//! in-process channel transport, fault injection through
//! `FaultyTransport`, ring healing, and the CRC negative control.

use std::sync::Arc;

use latte_runtime::error::RuntimeError;
use latte_runtime::fault::{Fault, FaultPlan, FaultRates, FaultyTransport};
use latte_runtime::metrics::FaultMetricsSnapshot;
use latte_runtime::ring::{reference_allreduce, BucketReport, CommPolicy, RingComm};
use latte_runtime::transport::{channel_group, channel_group_with, Endpoint, Transport, Wire};

/// A deadline policy tuned for loopback tests: fast enough that eviction
/// paths finish in tens of milliseconds, generous enough that healthy
/// exchanges never time out spuriously.
fn fast_policy() -> CommPolicy {
    CommPolicy {
        op_timeout_ms: 400,
        max_retries: 2,
        backoff_base_ms: 1.0,
        backoff_cap_ms: 5.0,
        jitter: 0.1,
        lossy_timeout_ms: 150,
        ..CommPolicy::default()
    }
}

/// A deliberately uneven gradient per rank; length 13 gives ragged
/// chunks for every world size used here.
fn grad_for(rank: usize) -> Vec<f32> {
    (0..13)
        .map(|i| (i as f32 + 1.0) * (rank as f32 + 1.0) + 0.25 * rank as f32)
        .collect()
}

struct RankRun {
    rank: usize,
    /// The gradient after the last successful all-reduce.
    merged: Vec<f32>,
    reports: Vec<Result<BucketReport, RuntimeError>>,
    metrics: FaultMetricsSnapshot,
}

impl RankRun {
    fn last_ok(&self) -> &BucketReport {
        self.reports
            .iter()
            .rev()
            .find_map(|r| r.as_ref().ok())
            .unwrap_or_else(|| panic!("rank {} has no successful bucket", self.rank))
    }
}

/// Runs `steps` all-reduces (step s, bucket 0) on every endpoint in its
/// own thread, each step starting from that rank's pristine gradient.
fn run_ring<W: Wire>(
    endpoints: Vec<Endpoint<W>>,
    policy: CommPolicy,
    steps: u32,
) -> Vec<RankRun> {
    let handles: Vec<_> = endpoints
        .into_iter()
        .enumerate()
        .map(|(rank, ep)| {
            let policy = policy.clone();
            std::thread::spawn(move || {
                let metrics = Arc::clone(ep.metrics());
                let mut ring = RingComm::new(Box::new(ep), policy).expect("valid policy");
                let grad = grad_for(rank);
                let mut merged = grad.clone();
                let mut reports = Vec::new();
                for s in 0..steps {
                    let mut g = grad.clone();
                    match ring.allreduce(s, 0, &mut g) {
                        Ok(r) => {
                            reports.push(Ok(r));
                            merged = g;
                        }
                        Err(e) => {
                            reports.push(Err(e));
                            break;
                        }
                    }
                }
                RankRun {
                    rank,
                    merged,
                    reports,
                    metrics: metrics.snapshot(),
                }
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank thread panicked"))
        .collect()
}

fn reference_over(ranks: &[usize]) -> Vec<f32> {
    let parts: Vec<Vec<f32>> = ranks.iter().map(|&r| grad_for(r)).collect();
    reference_allreduce(&parts)
}

#[test]
fn four_node_channel_allreduce_matches_reference() {
    let endpoints = channel_group(4).unwrap();
    let runs = run_ring(endpoints, fast_policy(), 1);
    let expect = reference_over(&[0, 1, 2, 3]);
    for run in &runs {
        assert_eq!(
            run.merged, expect,
            "rank {} must match the serial rotated fold bit-for-bit",
            run.rank
        );
        let rep = run.last_ok();
        assert_eq!(rep.live, 4);
        assert_eq!(rep.restarts, 0);
        assert!(rep.evicted.is_empty());
    }
    let reduced: u64 = runs.iter().map(|r| r.metrics.bytes_reduced).sum();
    assert!(reduced > 0, "reduce-scatter must account its bytes");
}

#[test]
fn corrupted_transfer_is_retried_then_exact() {
    // Rank 1's first reduce-scatter frame of (step 0, bucket 0) arrives
    // at rank 2 with a flipped payload; the CRC catches it, rank 2
    // requests a resend, and the retry (attempt 1, no fault entry) goes
    // through clean — the merged result must still be exact.
    let plan = FaultPlan::new(vec![Fault::TransferCorrupt {
        node: 1,
        iter: 0,
        layer: 0,
    }]);
    let endpoints = channel_group_with(4, |rank, wire| {
        FaultyTransport::new(rank, if rank == 1 { plan.clone() } else { FaultPlan::none() }, wire)
    })
    .unwrap();
    let runs = run_ring(endpoints, fast_policy(), 1);
    let expect = reference_over(&[0, 1, 2, 3]);
    for run in &runs {
        assert_eq!(run.merged, expect, "rank {} diverged", run.rank);
        assert!(run.last_ok().evicted.is_empty());
    }
    let corrupted: u64 = runs.iter().map(|r| r.metrics.transfers_corrupted).sum();
    let retries: u64 = runs.iter().map(|r| r.metrics.retries).sum();
    let resends: u64 = runs.iter().map(|r| r.metrics.send_retries).sum();
    assert!(corrupted >= 1, "the flipped frame must be counted");
    assert!(retries >= 1, "the receiver must have retried");
    assert!(resends >= 1, "the sender must have serviced a resend");
}

#[test]
fn corruption_beyond_budget_evicts_the_sender() {
    // Every retry of rank 1's targeted frame is corrupted too, so the
    // receiver's budget (max_retries = 2) runs out and rank 1 is evicted;
    // the survivors heal and finish lossy.
    let plan = FaultPlan::new(vec![
        Fault::TransferCorrupt { node: 1, iter: 0, layer: 0 };
        4
    ]);
    let endpoints = channel_group_with(4, |rank, wire| {
        FaultyTransport::new(rank, if rank == 1 { plan.clone() } else { FaultPlan::none() }, wire)
    })
    .unwrap();
    let runs = run_ring(endpoints, fast_policy(), 1);
    let expect = reference_over(&[0, 2, 3]);
    for run in &runs {
        if run.rank == 1 {
            continue; // the evicted rank may finish solo or error out
        }
        assert_eq!(run.merged, expect, "survivor {} diverged", run.rank);
        let rep = run.last_ok();
        assert_eq!(rep.live, 3);
        assert!(rep.restarts >= 1, "healing requires a bucket restart");
    }
    let evicted: u64 = runs.iter().map(|r| r.metrics.peers_evicted).sum();
    assert!(evicted >= 1, "rank 1 must be counted as evicted");
}

#[test]
fn dropped_transfer_times_out_and_resends() {
    let plan = FaultPlan::new(vec![Fault::TransferDrop {
        node: 2,
        iter: 0,
        layer: 0,
    }]);
    let mut policy = fast_policy();
    policy.op_timeout_ms = 150; // make the drop's timeout cheap
    let endpoints = channel_group_with(4, |rank, wire| {
        FaultyTransport::new(rank, if rank == 2 { plan.clone() } else { FaultPlan::none() }, wire)
    })
    .unwrap();
    let runs = run_ring(endpoints, policy, 1);
    let expect = reference_over(&[0, 1, 2, 3]);
    for run in &runs {
        assert_eq!(run.merged, expect, "rank {} diverged", run.rank);
    }
    let timeouts: u64 = runs.iter().map(|r| r.metrics.timeouts).sum();
    let resends: u64 = runs.iter().map(|r| r.metrics.send_retries).sum();
    assert!(timeouts >= 1, "the dropped frame must time out");
    assert!(resends >= 1, "the resend request must be serviced");
}

#[test]
fn node_crash_heals_the_ring_to_lossy() {
    let plan = FaultPlan::new(vec![Fault::NodeCrash { node: 3, iter: 0 }]);
    let endpoints = channel_group_with(4, |rank, wire| {
        FaultyTransport::new(rank, if rank == 3 { plan.clone() } else { FaultPlan::none() }, wire)
    })
    .unwrap();
    let runs = run_ring(endpoints, fast_policy(), 1);
    let expect = reference_over(&[0, 1, 2]);
    for run in runs.iter().filter(|r| r.rank != 3) {
        assert_eq!(run.merged, expect, "survivor {} diverged", run.rank);
        let rep = run.last_ok();
        assert_eq!(rep.live, 3);
        assert_eq!(
            rep.mode,
            latte_runtime::cluster::SyncMode::LossyDegraded,
            "a shrunken ring must degrade"
        );
    }
    let evicted: u64 = runs.iter().map(|r| r.metrics.peers_evicted).sum();
    let failed: u64 = runs.iter().map(|r| r.metrics.nodes_failed).sum();
    assert!(evicted >= 1);
    assert!(failed >= 1);
}

#[test]
fn two_node_ring_heals_to_solo() {
    let plan = FaultPlan::new(vec![Fault::NodeCrash { node: 1, iter: 0 }]);
    let endpoints = channel_group_with(2, |rank, wire| {
        FaultyTransport::new(rank, if rank == 1 { plan.clone() } else { FaultPlan::none() }, wire)
    })
    .unwrap();
    let runs = run_ring(endpoints, fast_policy(), 1);
    let survivor = &runs[0];
    // Solo all-reduce is the identity: the gradient comes back untouched.
    assert_eq!(survivor.merged, grad_for(0));
    let rep = survivor.last_ok();
    assert_eq!(rep.live, 1);
    assert_eq!(rep.mode, latte_runtime::cluster::SyncMode::LossyDegraded);
    assert!(rep.evicted.contains(&1));
    assert_eq!(survivor.metrics.peers_evicted, 1);
}

#[test]
fn two_simultaneous_nonadjacent_deaths_heal() {
    // Ranks 1 and 3 of a 4-ring die at once: the survivors 0 and 2 are
    // non-adjacent in the old ring and must re-form a 2-ring.
    let p1 = FaultPlan::new(vec![Fault::NodeCrash { node: 1, iter: 0 }]);
    let p3 = FaultPlan::new(vec![Fault::NodeCrash { node: 3, iter: 0 }]);
    let endpoints = channel_group_with(4, move |rank, wire| {
        let plan = match rank {
            1 => p1.clone(),
            3 => p3.clone(),
            _ => FaultPlan::none(),
        };
        FaultyTransport::new(rank, plan, wire)
    })
    .unwrap();
    let runs = run_ring(endpoints, fast_policy(), 1);
    let expect = reference_over(&[0, 2]);
    for run in runs.iter().filter(|r| r.rank == 0 || r.rank == 2) {
        assert_eq!(run.merged, expect, "survivor {} diverged", run.rank);
        assert_eq!(run.last_ok().live, 2);
    }
}

#[test]
fn mid_reduce_scatter_death_does_not_double_count() {
    // Rank 2 dies after sending exactly one reduce-scatter frame. Its
    // right neighbor has already folded that partial chunk; healing must
    // restart the bucket from pristine gradients, so the survivors'
    // result is *exactly* the mean over {0, 1, 3} — any double-count of
    // the folded partial would break bitwise equality.
    let endpoints = channel_group_with(4, |rank, wire| {
        let ft = FaultyTransport::new(rank, FaultPlan::none(), wire);
        if rank == 2 {
            ft.with_crash_after_sends(1)
        } else {
            ft
        }
    })
    .unwrap();
    let runs = run_ring(endpoints, fast_policy(), 1);
    let expect = reference_over(&[0, 1, 3]);
    for run in runs.iter().filter(|r| r.rank != 2) {
        assert_eq!(
            run.merged, expect,
            "survivor {} must not double-count the partial chunk",
            run.rank
        );
        assert!(run.last_ok().restarts >= 1);
    }
}

#[test]
fn straggler_is_flagged_by_the_ewma_detector() {
    // Rank 1 turns 30x slower from step 4 onward; its neighbor's EWMA
    // (armed after 3 clean receives) must flag it.
    let plan = FaultPlan::new(vec![Fault::Straggler {
        node: 1,
        from_iter: 4,
        to_iter: 100,
        factor: 30.0,
    }]);
    let endpoints = channel_group_with(2, |rank, wire| {
        FaultyTransport::new(rank, if rank == 1 { plan.clone() } else { FaultPlan::none() }, wire)
            .with_straggle_unit(std::time::Duration::from_millis(1))
    })
    .unwrap();
    let runs = run_ring(endpoints, fast_policy(), 8);
    let flags: u64 = runs.iter().map(|r| r.metrics.stragglers_detected).sum();
    assert!(flags >= 1, "the 30x slowdown must trip the EWMA detector");
    // Slow is not dead: nobody gets evicted for merely straggling.
    assert_eq!(runs.iter().map(|r| r.metrics.peers_evicted).sum::<u64>(), 0);
}

/// Randomized fault sweep, gated behind `LATTE_FAULT_SWEEP=1` (nightly
/// CI): random plans must never panic, deadlock, or leave the metrics
/// inconsistent with the outcome.
#[test]
fn randomized_transport_fault_sweep() {
    if std::env::var("LATTE_FAULT_SWEEP").is_err() {
        return;
    }
    let rates = FaultRates {
        crash: 0.05,
        ..FaultRates::default()
    };
    for seed in 0..6u64 {
        let world = 3 + (seed as usize % 2); // 3 or 4 nodes
        let plan = FaultPlan::random(seed, world, 3, 1, &rates);
        let endpoints = channel_group_with(world, |rank, wire| {
            FaultyTransport::new(rank, plan.clone(), wire)
                .with_straggle_unit(std::time::Duration::from_millis(1))
        })
        .unwrap();
        let runs = run_ring(endpoints, fast_policy(), 3);
        for run in &runs {
            for rep in run.reports.iter().flatten() {
                assert!(
                    rep.live >= 1 && rep.live <= world,
                    "seed {seed}: implausible live count {}",
                    rep.live
                );
                if !rep.evicted.is_empty() {
                    assert_eq!(
                        rep.mode,
                        latte_runtime::cluster::SyncMode::LossyDegraded,
                        "seed {seed}: eviction must degrade the ring"
                    );
                }
                for v in &run.merged {
                    assert!(v.is_finite(), "seed {seed}: non-finite merged gradient");
                }
            }
            let m = &run.metrics;
            if m.peers_evicted > 0 {
                assert!(
                    m.nodes_failed > 0 || m.timeouts > 0 || m.transfers_corrupted > 0,
                    "seed {seed}: evictions need a recorded cause"
                );
            }
        }
    }
}
