//! Dropout ensemble behaviour: fresh masks per pass, forward/backward
//! mask agreement, correct keep-scaling.

use latte_core::dsl::Net;
use latte_core::{compile, OptLevel};
use latte_nn::layers::{data, dropout, l2_loss};
use latte_runtime::Executor;

fn build(ratio: f64) -> Executor {
    let mut net = Net::new(2);
    let d = data(&mut net, "data", vec![256]);
    let dr = dropout(&mut net, "drop1", d, ratio, 7);
    let target = data(&mut net, "target", vec![256]);
    l2_loss(&mut net, "loss", dr, target);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    Executor::new(compiled).unwrap()
}

#[test]
fn forward_zeroes_roughly_ratio_and_scales_survivors() {
    let ratio = 0.5;
    let mut exec = build(ratio);
    let input = vec![1.0f32; 512];
    exec.set_input("data", &input).unwrap();
    exec.set_input("target", &vec![0.0; 512]).unwrap();
    exec.forward();
    let out = exec.read_buffer("drop1.value").unwrap();
    let zeros = out.iter().filter(|&&x| x == 0.0).count();
    let kept = out.iter().filter(|&&x| (x - 2.0).abs() < 1e-6).count();
    assert_eq!(zeros + kept, 512, "outputs are 0 or 1/(1-ratio)");
    let frac = zeros as f32 / 512.0;
    assert!((0.3..0.7).contains(&frac), "zero fraction {frac}");
}

#[test]
fn masks_differ_across_passes_but_match_state() {
    let mut exec = build(0.5);
    exec.set_input("data", &vec![1.0; 512]).unwrap();
    exec.set_input("target", &vec![0.0; 512]).unwrap();
    exec.forward();
    let out1 = exec.read_buffer("drop1.value").unwrap();
    let mask1 = exec.read_buffer("drop1.state_mask").unwrap();
    for (o, m) in out1.iter().zip(&mask1) {
        assert_eq!(*o, *m, "output equals mask for unit input");
    }
    exec.forward();
    let out2 = exec.read_buffer("drop1.value").unwrap();
    assert_ne!(out1, out2, "fresh mask per pass");
}

#[test]
fn backward_routes_through_recorded_mask() {
    let mut exec = build(0.5);
    exec.set_input("data", &vec![1.0; 512]).unwrap();
    exec.set_input("target", &vec![0.0; 512]).unwrap();
    exec.forward();
    let mask = exec.read_buffer("drop1.state_mask").unwrap();
    exec.backward();
    // l2 loss grad at the dropout output is out/batch = mask/2; dropout
    // backward multiplies by the mask again: data grad = mask²/2.
    let gin = exec.read_buffer("data.grad").unwrap();
    for (g, m) in gin.iter().zip(&mask) {
        let expect = m * m / 2.0;
        assert!((g - expect).abs() < 1e-5, "{g} vs {expect}");
    }
}

#[test]
fn items_get_independent_masks() {
    let mut exec = build(0.5);
    exec.set_input("data", &vec![1.0; 512]).unwrap();
    exec.set_input("target", &vec![0.0; 512]).unwrap();
    exec.forward();
    let mask = exec.read_buffer("drop1.state_mask").unwrap();
    let (a, b) = mask.split_at(256);
    assert_ne!(a, b, "per-item masks differ");
}
