//! Autotuner smoke tests: cold tune → warm reuse with **zero**
//! re-measurements (the `TraceCache`-style counter proof), cache
//! round-trip through a fresh tuner, and corrupt-cache rejection.

use latte_core::OptLevel;
use latte_nn::models::{mlp, ModelConfig};
use latte_runtime::tune::{TuneError, Tuner};

fn tmp_cache(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("latte_tune_{tag}_{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn small_model() -> latte_nn::models::Model {
    let cfg = ModelConfig {
        batch: 2,
        input_size: 24,
        ..ModelConfig::default()
    };
    mlp(&cfg, &[16, 8])
}

#[test]
fn cold_tune_measures_then_warm_reuse_measures_nothing() {
    let path = tmp_cache("warm");
    let model = small_model();
    let opt = OptLevel::full();

    // Cold: a measurement campaign runs and the winner is persisted.
    let mut tuner = Tuner::with_path(&path, 1).expect("open empty cache");
    assert!(tuner.is_empty());
    let (cold_schedule, cold_net) = tuner.tune_net(&model.net, &opt).expect("cold tune");
    let cold = tuner.stats();
    assert_eq!(cold.cache_misses, 1);
    assert_eq!(cold.cache_hits, 0);
    assert!(cold.measurements > 0, "a cold tune must measure candidates");
    assert_eq!(tuner.len(), 1);
    assert!(path.exists(), "winner must be persisted");

    // Warm, same tuner: answered from memory, counter flat.
    let (warm_schedule, _) = tuner.tune_net(&model.net, &opt).expect("warm tune");
    let warm = tuner.stats();
    assert_eq!(warm.cache_hits, 1);
    assert_eq!(warm.cache_misses, 1);
    assert_eq!(
        warm.measurements, cold.measurements,
        "a cache hit must perform zero re-measurements"
    );
    assert_eq!(warm_schedule, cold_schedule);

    // Warm, fresh tuner on the same file (a new process): still zero
    // measurements, and the replayed schedule compiles to the same
    // program.
    let mut fresh = Tuner::with_path(&path, 1).expect("reopen cache");
    assert_eq!(fresh.len(), 1);
    let (replayed, replayed_net) = fresh.tune_net(&model.net, &opt).expect("replay tune");
    let stats = fresh.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 0);
    assert_eq!(stats.measurements, 0, "on-disk replay must not measure");
    assert_eq!(replayed, cold_schedule);
    assert_eq!(replayed_net.fingerprint(), cold_net.fingerprint());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn tuned_executor_is_bit_identical_to_default() {
    let path = tmp_cache("bits");
    let model = small_model();
    let opt = OptLevel::full();
    let mut tuner = Tuner::with_path(&path, 1).expect("open cache");
    let (schedule, tuned_net) = tuner.tune_net(&model.net, &opt).expect("tune");

    let input: Vec<f32> = (0..2 * 24)
        .map(|i| ((i as u32).wrapping_mul(2654435761) % 1000) as f32 / 500.0 - 1.0)
        .collect();
    let labels = [0.0f32, 1.0];

    let mut tuned = tuner.executor_for(tuned_net, &schedule).expect("tuned executor");
    tuned.set_input("data", &input).expect("data");
    tuned.set_input("label", &labels).expect("label");
    tuned.forward();
    tuned.backward();

    let default_net = latte_core::compile(&model.net, &opt).expect("compile");
    let mut default = latte_runtime::Executor::new(default_net).expect("default executor");
    default.set_input("data", &input).expect("data");
    default.set_input("label", &labels).expect("label");
    default.forward();
    default.backward();

    for buf in ["ip1.value", "ip_out.value", "ip1.g_weights"] {
        let a = tuned.read_buffer(buf).expect("tuned read");
        let b = default.read_buffer(buf).expect("default read");
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{buf}[{i}]");
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn gemm_tuning_caches_per_shape() {
    let path = tmp_cache("gemm");
    let mut tuner = Tuner::with_path(&path, 1).expect("open cache");
    let b1 = tuner.tune_gemm(64, 64, 64).expect("cold gemm tune");
    let cold = tuner.stats();
    assert_eq!(cold.cache_misses, 1);
    assert!(cold.measurements > 0);
    // kc is pinned to the default: tuning never reassociates the k-sum.
    assert_eq!(b1.0, 256);

    let b2 = tuner.tune_gemm(64, 64, 64).expect("warm gemm tune");
    assert_eq!(b1, b2);
    let warm = tuner.stats();
    assert_eq!(warm.cache_hits, 1);
    assert_eq!(warm.measurements, cold.measurements, "warm hit measures nothing");

    // A different shape is a different key.
    let _ = tuner.tune_gemm(32, 96, 16).expect("second shape");
    assert_eq!(tuner.stats().cache_misses, 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_cache_file_is_rejected() {
    let path = tmp_cache("corrupt");
    let model = small_model();
    let mut tuner = Tuner::with_path(&path, 1).expect("open cache");
    tuner.tune_net(&model.net, &OptLevel::full()).expect("tune");
    drop(tuner);

    // Flip a byte in the persisted file: reopening must refuse, not
    // silently start over with an empty cache.
    let mut bytes = std::fs::read(&path).expect("read cache");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).expect("write corrupted");
    match Tuner::with_path(&path, 1) {
        Err(TuneError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // Garbage from byte 0 is rejected too.
    std::fs::write(&path, b"not a tuning cache").expect("write garbage");
    assert!(matches!(Tuner::with_path(&path, 1), Err(TuneError::Corrupt { .. })));
    let _ = std::fs::remove_file(&path);
}
