//! Property-based tests for the tensor substrate.

use latte_tensor::conv::{
    col2im, conv2d_reference, im2col, maxpool2d, Conv2dParams,
};
use latte_tensor::gemm::{gemm_naive, Gemm, Transpose, MR, NR};
use latte_tensor::Shape;
use proptest::prelude::*;

fn transpose() -> impl Strategy<Value = Transpose> {
    prop_oneof![Just(Transpose::No), Just(Transpose::Yes)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked GEMM agrees with the naive reference for arbitrary shapes,
    /// transposes, and blockings.
    #[test]
    fn blocked_gemm_matches_naive(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..20,
        ta in transpose(),
        tb in transpose(),
        kc in 1usize..8,
        nc_mul in 1usize..4,
        mc_mul in 1usize..4,
        seed in 0u32..1000,
    ) {
        let (nc, mc) = (nc_mul * NR, mc_mul * MR);
        let fill = |len: usize, salt: u32| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = (i as u32)
                        .wrapping_mul(2654435761)
                        .wrapping_add(seed)
                        .wrapping_add(salt);
                    (h % 19) as f32 - 9.0
                })
                .collect()
        };
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut c_ref = fill(m * n, 3);
        let mut c_blk = c_ref.clone();
        gemm_naive(ta, tb, m, n, k, &a, &b, &mut c_ref);
        Gemm::with_blocking(kc, nc, mc)
            .expect("aligned blocking")
            .compute(ta, tb, m, n, k, &a, &b, &mut c_blk);
        for (r, o) in c_ref.iter().zip(&c_blk) {
            prop_assert!((r - o).abs() <= 1e-2 * r.abs().max(1.0), "{} vs {}", r, o);
        }
    }

    /// `<im2col(x), y> == <x, col2im(y)>`: col2im is the adjoint of im2col.
    #[test]
    fn col2im_adjoint_of_im2col(
        c in 1usize..3,
        h in 3usize..8,
        w in 3usize..8,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u32..1000,
    ) {
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let p = Conv2dParams {
            in_channels: c, out_channels: 1,
            height: h, width: w, kernel, stride, pad,
        };
        let fill = |len: usize, salt: u32| -> Vec<f32> {
            (0..len)
                .map(|i| ((i as u32).wrapping_mul(97).wrapping_add(seed + salt) % 13) as f32 - 6.0)
                .collect()
        };
        let x = fill(c * h * w, 0);
        let y = fill(p.patch_len() * p.out_plane(), 7);
        let mut cols = vec![0.0; y.len()];
        im2col(&p, &x, &mut cols);
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut img = vec![0.0; x.len()];
        col2im(&p, &y, &mut img);
        let rhs: f32 = x.iter().zip(&img).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * lhs.abs().max(1.0));
    }

    /// Convolution lowered through im2col + GEMM equals the direct loop for
    /// arbitrary parameters — the identity Latte's synthesis + pattern
    /// matching relies on.
    #[test]
    fn lowered_conv_equals_direct(
        ic in 1usize..3,
        oc in 1usize..4,
        h in 3usize..8,
        w in 3usize..8,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u32..1000,
    ) {
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let p = Conv2dParams {
            in_channels: ic, out_channels: oc,
            height: h, width: w, kernel, stride, pad,
        };
        let fill = |len: usize, salt: u32| -> Vec<f32> {
            (0..len)
                .map(|i| ((i as u32).wrapping_mul(31).wrapping_add(seed + salt) % 9) as f32 - 4.0)
                .collect()
        };
        let input = fill(ic * h * w, 0);
        let weights = fill(oc * p.patch_len(), 5);
        let mut direct = vec![0.0; oc * p.out_plane()];
        conv2d_reference(&p, &input, &weights, &[], &mut direct);
        let mut cols = vec![0.0; p.patch_len() * p.out_plane()];
        im2col(&p, &input, &mut cols);
        let mut lowered = vec![0.0; direct.len()];
        Gemm::new().compute(
            Transpose::No, Transpose::No,
            oc, p.out_plane(), p.patch_len(),
            &weights, &cols, &mut lowered,
        );
        for (a, b) in direct.iter().zip(&lowered) {
            prop_assert!((a - b).abs() <= 1e-2 * a.abs().max(1.0), "{} vs {}", a, b);
        }
    }

    /// Max pooling output is the max of its window and argmax points at it.
    #[test]
    fn maxpool_invariants(
        c in 1usize..3,
        h in 2usize..8,
        w in 2usize..8,
        kernel in 1usize..4,
        stride in 1usize..3,
        seed in 0u32..1000,
    ) {
        prop_assume!(h >= kernel && w >= kernel);
        let p = Conv2dParams {
            in_channels: c, out_channels: c,
            height: h, width: w, kernel, stride, pad: 0,
        };
        let input: Vec<f32> = (0..c * h * w)
            .map(|i| ((i as u32).wrapping_mul(1103515245).wrapping_add(seed) % 101) as f32)
            .collect();
        let mut out = vec![0.0; c * p.out_plane()];
        let mut arg = vec![0usize; out.len()];
        maxpool2d(&p, &input, &mut out, &mut arg);
        for (o, &a) in out.iter().zip(&arg) {
            prop_assert_eq!(*o, input[a]);
        }
        // Every output is >= every element of its own window.
        let (oh, ow) = (p.out_height(), p.out_width());
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let o = out[ch * oh * ow + oy * ow + ox];
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = oy * stride + ky;
                            let ix = ox * stride + kx;
                            if iy < h && ix < w {
                                prop_assert!(o >= input[ch * h * w + iy * w + ix]);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Flat offsets and multi-dimensional indices are mutually inverse.
    #[test]
    fn shape_offset_unravel_roundtrip(dims in proptest::collection::vec(1usize..6, 1..4)) {
        let s = Shape::new(dims);
        for flat in 0..s.len() {
            let idx = s.unravel(flat);
            prop_assert_eq!(s.offset(&idx), flat);
        }
    }
}
