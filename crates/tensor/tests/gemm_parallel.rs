//! Property tests for [`Gemm::compute_parallel`]: correctness against the
//! naive reference over odd shapes, transposes, and block sizes, and
//! bit-identity of the macro-tile partitioning across worker counts.
//!
//! The pool here is a deterministic in-process fake that invokes the job
//! for every worker id sequentially — partitioning correctness does not
//! depend on actual concurrency (real-thread coverage lives with the
//! runtime's `WorkerPool`, which implements the same trait).

use std::cell::RefCell;

use latte_tensor::gemm::{gemm_naive, Gemm, GemmPool, Transpose, MR, NR};
use proptest::prelude::*;

/// A sequential stand-in pool: `threads` worker slots, each with its own
/// engine (sharing one blocking, as the trait contract requires).
struct FakePool {
    engines: RefCell<Vec<Gemm>>,
}

impl FakePool {
    fn new(threads: usize) -> Self {
        FakePool {
            engines: RefCell::new((0..threads).map(|_| Gemm::new()).collect()),
        }
    }

    fn with_blocking(threads: usize, kc: usize, nc: usize, mc: usize) -> Self {
        FakePool {
            engines: RefCell::new(
                (0..threads)
                    .map(|_| Gemm::with_blocking(kc, nc, mc).expect("aligned blocking"))
                    .collect(),
            ),
        }
    }
}

impl GemmPool for FakePool {
    fn threads(&self) -> usize {
        self.engines.borrow().len()
    }

    fn run_gemm(&self, job: &(dyn Fn(usize, &mut Gemm) + Sync)) {
        let mut engines = self.engines.borrow_mut();
        for (tid, eng) in engines.iter_mut().enumerate() {
            job(tid, eng);
        }
    }
}

fn transpose() -> impl Strategy<Value = Transpose> {
    prop_oneof![Just(Transpose::No), Just(Transpose::Yes)]
}

fn fill(len: usize, seed: u32, salt: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(seed)
                .wrapping_add(salt);
            (h % 19) as f32 - 9.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Small odd shapes with arbitrary transposes and blockings dispatch
    /// through the serial path of `compute_parallel` and must match the
    /// naive reference.
    #[test]
    fn parallel_entry_matches_naive_small(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..24,
        ta in transpose(),
        tb in transpose(),
        kc in 1usize..8,
        nc_mul in 1usize..4,
        mc_mul in 1usize..4,
        threads in 1usize..5,
        seed in 0u32..1000,
    ) {
        let (nc, mc) = (nc_mul * NR, mc_mul * MR);
        let a = fill(m * k, seed, 1);
        let b = fill(k * n, seed, 2);
        let mut c_ref = fill(m * n, seed, 3);
        let mut c_par = c_ref.clone();
        gemm_naive(ta, tb, m, n, k, &a, &b, &mut c_ref);
        let pool = FakePool::with_blocking(threads, kc, nc, mc);
        Gemm::compute_parallel(&pool, ta, tb, m, n, k, &a, &b, &mut c_par);
        for (r, o) in c_ref.iter().zip(&c_par) {
            prop_assert!((r - o).abs() <= 1e-2 * r.abs().max(1.0), "{} vs {}", r, o);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Shapes above the parallel-dispatch threshold, partitioned across
    /// several workers, still match the naive reference under transposes.
    #[test]
    fn parallel_partitioning_matches_naive(
        m in 64usize..90,
        n in 64usize..90,
        k in 64usize..90,
        ta in transpose(),
        tb in transpose(),
        threads in 2usize..6,
        seed in 0u32..1000,
    ) {
        let a = fill(m * k, seed, 1);
        let b = fill(k * n, seed, 2);
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_par = c_ref.clone();
        gemm_naive(ta, tb, m, n, k, &a, &b, &mut c_ref);
        let pool = FakePool::new(threads);
        Gemm::compute_parallel(&pool, ta, tb, m, n, k, &a, &b, &mut c_par);
        for (r, o) in c_ref.iter().zip(&c_par) {
            prop_assert!((r - o).abs() <= 2e-2 * r.abs().max(1.0), "{} vs {}", r, o);
        }
    }

    /// The partitioned result is BIT-identical for every worker count —
    /// the property the executor's thread-count determinism rests on.
    #[test]
    fn parallel_bit_identical_across_worker_counts(
        m in 64usize..90,
        n in 64usize..90,
        k in 64usize..90,
        tb in transpose(),
        threads in 2usize..9,
        seed in 0u32..1000,
    ) {
        let a = fill(m * k, seed, 1);
        let b = fill(k * n, seed, 2);
        let mut c_one = vec![0.0f32; m * n];
        let mut c_many = c_one.clone();
        Gemm::compute_parallel(
            &FakePool::new(1), Transpose::No, tb, m, n, k, &a, &b, &mut c_one,
        );
        Gemm::compute_parallel(
            &FakePool::new(threads), Transpose::No, tb, m, n, k, &a, &b, &mut c_many,
        );
        for (i, (x, y)) in c_one.iter().zip(&c_many).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "elem {} with {} workers", i, threads);
        }
    }
}
