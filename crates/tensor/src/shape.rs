//! Shapes and row-major index arithmetic for dense tensors.

use std::fmt;

/// The shape of a dense, row-major tensor.
///
/// A `Shape` records the extent of each dimension. Strides are always the
/// contiguous row-major strides for those extents; Latte's compiler reasons
/// about buffer sharing at a higher level (dimension *dropping*) rather than
/// through general strided views, so keeping shapes contiguous keeps every
/// downstream kernel simple and fast.
///
/// # Examples
///
/// ```
/// use latte_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), &[12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
    strides: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// A zero-dimensional shape (`vec![]`) describes a scalar with one
    /// element.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape extents must be non-zero, got {dims:?}"
        );
        let strides = contiguous_strides(&dims);
        Shape { dims, strides }
    }

    /// The extents of each dimension.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The row-major strides of each dimension.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// The number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds no... never: shapes always hold at least one
    /// element, so this is always `false`. Provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// The linear (flat) offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} of extent {d}");
            off += i * self.strides[axis];
        }
        off
    }

    /// The multi-dimensional index corresponding to a flat offset.
    ///
    /// Inverse of [`Shape::offset`] for contiguous shapes.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= self.len()`.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        assert!(offset < self.len(), "offset {offset} out of bounds");
        let mut index = vec![0; self.dims.len()];
        for (slot, &stride) in index.iter_mut().zip(&self.strides) {
            *slot = offset / stride;
            offset %= stride;
        }
        index
    }

    /// Returns a shape with dimension `axis` removed.
    ///
    /// This is the shape-level counterpart of Latte's *dimension dropping*:
    /// when shared-variable analysis proves that all neurons along an axis
    /// consume identical values, the buffer for that axis collapses.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn drop_axis(&self, axis: usize) -> Shape {
        assert!(axis < self.rank(), "axis {axis} out of range");
        let mut dims = self.dims.clone();
        dims.remove(axis);
        Shape::new(dims)
    }

    /// Iterates over every multi-dimensional index in row-major order.
    pub fn indices(&self) -> Indices<'_> {
        Indices {
            shape: self,
            next: Some(vec![0; self.dims.len()]),
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

/// Iterator over all indices of a [`Shape`] in row-major order.
///
/// Produced by [`Shape::indices`].
#[derive(Debug)]
pub struct Indices<'a> {
    shape: &'a Shape,
    next: Option<Vec<usize>>,
}

impl Iterator for Indices<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.take()?;
        let mut succ = current.clone();
        let mut axis = self.shape.rank();
        loop {
            if axis == 0 {
                self.next = None;
                break;
            }
            axis -= 1;
            succ[axis] += 1;
            if succ[axis] < self.shape.dims[axis] {
                self.next = Some(succ);
                break;
            }
            succ[axis] = 0;
        }
        Some(current)
    }
}

fn contiguous_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1; dims.len()];
    for axis in (0..dims.len().saturating_sub(1)).rev() {
        strides[axis] = strides[axis + 1] * dims[axis + 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), &[12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn offset_and_unravel_roundtrip() {
        let s = Shape::new(vec![3, 5, 7]);
        for flat in 0..s.len() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx), flat);
        }
    }

    #[test]
    fn indices_cover_all_in_order() {
        let s = Shape::new(vec![2, 3]);
        let all: Vec<Vec<usize>> = s.indices().collect();
        assert_eq!(
            all,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn drop_axis_collapses_dimension() {
        let s = Shape::new(vec![4, 5, 6]);
        assert_eq!(s.drop_axis(1).dims(), &[4, 6]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_checks_bounds() {
        Shape::new(vec![2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_extent_rejected() {
        Shape::new(vec![2, 0]);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(vec![3, 224, 224]).to_string(), "3x224x224");
    }
}
