//! Convolution and pooling primitives: im2col/col2im, a direct-loop
//! convolution used as the correctness oracle, and max/mean pooling.
//!
//! Layout convention throughout the workspace: a single image is `C x H x W`
//! row-major (channel outermost); batches store images contiguously.

use crate::tensor::Tensor;

/// Static parameters of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dParams {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (filters). Ignored by pooling.
    pub out_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub pad: usize,
}

impl Conv2dParams {
    /// Output height after the window sweep.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the padded input.
    pub fn out_height(&self) -> usize {
        out_extent(self.height, self.kernel, self.stride, self.pad)
    }

    /// Output width after the window sweep.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the padded input.
    pub fn out_width(&self) -> usize {
        out_extent(self.width, self.kernel, self.stride, self.pad)
    }

    /// Number of elements in one output channel plane.
    pub fn out_plane(&self) -> usize {
        self.out_height() * self.out_width()
    }

    /// `in_channels * kernel * kernel`, the patch length of im2col.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

fn out_extent(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(kernel > 0 && stride > 0, "kernel and stride must be non-zero");
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "window of extent {kernel} does not fit input of padded extent {padded}"
    );
    (padded - kernel) / stride + 1
}

/// Unfolds image patches into a `patch_len x (out_h * out_w)` column matrix.
///
/// `input` is one `C x H x W` image; `cols` must have length
/// `p.patch_len() * p.out_plane()`. Out-of-bounds (padding) taps contribute
/// zero. This is the classic lowering used by Caffe-style convolution; in
/// Latte the equivalent data movement is *synthesized* from the connection
/// structure (see `latte-core::synth`), and this routine doubles as its test
/// oracle.
///
/// # Panics
///
/// Panics if the slice lengths do not match `p`.
pub fn im2col(p: &Conv2dParams, input: &[f32], cols: &mut [f32]) {
    assert_eq!(
        input.len(),
        p.in_channels * p.height * p.width,
        "input length mismatch"
    );
    assert_eq!(
        cols.len(),
        p.patch_len() * p.out_plane(),
        "cols length mismatch"
    );
    let (oh, ow) = (p.out_height(), p.out_width());
    let plane = oh * ow;
    let mut row = 0;
    for c in 0..p.in_channels {
        for ky in 0..p.kernel {
            for kx in 0..p.kernel {
                let base = row * plane;
                row += 1;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                        let v = if iy >= 0
                            && iy < p.height as isize
                            && ix >= 0
                            && ix < p.width as isize
                        {
                            input[c * p.height * p.width + iy as usize * p.width + ix as usize]
                        } else {
                            0.0
                        };
                        cols[base + oy * ow + ox] = v;
                    }
                }
            }
        }
    }
}

/// Folds a column matrix back into an image, accumulating overlapping taps.
///
/// Adjoint of [`im2col`]; used by the baselines' convolution backward pass to
/// scatter input gradients. `image` is accumulated into (callers zero it
/// first when appropriate).
///
/// # Panics
///
/// Panics if the slice lengths do not match `p`.
pub fn col2im(p: &Conv2dParams, cols: &[f32], image: &mut [f32]) {
    assert_eq!(
        image.len(),
        p.in_channels * p.height * p.width,
        "image length mismatch"
    );
    assert_eq!(
        cols.len(),
        p.patch_len() * p.out_plane(),
        "cols length mismatch"
    );
    let (oh, ow) = (p.out_height(), p.out_width());
    let plane = oh * ow;
    let mut row = 0;
    for c in 0..p.in_channels {
        for ky in 0..p.kernel {
            for kx in 0..p.kernel {
                let base = row * plane;
                row += 1;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                    if iy < 0 || iy >= p.height as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                        if ix < 0 || ix >= p.width as isize {
                            continue;
                        }
                        image[c * p.height * p.width + iy as usize * p.width + ix as usize] +=
                            cols[base + oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Direct-loop 2-D convolution over one image: the correctness oracle.
///
/// `weights` is `out_c x in_c x k x k`, `bias` is `out_c` (pass an empty
/// slice to skip bias), `output` is `out_c x out_h x out_w` and is
/// overwritten.
///
/// # Panics
///
/// Panics if the slice lengths do not match `p`.
pub fn conv2d_reference(
    p: &Conv2dParams,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    output: &mut [f32],
) {
    assert_eq!(weights.len(), p.out_channels * p.patch_len(), "weights length");
    assert!(bias.is_empty() || bias.len() == p.out_channels, "bias length");
    let (oh, ow) = (p.out_height(), p.out_width());
    assert_eq!(output.len(), p.out_channels * oh * ow, "output length");
    for oc in 0..p.out_channels {
        let b = if bias.is_empty() { 0.0 } else { bias[oc] };
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b;
                for ic in 0..p.in_channels {
                    for ky in 0..p.kernel {
                        let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                        if iy < 0 || iy >= p.height as isize {
                            continue;
                        }
                        for kx in 0..p.kernel {
                            let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                            if ix < 0 || ix >= p.width as isize {
                                continue;
                            }
                            acc += input
                                [ic * p.height * p.width + iy as usize * p.width + ix as usize]
                                * weights[oc * p.patch_len()
                                    + ic * p.kernel * p.kernel
                                    + ky * p.kernel
                                    + kx];
                        }
                    }
                }
                output[oc * oh * ow + oy * ow + ox] = acc;
            }
        }
    }
}

/// Max pooling over one `C x H x W` image.
///
/// Writes the pooled values to `output` (`C x out_h x out_w`) and, when
/// `argmax` is non-empty, the flat input offset of each selected element —
/// needed by the backward pass.
///
/// # Panics
///
/// Panics if the slice lengths do not match `p` (with
/// `p.out_channels == p.in_channels`).
pub fn maxpool2d(
    p: &Conv2dParams,
    input: &[f32],
    output: &mut [f32],
    argmax: &mut [usize],
) {
    let (oh, ow) = (p.out_height(), p.out_width());
    assert_eq!(input.len(), p.in_channels * p.height * p.width);
    assert_eq!(output.len(), p.in_channels * oh * ow);
    assert!(argmax.is_empty() || argmax.len() == output.len());
    for c in 0..p.in_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_off = 0;
                for ky in 0..p.kernel {
                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                    if iy < 0 || iy >= p.height as isize {
                        continue;
                    }
                    for kx in 0..p.kernel {
                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                        if ix < 0 || ix >= p.width as isize {
                            continue;
                        }
                        let off = c * p.height * p.width + iy as usize * p.width + ix as usize;
                        if input[off] > best {
                            best = input[off];
                            best_off = off;
                        }
                    }
                }
                let o = c * oh * ow + oy * ow + ox;
                output[o] = best;
                if !argmax.is_empty() {
                    argmax[o] = best_off;
                }
            }
        }
    }
}

/// Mean pooling over one `C x H x W` image (padding taps count as zero and
/// the divisor is the full window size, matching Caffe's default).
///
/// # Panics
///
/// Panics if the slice lengths do not match `p`.
pub fn meanpool2d(p: &Conv2dParams, input: &[f32], output: &mut [f32]) {
    let (oh, ow) = (p.out_height(), p.out_width());
    assert_eq!(input.len(), p.in_channels * p.height * p.width);
    assert_eq!(output.len(), p.in_channels * oh * ow);
    let denom = (p.kernel * p.kernel) as f32;
    for c in 0..p.in_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for ky in 0..p.kernel {
                    let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                    if iy < 0 || iy >= p.height as isize {
                        continue;
                    }
                    for kx in 0..p.kernel {
                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                        if ix < 0 || ix >= p.width as isize {
                            continue;
                        }
                        acc += input[c * p.height * p.width + iy as usize * p.width + ix as usize];
                    }
                }
                output[c * oh * ow + oy * ow + ox] = acc / denom;
            }
        }
    }
}

/// Convenience wrapper running [`conv2d_reference`] over a batch [`Tensor`].
///
/// `input` is `N x C x H x W`; returns `N x out_c x out_h x out_w`.
///
/// # Panics
///
/// Panics if tensor shapes do not match `p`.
pub fn conv2d_batch_reference(
    p: &Conv2dParams,
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
) -> Tensor {
    let n = input.shape().dim(0);
    let (oh, ow) = (p.out_height(), p.out_width());
    let mut out = Tensor::zeros(vec![n, p.out_channels, oh, ow]);
    let in_sz = p.in_channels * p.height * p.width;
    let out_sz = p.out_channels * oh * ow;
    for i in 0..n {
        conv2d_reference(
            p,
            &input.as_slice()[i * in_sz..(i + 1) * in_sz],
            weights.as_slice(),
            bias.as_slice(),
            &mut out.as_mut_slice()[i * out_sz..(i + 1) * out_sz],
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_naive, Transpose};

    fn params() -> Conv2dParams {
        Conv2dParams {
            in_channels: 2,
            out_channels: 3,
            height: 5,
            width: 5,
            kernel: 3,
            stride: 1,
            pad: 1,
        }
    }

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i % 13) as f32 - 6.0).collect()
    }

    #[test]
    fn out_extent_formulas() {
        let p = params();
        assert_eq!(p.out_height(), 5);
        assert_eq!(p.out_width(), 5);
        let p2 = Conv2dParams { kernel: 2, stride: 2, pad: 0, ..p };
        assert_eq!(p2.out_height(), 2); // floor((5-2)/2)+1
    }

    #[test]
    fn im2col_gemm_matches_direct_conv() {
        let p = params();
        let input = ramp(p.in_channels * p.height * p.width);
        let weights = ramp(p.out_channels * p.patch_len());
        let mut direct = vec![0.0; p.out_channels * p.out_plane()];
        conv2d_reference(&p, &input, &weights, &[], &mut direct);

        let mut cols = vec![0.0; p.patch_len() * p.out_plane()];
        im2col(&p, &input, &mut cols);
        let mut via_gemm = vec![0.0; p.out_channels * p.out_plane()];
        gemm_naive(
            Transpose::No,
            Transpose::No,
            p.out_channels,
            p.out_plane(),
            p.patch_len(),
            &weights,
            &cols,
            &mut via_gemm,
        );
        for (a, b) in direct.iter().zip(&via_gemm) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let p = params();
        let x = ramp(p.in_channels * p.height * p.width);
        let y: Vec<f32> = (0..p.patch_len() * p.out_plane())
            .map(|i| ((i * 7 + 3) % 11) as f32 - 5.0)
            .collect();
        let mut cols = vec![0.0; y.len()];
        im2col(&p, &x, &mut cols);
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut img = vec![0.0; x.len()];
        col2im(&p, &y, &mut img);
        let rhs: f32 = x.iter().zip(&img).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn maxpool_picks_maximum_and_argmax() {
        let p = Conv2dParams {
            in_channels: 1,
            out_channels: 1,
            height: 4,
            width: 4,
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut out = vec![0.0; 4];
        let mut arg = vec![0; 4];
        maxpool2d(&p, &input, &mut out, &mut arg);
        assert_eq!(out, vec![5.0, 7.0, 13.0, 15.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn meanpool_averages_window() {
        let p = Conv2dParams {
            in_channels: 1,
            out_channels: 1,
            height: 2,
            width: 2,
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        let input = vec![1.0, 2.0, 3.0, 6.0];
        let mut out = vec![0.0; 1];
        meanpool2d(&p, &input, &mut out);
        assert_eq!(out, vec![3.0]);
    }

    #[test]
    fn conv_bias_is_added() {
        let p = Conv2dParams {
            in_channels: 1,
            out_channels: 1,
            height: 2,
            width: 2,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let weights = vec![2.0];
        let bias = vec![10.0];
        let mut out = vec![0.0; 4];
        conv2d_reference(&p, &input, &weights, &bias, &mut out);
        assert_eq!(out, vec![12.0, 14.0, 16.0, 18.0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_rejected() {
        let p = Conv2dParams {
            in_channels: 1,
            out_channels: 1,
            height: 2,
            width: 2,
            kernel: 5,
            stride: 1,
            pad: 0,
        };
        p.out_height();
    }
}
