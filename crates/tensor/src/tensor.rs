//! A dense, row-major, `f32` tensor.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::shape::Shape;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the single storage type shared by the Latte runtime, the
/// standard-library layers, and the baseline stacks. Deep-learning state in
/// this reproduction is always single precision, as in the paper.
///
/// # Examples
///
/// ```
/// use latte_tensor::Tensor;
///
/// let mut t = Tensor::zeros(vec![2, 3]);
/// t[&[1, 2][..]] = 5.0;
/// assert_eq!(t.sum(), 5.0);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the number of elements of
    /// `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Tensor { shape, data }
    }

    /// Creates a tensor whose elements are produced by `f` applied to each
    /// multi-dimensional index in row-major order.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = shape.into();
        let mut data = Vec::with_capacity(shape.len());
        for idx in shape.indices() {
            data.push(f(&idx));
        }
        Tensor { shape, data }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: tensors hold at least one element.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying data in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying data in row-major order, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Extracts the underlying data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements into shape {}",
            self.data.len(),
            shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// The sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// The maximum element, or `f32::NEG_INFINITY` for hypothetical empty
    /// data (which cannot occur).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Element-wise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `scale`.
    pub fn scale(&mut self, scale: f32) {
        for a in &mut self.data {
            *a *= scale;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// The largest absolute difference between two tensors.
    ///
    /// Useful in tests comparing optimized and reference kernels.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }
}

impl Index<&[usize]> for Tensor {
    type Output = f32;

    fn index(&self, index: &[usize]) -> &f32 {
        &self.data[self.shape.offset(index)]
    }
}

impl IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }
}

impl Index<usize> for Tensor {
    type Output = f32;

    fn index(&self, index: usize) -> &f32 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, index: usize) -> &mut f32 {
        &mut self.data[index]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "{:?})", self.data)
        } else {
            write!(
                f,
                "[{}, {}, {}, ...; {} elements])",
                self.data[0],
                self.data[1],
                self.data[2],
                self.data.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(vec![2, 2]);
        assert_eq!(z.sum(), 0.0);
        let f = Tensor::full(vec![2, 2], 3.0);
        assert_eq!(f.sum(), 12.0);
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let t = Tensor::from_fn(vec![2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn indexing_reads_and_writes() {
        let mut t = Tensor::zeros(vec![3, 4]);
        t[&[2, 3][..]] = 7.0;
        assert_eq!(t.at(&[2, 3]), 7.0);
        assert_eq!(t[11], 7.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::full(vec![4], 1.0);
        let b = Tensor::full(vec![4], 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0; 4]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[4.0; 4]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.reshape(vec![3, 2]);
        assert_eq!(r.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        Tensor::from_vec(vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(vec![3], vec![1.0, 2.5, 3.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    fn map_applies_function() {
        let t = Tensor::from_vec(vec![3], vec![-1.0, 0.0, 2.0]);
        let r = t.map(|x| x.max(0.0));
        assert_eq!(r.as_slice(), &[0.0, 0.0, 2.0]);
    }
}
