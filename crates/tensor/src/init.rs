//! Deterministic parameter initialization schemes.
//!
//! The paper's standard library initializes fully-connected and convolution
//! weights with the Xavier scheme (Glorot & Bengio). All initializers here
//! take an explicit seed so experiments are reproducible run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;
use crate::Shape;

/// Xavier (Glorot) uniform initialization.
///
/// Samples from `U(-b, b)` with `b = sqrt(3 / fan_in)`, the variant used by
/// Caffe and by the paper's `xavier_init`.
///
/// # Examples
///
/// ```
/// use latte_tensor::init::xavier;
///
/// let w = xavier(vec![10, 20], 10, 42);
/// assert!(w.as_slice().iter().all(|&x| x.abs() <= (3.0f32 / 10.0).sqrt()));
/// ```
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn xavier(shape: impl Into<Shape>, fan_in: usize, seed: u64) -> Tensor {
    assert!(fan_in > 0, "fan_in must be non-zero");
    let bound = (3.0f32 / fan_in as f32).sqrt();
    uniform(shape, -bound, bound, seed)
}

/// Uniform initialization on `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, seed: u64) -> Tensor {
    assert!(lo < hi, "empty uniform range [{lo}, {hi})");
    let shape = shape.into();
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data)
}

/// MSRA / He initialization (He et al., the PReLU paper the paper's
/// introduction cites): zero-mean Gaussian with `std = sqrt(2 / fan_in)`,
/// the right variance for ReLU networks.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn msra(shape: impl Into<Shape>, fan_in: usize, seed: u64) -> Tensor {
    assert!(fan_in > 0, "fan_in must be non-zero");
    gaussian(shape, 0.0, (2.0f32 / fan_in as f32).sqrt(), seed)
}

/// Gaussian initialization with the given mean and standard deviation,
/// using a Box–Muller transform over the seeded generator.
pub fn gaussian(shape: impl Into<Shape>, mean: f32, std: f32, seed: u64) -> Tensor {
    let shape = shape.into();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(shape.len());
    while data.len() < shape.len() {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < shape.len() {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_bounded_and_deterministic() {
        let a = xavier(vec![50, 50], 50, 7);
        let b = xavier(vec![50, 50], 50, 7);
        assert_eq!(a, b);
        let bound = (3.0f32 / 50.0).sqrt();
        assert!(a.as_slice().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn different_seeds_differ() {
        let a = xavier(vec![16], 16, 1);
        let b = xavier(vec![16], 16, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let t = gaussian(vec![10_000], 1.0, 2.0, 3);
        let mean = t.sum() / t.len() as f32;
        let var = t
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.4, "var {var}");
    }

    #[test]
    #[should_panic(expected = "fan_in")]
    fn xavier_rejects_zero_fan_in() {
        xavier(vec![2], 0, 0);
    }

    #[test]
    fn msra_std_matches_fan_in() {
        let t = msra(vec![20_000], 50, 5);
        let mean = t.sum() / t.len() as f32;
        let var = t
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 2.0 / 50.0).abs() < 0.005, "var {var}");
    }
}
