//! Single-precision general matrix multiplication.
//!
//! The paper's compiler pattern-matches synthesized loop nests into calls to
//! MKL's `sgemm` through a simplified interface `gemm(transA, transB, m, n,
//! k, A, B, C)` with implicit `alpha = beta = 1` (accumulate into `C`). MKL
//! is not available here, so this module provides the substitute both the
//! Latte stack and the Caffe-style baseline call — exactly the arrangement
//! the paper evaluates ("Because both Latte and Caffe use MKL, ... they have
//! the same performance for computing these fully-connected layers").
//!
//! Three implementations are provided:
//!
//! * [`gemm_naive`] — textbook triple loop, the correctness oracle.
//! * [`Gemm::compute`] — the library kernel, structured after the
//!   Goto/BLIS decomposition: operands are packed into zero-padded
//!   micro-panels (`MR`-row A panels, `NR`-column B panels), then an
//!   explicit register-blocked `MR x NR` micro-kernel accumulates each
//!   output tile in registers over the whole `kc` block. On x86-64 with
//!   AVX2+FMA available the micro-kernel runs a `target_feature` copy
//!   emitting vector FMAs; elsewhere an auto-vectorized fallback runs.
//! * [`Gemm::compute_parallel`] — the same tile decomposition with the
//!   `(ic, jc)` macro-tile grid statically partitioned across a worker
//!   pool ([`GemmPool`]). Every output element is produced by exactly one
//!   worker with a k-order independent of the partition, so results are
//!   **bit-identical** for any worker count (including the serial
//!   [`Gemm::compute`] with the same block sizes).
//!
//! Block sizes are configurable so the ablation benchmark can sweep them.

/// Rows of the register-blocked micro-kernel (A micro-panel height).
pub const MR: usize = 4;
/// Columns of the register-blocked micro-kernel (B micro-panel width).
pub const NR: usize = 16;

/// Below this many multiply-adds a GEMM is not worth fanning out; the
/// parallel entry runs it on one worker instead.
const MIN_PARALLEL_FLOPS: usize = 2 * 64 * 64 * 64;

/// Outputs at most this narrow take the register-resident row fast path
/// instead of the tiled kernel.
const NARROW: usize = 32;

/// A rejected `(kc, nc, mc)` blocking: why [`Gemm::with_blocking`]
/// refused to build an engine.
///
/// The autotuner enumerates blockings from a pre-validated space, but the
/// constructor is public API — a hand-written blocking that is zero or
/// breaks the micro-panel alignment would silently waste most of each
/// packed panel on zero padding (`mc % MR`, `nc % NR`), so it is rejected
/// with a structured error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingError {
    /// A block size was zero.
    ZeroBlock {
        /// Which block (`"kc"`, `"nc"`, or `"mc"`).
        dim: &'static str,
    },
    /// `mc` is not a multiple of the [`MR`]-row A micro-panel.
    UnalignedRows {
        /// The rejected row-block size.
        mc: usize,
    },
    /// `nc` is not a multiple of the [`NR`]-column B micro-panel.
    UnalignedCols {
        /// The rejected column-block size.
        nc: usize,
    },
}

impl std::fmt::Display for BlockingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockingError::ZeroBlock { dim } => write!(f, "block size {dim} must be non-zero"),
            BlockingError::UnalignedRows { mc } => {
                write!(f, "mc = {mc} is not a multiple of the MR = {MR} micro-panel rows")
            }
            BlockingError::UnalignedCols { nc } => {
                write!(f, "nc = {nc} is not a multiple of the NR = {NR} micro-panel columns")
            }
        }
    }
}

impl std::error::Error for BlockingError {}

/// A short, stable description of the instruction-set features the GEMM
/// micro-kernel dispatches on for this host — part of the autotuner's
/// cache key, so schedules tuned on one micro-architecture class are
/// never replayed on another.
pub fn cpu_features() -> &'static str {
    if detect_fma() {
        "avx2+fma"
    } else {
        "generic"
    }
}

/// Whether an operand of [`Gemm::compute`] is transposed.
///
/// `A` is logically `m x k` after the op is applied; `B` is logically
/// `k x n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand as stored.
    Yes,
}

impl Transpose {
    /// Parses the BLAS-style character code: `'N'`/`'n'` or `'T'`/`'t'`.
    ///
    /// # Panics
    ///
    /// Panics on any other character.
    pub fn from_char(c: char) -> Transpose {
        match c {
            'N' | 'n' => Transpose::No,
            'T' | 't' => Transpose::Yes,
            other => panic!("invalid transpose code {other:?}, expected 'N' or 'T'"),
        }
    }
}

/// Reference GEMM: `C += op(A) * op(B)` via the textbook triple loop.
///
/// `a` is `m x k` when `ta` is [`Transpose::No`], else `k x m` (stored
/// row-major); `b` is `k x n` when `tb` is [`Transpose::No`], else `n x k`;
/// `c` is always `m x n` row-major.
///
/// # Panics
///
/// Panics if any slice is shorter than its shape requires.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS sgemm signature
pub fn gemm_naive(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    check_lens(ta, tb, m, n, k, a.len(), b.len(), c.len());
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = match ta {
                    Transpose::No => a[i * k + p],
                    Transpose::Yes => a[p * m + i],
                };
                let bv = match tb {
                    Transpose::No => b[p * n + j],
                    Transpose::Yes => b[j * k + p],
                };
                acc += av * bv;
            }
            c[i * n + j] += acc;
        }
    }
}

/// A worker pool the parallel GEMM entry can fan tiles out over.
///
/// `latte-runtime`'s persistent pool implements this; tests may implement
/// it with scoped threads or even sequentially (the partitioning is
/// correct for any execution order).
///
/// # Contract
///
/// * `run_gemm(job)` must invoke `job(tid, engine)` exactly once for every
///   `tid` in `0..threads()`, each invocation with exclusive access to its
///   own engine, and return only after all invocations complete.
/// * All engines must share identical [`Gemm::blocking`] — the static
///   tile partition is computed independently by every worker and is only
///   consistent when the tile grids agree.
pub trait GemmPool {
    /// Number of workers `run_gemm` drives.
    fn threads(&self) -> usize;
    /// Runs `job(tid, engine)` on every worker and waits for completion.
    fn run_gemm(&self, job: &(dyn Fn(usize, &mut Gemm) + Sync));
}

/// Cache-blocked GEMM engine with configurable block sizes.
///
/// The engine owns packing buffers so repeated calls (the common case inside
/// a training loop) do not reallocate.
///
/// # Examples
///
/// ```
/// use latte_tensor::gemm::{Gemm, Transpose};
///
/// let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
/// let b = vec![5.0, 6.0, 7.0, 8.0]; // 2x2
/// let mut c = vec![0.0; 4];
/// Gemm::new().compute(Transpose::No, Transpose::No, 2, 2, 2, &a, &b, &mut c);
/// assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Gemm {
    kc: usize,
    nc: usize,
    mc: usize,
    /// Whether the AVX2+FMA micro-kernel is usable on this host.
    fma: bool,
    pack_a: Vec<f32>,
    pack_b: Vec<f32>,
}

impl Default for Gemm {
    fn default() -> Self {
        Gemm::new()
    }
}

/// `C` handed to worker closures: workers write disjoint tile regions.
#[derive(Clone, Copy)]
struct CPtr {
    ptr: *mut f32,
    len: usize,
}
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

impl Gemm {
    /// Creates an engine with block sizes tuned for typical L1/L2 caches.
    pub fn new() -> Self {
        Gemm::with_blocking(256, 512, 64).expect("default blocking is valid")
    }

    /// Creates an engine with explicit `(kc, nc, mc)` block sizes.
    ///
    /// `kc` is the reduction-dimension block, `nc` the column block held in
    /// cache, `mc` the row block. `mc` must be a multiple of [`MR`] and
    /// `nc` a multiple of [`NR`] — the packed panels are micro-panel
    /// grids, and an unaligned block would spend the tail panel of every
    /// macro-tile on zero padding. Exposed so the block-size ablation
    /// bench and the schedule autotuner can sweep the design space.
    ///
    /// # Errors
    ///
    /// Returns a [`BlockingError`] for zero block sizes or `mc`/`nc`
    /// violating the `MR`/`NR` panel alignment.
    pub fn with_blocking(kc: usize, nc: usize, mc: usize) -> Result<Self, BlockingError> {
        for (dim, v) in [("kc", kc), ("nc", nc), ("mc", mc)] {
            if v == 0 {
                return Err(BlockingError::ZeroBlock { dim });
            }
        }
        if !mc.is_multiple_of(MR) {
            return Err(BlockingError::UnalignedRows { mc });
        }
        if !nc.is_multiple_of(NR) {
            return Err(BlockingError::UnalignedCols { nc });
        }
        Ok(Gemm {
            kc,
            nc,
            mc,
            fma: detect_fma(),
            pack_a: Vec::new(),
            pack_b: Vec::new(),
        })
    }

    /// The `(kc, nc, mc)` block sizes.
    pub fn blocking(&self) -> (usize, usize, usize) {
        (self.kc, self.nc, self.mc)
    }

    /// Computes `C += op(A) * op(B)`.
    ///
    /// Shapes follow [`gemm_naive`]. Results are identical to the reference
    /// up to floating-point reassociation of the `k` reduction, and
    /// bit-identical to [`Gemm::compute_parallel`] with the same block
    /// sizes on the same host.
    ///
    /// # Panics
    ///
    /// Panics if any slice is shorter than its shape requires.
    #[allow(clippy::too_many_arguments)] // mirrors the BLAS sgemm signature
    pub fn compute(
        &mut self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        check_lens(ta, tb, m, n, k, a.len(), b.len(), c.len());
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        if self.narrow_fast_path(ta, tb, m, n, k, a, b, c) {
            return;
        }
        let cp = CPtr { ptr: c.as_mut_ptr(), len: c.len() };
        // SAFETY: a single part owns every tile; `c` is exclusively
        // borrowed.
        unsafe { self.compute_tiles(ta, tb, m, n, k, a, b, cp, 0, 1) };
    }

    /// Computes `C += op(A) * op(B)` with the `(ic, jc)` macro-tile grid
    /// statically partitioned across `pool`'s workers.
    ///
    /// Every output element is produced by exactly one worker, with the
    /// reduction over `k` blocked identically regardless of the worker
    /// count — so the result is bit-identical to [`Gemm::compute`] with
    /// the same blocking, for *any* pool size. Small or narrow problems
    /// run on worker 0 only (fan-out overhead would dominate).
    ///
    /// # Panics
    ///
    /// Panics if any slice is shorter than its shape requires, or if a
    /// worker panics.
    #[allow(clippy::too_many_arguments)] // mirrors the BLAS sgemm signature
    pub fn compute_parallel(
        pool: &dyn GemmPool,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        check_lens(ta, tb, m, n, k, a.len(), b.len(), c.len());
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let cp = CPtr { ptr: c.as_mut_ptr(), len: c.len() };
        // Serial cases: narrow outputs (register-row path), problems too
        // small to amortize a fan-out, or a single-worker pool.
        let serial = pool.threads() <= 1
            || is_narrow(ta, tb, n)
            || 2 * m * n * k < MIN_PARALLEL_FLOPS;
        if serial {
            pool.run_gemm(&|tid, eng| {
                // Bind the whole CPtr (not its fields) so the closure
                // captures the Sync wrapper, not the raw pointer.
                let out_c = cp;
                if tid == 0 {
                    // SAFETY: only worker 0 touches `c`, which the caller
                    // exclusively borrows for the duration of run_gemm.
                    let cs = unsafe { std::slice::from_raw_parts_mut(out_c.ptr, out_c.len) };
                    eng.compute(ta, tb, m, n, k, a, b, cs);
                }
            });
            return;
        }
        let nt = pool.threads();
        pool.run_gemm(&|tid, eng| {
            // As above: move the Sync wrapper into the closure whole.
            let grid_c = cp;
            let n_tiles = m.div_ceil(eng.mc) * n.div_ceil(eng.nc);
            let nparts = nt.min(n_tiles);
            if tid < nparts {
                // SAFETY: parts write disjoint macro-tiles of `c` (tile
                // index mod nparts), and all engines share one blocking
                // per the GemmPool contract.
                unsafe { eng.compute_tiles(ta, tb, m, n, k, a, b, grid_c, tid, nparts) };
            }
        });
    }

    /// Narrow-output fast path: with `n` small the tiled kernel is mostly
    /// pack/pad overhead, so accumulate each output row in a
    /// register-resident array over the full `k` instead (the B panel
    /// fits in L1). Returns `false` when the shape does not qualify.
    #[allow(clippy::too_many_arguments)]
    fn narrow_fast_path(
        &mut self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) -> bool {
        if !is_narrow(ta, tb, n) {
            return false;
        }
        let pb: &[f32] = if tb == Transpose::Yes {
            // B stored (n x k): per-element dot products would be scalar
            // reductions, which LLVM will not vectorize under strict FP.
            // Transposing B into a tiny (k x n) panel turns the inner
            // loop into independent lanes instead.
            self.pack_b.clear();
            self.pack_b.reserve(k * n);
            for p in 0..k {
                for j in 0..n {
                    self.pack_b.push(b[j * k + p]);
                }
            }
            &self.pack_b
        } else {
            &b[..k * n]
        };
        let mut acc = [0.0f32; NARROW];
        for i in 0..m {
            let arow = &a[i * k..i * k + k];
            let crow = &mut c[i * n..i * n + n];
            acc[..n].copy_from_slice(crow);
            for (p, &av) in arow.iter().enumerate() {
                let brow = &pb[p * n..p * n + n];
                for (ac, bv) in acc[..n].iter_mut().zip(brow) {
                    *ac += av * bv;
                }
            }
            crow.copy_from_slice(&acc[..n]);
        }
        true
    }

    /// Computes the macro-tiles whose flat index `t ≡ part (mod nparts)`
    /// over the `(jc, ic)` grid, looping `pc` blocks innermost per column
    /// so each tile's k-reduction order is partition-invariant.
    ///
    /// # Safety
    ///
    /// Concurrent callers must use distinct `part` values under one
    /// common `nparts` and identical blocking, so tile writes to `c` are
    /// disjoint. `c` must cover `m * n` elements and outlive the call.
    #[allow(clippy::too_many_arguments)]
    unsafe fn compute_tiles(
        &mut self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: CPtr,
        part: usize,
        nparts: usize,
    ) {
        debug_assert!(c.len >= m * n);
        let (kc, nc, mc) = (self.kc, self.nc, self.mc);
        let n_ic = m.div_ceil(mc);
        let n_jc = n.div_ceil(nc);
        // Ensure pack capacity once; panels overwrite (and re-pad) fully.
        let cap_a = mc.div_ceil(MR) * MR * kc;
        let cap_b = nc.div_ceil(NR) * NR * kc;
        if self.pack_a.len() < cap_a {
            self.pack_a.resize(cap_a, 0.0);
        }
        if self.pack_b.len() < cap_b {
            self.pack_b.resize(cap_b, 0.0);
        }
        for jci in 0..n_jc {
            let owns_any = (0..n_ic).any(|ici| (jci * n_ic + ici) % nparts == part);
            if !owns_any {
                continue;
            }
            let jc = jci * nc;
            let nb = nc.min(n - jc);
            for pc in (0..k).step_by(kc) {
                let kb = kc.min(k - pc);
                pack_b_panels(tb, b, k, n, pc, kb, jc, nb, &mut self.pack_b);
                for ici in 0..n_ic {
                    if (jci * n_ic + ici) % nparts != part {
                        continue;
                    }
                    let ic = ici * mc;
                    let mb = mc.min(m - ic);
                    pack_a_panels(ta, a, m, k, ic, mb, pc, kb, &mut self.pack_a);
                    self.macro_kernel(ic, mb, jc, nb, kb, n, c);
                }
            }
        }
    }

    /// Runs the register-blocked micro-kernel over one packed
    /// `mb x nb x kb` macro-tile and accumulates into `C`.
    ///
    /// # Safety
    ///
    /// `c` must cover rows `[ic, ic+mb)` x cols `[jc, jc+nb)` of an
    /// `? x n` matrix with no concurrent writer for that region.
    #[allow(clippy::too_many_arguments)] // a macro-tile is six coordinates
    unsafe fn macro_kernel(
        &self,
        ic: usize,
        mb: usize,
        jc: usize,
        nb: usize,
        kb: usize,
        n: usize,
        c: CPtr,
    ) {
        for j0 in (0..nb).step_by(NR) {
            let nrb = NR.min(nb - j0);
            let bp = &self.pack_b[(j0 / NR) * kb * NR..][..kb * NR];
            for i0 in (0..mb).step_by(MR) {
                let mrb = MR.min(mb - i0);
                let ap = &self.pack_a[(i0 / MR) * kb * MR..][..kb * MR];
                let mut acc = [0.0f32; MR * NR];
                #[cfg(target_arch = "x86_64")]
                if self.fma {
                    // SAFETY: `fma` is set only when AVX2+FMA were
                    // detected at engine construction.
                    unsafe { kernel_mr_nr_fma(kb, ap, bp, &mut acc) };
                } else {
                    kernel_mr_nr(kb, ap, bp, &mut acc);
                }
                #[cfg(not(target_arch = "x86_64"))]
                kernel_mr_nr(kb, ap, bp, &mut acc);
                // Write back the valid region of the tile.
                for r in 0..mrb {
                    let row = ic + i0 + r;
                    let start = row * n + jc + j0;
                    debug_assert!(start + nrb <= c.len);
                    // SAFETY: region ownership per the function contract.
                    let crow =
                        unsafe { std::slice::from_raw_parts_mut(c.ptr.add(start), nrb) };
                    for (cv, av) in crow.iter_mut().zip(&acc[r * NR..r * NR + nrb]) {
                        *cv += av;
                    }
                }
            }
        }
    }
}

/// `true` when AVX2 and FMA are available at runtime (x86-64 only).
fn detect_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn is_narrow(ta: Transpose, _tb: Transpose, n: usize) -> bool {
    // The narrow path reads A row-wise, so it requires untransposed A.
    ta == Transpose::No && n <= NARROW
}

/// Packs `op(A)`'s `mb x kb` block (rows `ic..`, k `pc..`) into
/// zero-padded `MR`-row micro-panels: element `(panel, p, r)` lands at
/// `panel * kb * MR + p * MR + r`.
#[allow(clippy::too_many_arguments)]
fn pack_a_panels(
    ta: Transpose,
    a: &[f32],
    m: usize,
    k: usize,
    ic: usize,
    mb: usize,
    pc: usize,
    kb: usize,
    dst: &mut [f32],
) {
    let panels = mb.div_ceil(MR);
    for pi in 0..panels {
        let rows = MR.min(mb - pi * MR);
        let base = pi * kb * MR;
        for p in 0..kb {
            let off = base + p * MR;
            let pp = pc + p;
            for r in 0..MR {
                dst[off + r] = if r < rows {
                    let i = ic + pi * MR + r;
                    match ta {
                        Transpose::No => a[i * k + pp],
                        Transpose::Yes => a[pp * m + i],
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs `op(B)`'s `kb x nb` block (k `pc..`, cols `jc..`) into
/// zero-padded `NR`-column micro-panels: element `(panel, p, c)` lands at
/// `panel * kb * NR + p * NR + c`.
#[allow(clippy::too_many_arguments)]
fn pack_b_panels(
    tb: Transpose,
    b: &[f32],
    k: usize,
    n: usize,
    pc: usize,
    kb: usize,
    jc: usize,
    nb: usize,
    dst: &mut [f32],
) {
    let panels = nb.div_ceil(NR);
    for pj in 0..panels {
        let cols = NR.min(nb - pj * NR);
        let j0 = jc + pj * NR;
        let base = pj * kb * NR;
        for p in 0..kb {
            let off = base + p * NR;
            let pp = pc + p;
            match tb {
                Transpose::No => {
                    dst[off..off + cols].copy_from_slice(&b[pp * n + j0..pp * n + j0 + cols]);
                }
                Transpose::Yes => {
                    for c in 0..cols {
                        dst[off + c] = b[(j0 + c) * k + pp];
                    }
                }
            }
            for c in cols..NR {
                dst[off + c] = 0.0;
            }
        }
    }
}

/// Portable `MR x NR` micro-kernel: fixed-extent loops over packed panels
/// so LLVM vectorizes the `NR` lane loop; `MR` independent accumulator
/// rows break the k dependence chain.
#[inline(always)]
fn kernel_mr_nr(kb: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    debug_assert!(ap.len() >= kb * MR && bp.len() >= kb * NR);
    for p in 0..kb {
        let a4 = &ap[p * MR..p * MR + MR];
        let b16 = &bp[p * NR..p * NR + NR];
        for r in 0..MR {
            let av = a4[r];
            let row = &mut acc[r * NR..(r + 1) * NR];
            for (cv, bv) in row.iter_mut().zip(b16) {
                *cv += av * bv;
            }
        }
    }
}

/// AVX2+FMA copy of the micro-kernel: 8 YMM accumulators (4 rows x 16
/// lanes), two B loads and four A broadcasts per k step, all arithmetic
/// via `vfmadd`.
///
/// # Safety
///
/// Caller must have verified AVX2 and FMA support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kernel_mr_nr_fma(kb: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kb * MR && bp.len() >= kb * NR);
    let mut c00 = _mm256_setzero_ps();
    let mut c01 = _mm256_setzero_ps();
    let mut c10 = _mm256_setzero_ps();
    let mut c11 = _mm256_setzero_ps();
    let mut c20 = _mm256_setzero_ps();
    let mut c21 = _mm256_setzero_ps();
    let mut c30 = _mm256_setzero_ps();
    let mut c31 = _mm256_setzero_ps();
    let mut pa = ap.as_ptr();
    let mut pb = bp.as_ptr();
    for _ in 0..kb {
        let b0 = _mm256_loadu_ps(pb);
        let b1 = _mm256_loadu_ps(pb.add(8));
        let a0 = _mm256_set1_ps(*pa);
        c00 = _mm256_fmadd_ps(a0, b0, c00);
        c01 = _mm256_fmadd_ps(a0, b1, c01);
        let a1 = _mm256_set1_ps(*pa.add(1));
        c10 = _mm256_fmadd_ps(a1, b0, c10);
        c11 = _mm256_fmadd_ps(a1, b1, c11);
        let a2 = _mm256_set1_ps(*pa.add(2));
        c20 = _mm256_fmadd_ps(a2, b0, c20);
        c21 = _mm256_fmadd_ps(a2, b1, c21);
        let a3 = _mm256_set1_ps(*pa.add(3));
        c30 = _mm256_fmadd_ps(a3, b0, c30);
        c31 = _mm256_fmadd_ps(a3, b1, c31);
        pa = pa.add(MR);
        pb = pb.add(NR);
    }
    let out = acc.as_mut_ptr();
    _mm256_storeu_ps(out, c00);
    _mm256_storeu_ps(out.add(8), c01);
    _mm256_storeu_ps(out.add(16), c10);
    _mm256_storeu_ps(out.add(24), c11);
    _mm256_storeu_ps(out.add(32), c20);
    _mm256_storeu_ps(out.add(40), c21);
    _mm256_storeu_ps(out.add(48), c30);
    _mm256_storeu_ps(out.add(56), c31);
}

#[allow(clippy::too_many_arguments)]
fn check_lens(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    a_len: usize,
    b_len: usize,
    c_len: usize,
) {
    let a_need = match ta {
        Transpose::No => m * k,
        Transpose::Yes => k * m,
    };
    let b_need = match tb {
        Transpose::No => k * n,
        Transpose::Yes => n * k,
    };
    assert!(a_len >= a_need, "A has {a_len} elements, needs {a_need}");
    assert!(b_len >= b_need, "B has {b_len} elements, needs {b_need}");
    assert!(c_len >= m * n, "C has {c_len} elements, needs {}", m * n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(m: usize, n: usize, seed: u32) -> Vec<f32> {
        (0..m * n)
            .map(|i| ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 17) as f32 - 8.0)
            .collect()
    }

    fn check_matches_naive(ta: Transpose, tb: Transpose, m: usize, n: usize, k: usize) {
        let a = dense(
            match ta {
                Transpose::No => m,
                Transpose::Yes => k,
            },
            match ta {
                Transpose::No => k,
                Transpose::Yes => m,
            },
            1,
        );
        let b = dense(
            match tb {
                Transpose::No => k,
                Transpose::Yes => n,
            },
            match tb {
                Transpose::No => n,
                Transpose::Yes => k,
            },
            2,
        );
        let mut c_ref = dense(m, n, 3);
        let mut c_blk = c_ref.clone();
        gemm_naive(ta, tb, m, n, k, &a, &b, &mut c_ref);
        // Odd kc and minimal aligned nc/mc: edge blocks everywhere.
        let mut engine = Gemm::with_blocking(7, 16, 4).expect("aligned blocking");
        engine.compute(ta, tb, m, n, k, &a, &b, &mut c_blk);
        for (r, o) in c_ref.iter().zip(&c_blk) {
            assert!((r - o).abs() <= 1e-3 * r.abs().max(1.0), "{r} vs {o}");
        }
    }

    #[test]
    fn with_blocking_rejects_zero_and_unaligned_blocks() {
        assert_eq!(
            Gemm::with_blocking(0, 512, 64).unwrap_err(),
            BlockingError::ZeroBlock { dim: "kc" }
        );
        assert_eq!(
            Gemm::with_blocking(256, 0, 64).unwrap_err(),
            BlockingError::ZeroBlock { dim: "nc" }
        );
        assert_eq!(
            Gemm::with_blocking(256, 512, 0).unwrap_err(),
            BlockingError::ZeroBlock { dim: "mc" }
        );
        // mc must be a multiple of MR (4), nc a multiple of NR (16).
        assert_eq!(
            Gemm::with_blocking(256, 512, 63).unwrap_err(),
            BlockingError::UnalignedRows { mc: 63 }
        );
        assert_eq!(
            Gemm::with_blocking(256, 500, 64).unwrap_err(),
            BlockingError::UnalignedCols { nc: 500 }
        );
        // kc has no panel constraint: any non-zero value is accepted.
        assert_eq!(Gemm::with_blocking(7, 512, 64).unwrap().blocking(), (7, 512, 64));
    }

    #[test]
    fn blocked_matches_naive_nn() {
        check_matches_naive(Transpose::No, Transpose::No, 13, 17, 9);
    }

    #[test]
    fn blocked_matches_naive_tn() {
        check_matches_naive(Transpose::Yes, Transpose::No, 13, 17, 9);
    }

    #[test]
    fn blocked_matches_naive_nt() {
        check_matches_naive(Transpose::No, Transpose::Yes, 13, 17, 9);
    }

    #[test]
    fn blocked_matches_naive_tt() {
        check_matches_naive(Transpose::Yes, Transpose::Yes, 13, 17, 9);
    }

    #[test]
    fn blocked_matches_naive_wide_output() {
        // Wide enough (> NARROW) to exercise the tiled path with edge
        // tiles in every dimension.
        check_matches_naive(Transpose::No, Transpose::No, 13, 37, 9);
        check_matches_naive(Transpose::Yes, Transpose::No, 13, 37, 9);
        check_matches_naive(Transpose::No, Transpose::Yes, 13, 37, 9);
        check_matches_naive(Transpose::Yes, Transpose::Yes, 13, 37, 9);
    }

    #[test]
    fn accumulates_into_c() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 0.0, 0.0, 2.0];
        let mut c = vec![1.0; 4];
        Gemm::new().compute(Transpose::No, Transpose::No, 2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn transpose_from_char() {
        assert_eq!(Transpose::from_char('N'), Transpose::No);
        assert_eq!(Transpose::from_char('t'), Transpose::Yes);
    }

    #[test]
    #[should_panic(expected = "invalid transpose code")]
    fn transpose_from_char_rejects_garbage() {
        Transpose::from_char('Q');
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn compute_validates_lengths() {
        let a = vec![0.0; 3];
        let b = vec![0.0; 4];
        let mut c = vec![0.0; 4];
        Gemm::new().compute(Transpose::No, Transpose::No, 2, 2, 2, &a, &b, &mut c);
    }

    /// Sequential [`GemmPool`]: runs every part one after another on the
    /// caller thread. Partition correctness does not depend on real
    /// concurrency, so this validates tile ownership cheaply.
    struct SeqPool {
        parts: usize,
        engines: std::cell::RefCell<Vec<Gemm>>,
    }

    impl SeqPool {
        fn new(parts: usize) -> Self {
            SeqPool {
                parts,
                engines: std::cell::RefCell::new((0..parts).map(|_| Gemm::new()).collect()),
            }
        }
    }

    impl GemmPool for SeqPool {
        fn threads(&self) -> usize {
            self.parts
        }
        fn run_gemm(&self, job: &(dyn Fn(usize, &mut Gemm) + Sync)) {
            let mut engines = self.engines.borrow_mut();
            for (tid, eng) in engines.iter_mut().enumerate() {
                job(tid, eng);
            }
        }
    }

    #[test]
    fn parallel_bit_identical_to_serial_across_part_counts() {
        let (m, n, k) = (67, 129, 53);
        let a = dense(m, k, 7);
        let b = dense(k, n, 8);
        let mut c_serial = dense(m, n, 9);
        let mut serial = Gemm::new();
        serial.compute(Transpose::No, Transpose::No, m, n, k, &a, &b, &mut c_serial);
        for parts in [1usize, 2, 3, 4, 8] {
            let mut c_par = dense(m, n, 9);
            let pool = SeqPool::new(parts);
            Gemm::compute_parallel(&pool, Transpose::No, Transpose::No, m, n, k, &a, &b, &mut c_par);
            for (i, (x, y)) in c_serial.iter().zip(&c_par).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "parts={parts} elem {i}: {x} vs {y}");
            }
        }
    }
}
