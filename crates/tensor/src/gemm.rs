//! Single-precision general matrix multiplication.
//!
//! The paper's compiler pattern-matches synthesized loop nests into calls to
//! MKL's `sgemm` through a simplified interface `gemm(transA, transB, m, n,
//! k, A, B, C)` with implicit `alpha = beta = 1` (accumulate into `C`). MKL
//! is not available here, so this module provides the substitute both the
//! Latte stack and the Caffe-style baseline call — exactly the arrangement
//! the paper evaluates ("Because both Latte and Caffe use MKL, ... they have
//! the same performance for computing these fully-connected layers").
//!
//! Two implementations are provided:
//!
//! * [`gemm_naive`] — textbook triple loop, the correctness oracle.
//! * [`Gemm`] — cache-blocked kernel: operands are packed into contiguous
//!   row-major panels, then a k-blocked, j-innermost loop accumulates with
//!   good locality and auto-vectorizable inner loops. Block sizes are
//!   configurable so the ablation benchmark can sweep them.

/// Whether an operand of [`Gemm::compute`] is transposed.
///
/// `A` is logically `m x k` after the op is applied; `B` is logically
/// `k x n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand as stored.
    Yes,
}

impl Transpose {
    /// Parses the BLAS-style character code: `'N'`/`'n'` or `'T'`/`'t'`.
    ///
    /// # Panics
    ///
    /// Panics on any other character.
    pub fn from_char(c: char) -> Transpose {
        match c {
            'N' | 'n' => Transpose::No,
            'T' | 't' => Transpose::Yes,
            other => panic!("invalid transpose code {other:?}, expected 'N' or 'T'"),
        }
    }
}

/// Reference GEMM: `C += op(A) * op(B)` via the textbook triple loop.
///
/// `a` is `m x k` when `ta` is [`Transpose::No`], else `k x m` (stored
/// row-major); `b` is `k x n` when `tb` is [`Transpose::No`], else `n x k`;
/// `c` is always `m x n` row-major.
///
/// # Panics
///
/// Panics if any slice is shorter than its shape requires.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS sgemm signature
pub fn gemm_naive(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    check_lens(ta, tb, m, n, k, a.len(), b.len(), c.len());
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = match ta {
                    Transpose::No => a[i * k + p],
                    Transpose::Yes => a[p * m + i],
                };
                let bv = match tb {
                    Transpose::No => b[p * n + j],
                    Transpose::Yes => b[j * k + p],
                };
                acc += av * bv;
            }
            c[i * n + j] += acc;
        }
    }
}

/// Cache-blocked GEMM engine with configurable block sizes.
///
/// The engine owns packing buffers so repeated calls (the common case inside
/// a training loop) do not reallocate.
///
/// # Examples
///
/// ```
/// use latte_tensor::gemm::{Gemm, Transpose};
///
/// let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
/// let b = vec![5.0, 6.0, 7.0, 8.0]; // 2x2
/// let mut c = vec![0.0; 4];
/// Gemm::new().compute(Transpose::No, Transpose::No, 2, 2, 2, &a, &b, &mut c);
/// assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Gemm {
    kc: usize,
    nc: usize,
    mc: usize,
    pack_a: Vec<f32>,
    pack_b: Vec<f32>,
}

impl Default for Gemm {
    fn default() -> Self {
        Gemm::new()
    }
}

impl Gemm {
    /// Creates an engine with block sizes tuned for typical L1/L2 caches.
    pub fn new() -> Self {
        Gemm::with_blocking(256, 512, 64)
    }

    /// Creates an engine with explicit `(kc, nc, mc)` block sizes.
    ///
    /// `kc` is the reduction-dimension block, `nc` the column block held in
    /// cache, `mc` the row block. Exposed so the block-size ablation bench
    /// can sweep the design space.
    ///
    /// # Panics
    ///
    /// Panics if any block size is zero.
    pub fn with_blocking(kc: usize, nc: usize, mc: usize) -> Self {
        assert!(kc > 0 && nc > 0 && mc > 0, "block sizes must be non-zero");
        Gemm {
            kc,
            nc,
            mc,
            pack_a: Vec::new(),
            pack_b: Vec::new(),
        }
    }

    /// The `(kc, nc, mc)` block sizes.
    pub fn blocking(&self) -> (usize, usize, usize) {
        (self.kc, self.nc, self.mc)
    }

    /// Computes `C += op(A) * op(B)`.
    ///
    /// Shapes follow [`gemm_naive`]. Results are identical to the reference
    /// up to floating-point reassociation of the `k` reduction.
    ///
    /// # Panics
    ///
    /// Panics if any slice is shorter than its shape requires.
    #[allow(clippy::too_many_arguments)] // mirrors the BLAS sgemm signature
    pub fn compute(
        &mut self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        check_lens(ta, tb, m, n, k, a.len(), b.len(), c.len());
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        // Narrow-output micro-kernel: with n small the j-inner loop of the
        // blocked kernel is mostly overhead, so accumulate each output row
        // in a register-resident array instead (the B panel fits in L1).
        const NARROW: usize = 32;
        if n <= NARROW && ta == Transpose::No && tb == Transpose::No {
            let mut acc = [0.0f32; NARROW];
            for i in 0..m {
                let arow = &a[i * k..i * k + k];
                let crow = &mut c[i * n..i * n + n];
                acc[..n].copy_from_slice(crow);
                for (p, &av) in arow.iter().enumerate() {
                    let brow = &b[p * n..p * n + n];
                    for (ac, bv) in acc[..n].iter_mut().zip(brow) {
                        *ac += av * bv;
                    }
                }
                crow.copy_from_slice(&acc[..n]);
            }
            return;
        }
        if n <= NARROW && tb == Transpose::Yes && ta == Transpose::No {
            // B stored (n x k): per-element dot products would be scalar
            // reductions, which LLVM will not vectorize under strict FP.
            // Transposing B into a tiny (k x n) panel (k*n ≤ 32k floats)
            // turns the inner loop into independent lanes instead.
            pack(Transpose::Yes, k, n, b, &mut self.pack_b);
            let pb = &self.pack_b;
            let mut acc = [0.0f32; NARROW];
            for i in 0..m {
                let arow = &a[i * k..i * k + k];
                let crow = &mut c[i * n..i * n + n];
                acc[..n].copy_from_slice(crow);
                for (p, &av) in arow.iter().enumerate() {
                    let brow = &pb[p * n..p * n + n];
                    for (ac, bv) in acc[..n].iter_mut().zip(brow) {
                        *ac += av * bv;
                    }
                }
                crow.copy_from_slice(&acc[..n]);
            }
            return;
        }
        // Pack transposed operands into contiguous row-major panels;
        // packing is O(mk + kn) against O(mnk) compute and removes the
        // transpose branch from the hot loop. Non-transposed operands are
        // already in the layout the macro-kernel wants and are used
        // directly.
        if ta == Transpose::Yes {
            pack(ta, m, k, a, &mut self.pack_a);
        }
        if tb == Transpose::Yes {
            pack(tb, k, n, b, &mut self.pack_b);
        }
        let pa: &[f32] = if ta == Transpose::Yes {
            &self.pack_a
        } else {
            &a[..m * k]
        };
        let pb: &[f32] = if tb == Transpose::Yes {
            &self.pack_b
        } else {
            &b[..k * n]
        };

        for jc in (0..n).step_by(self.nc) {
            let nb = self.nc.min(n - jc);
            for pc in (0..k).step_by(self.kc) {
                let kb = self.kc.min(k - pc);
                for ic in (0..m).step_by(self.mc) {
                    let mb = self.mc.min(m - ic);
                    // Macro-kernel: i over rows, p over the k-block, j
                    // innermost so the compiler vectorizes the fma over a
                    // contiguous row of packed B and C.
                    for i in ic..ic + mb {
                        let c_row = &mut c[i * n + jc..i * n + jc + nb];
                        for p in pc..pc + kb {
                            let av = pa[i * k + p];
                            let b_row = &pb[p * n + jc..p * n + jc + nb];
                            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                                *cv += av * bv;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Packs `op(src)` (logical `rows x cols`) into `dst` as contiguous
/// row-major `rows x cols`.
fn pack(t: Transpose, rows: usize, cols: usize, src: &[f32], dst: &mut Vec<f32>) {
    dst.clear();
    dst.reserve(rows * cols);
    match t {
        Transpose::No => dst.extend_from_slice(&src[..rows * cols]),
        Transpose::Yes => {
            for r in 0..rows {
                for c in 0..cols {
                    dst.push(src[c * rows + r]);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_lens(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    a_len: usize,
    b_len: usize,
    c_len: usize,
) {
    let a_need = match ta {
        Transpose::No => m * k,
        Transpose::Yes => k * m,
    };
    let b_need = match tb {
        Transpose::No => k * n,
        Transpose::Yes => n * k,
    };
    assert!(a_len >= a_need, "A has {a_len} elements, needs {a_need}");
    assert!(b_len >= b_need, "B has {b_len} elements, needs {b_need}");
    assert!(c_len >= m * n, "C has {c_len} elements, needs {}", m * n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(m: usize, n: usize, seed: u32) -> Vec<f32> {
        (0..m * n)
            .map(|i| ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 17) as f32 - 8.0)
            .collect()
    }

    fn check_matches_naive(ta: Transpose, tb: Transpose, m: usize, n: usize, k: usize) {
        let a = dense(
            match ta {
                Transpose::No => m,
                Transpose::Yes => k,
            },
            match ta {
                Transpose::No => k,
                Transpose::Yes => m,
            },
            1,
        );
        let b = dense(
            match tb {
                Transpose::No => k,
                Transpose::Yes => n,
            },
            match tb {
                Transpose::No => n,
                Transpose::Yes => k,
            },
            2,
        );
        let mut c_ref = dense(m, n, 3);
        let mut c_blk = c_ref.clone();
        gemm_naive(ta, tb, m, n, k, &a, &b, &mut c_ref);
        Gemm::with_blocking(7, 11, 5).compute(ta, tb, m, n, k, &a, &b, &mut c_blk);
        for (r, o) in c_ref.iter().zip(&c_blk) {
            assert!((r - o).abs() <= 1e-3 * r.abs().max(1.0), "{r} vs {o}");
        }
    }

    #[test]
    fn blocked_matches_naive_nn() {
        check_matches_naive(Transpose::No, Transpose::No, 13, 17, 9);
    }

    #[test]
    fn blocked_matches_naive_tn() {
        check_matches_naive(Transpose::Yes, Transpose::No, 13, 17, 9);
    }

    #[test]
    fn blocked_matches_naive_nt() {
        check_matches_naive(Transpose::No, Transpose::Yes, 13, 17, 9);
    }

    #[test]
    fn blocked_matches_naive_tt() {
        check_matches_naive(Transpose::Yes, Transpose::Yes, 13, 17, 9);
    }

    #[test]
    fn accumulates_into_c() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 0.0, 0.0, 2.0];
        let mut c = vec![1.0; 4];
        Gemm::new().compute(Transpose::No, Transpose::No, 2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn transpose_from_char() {
        assert_eq!(Transpose::from_char('N'), Transpose::No);
        assert_eq!(Transpose::from_char('t'), Transpose::Yes);
    }

    #[test]
    #[should_panic(expected = "invalid transpose code")]
    fn transpose_from_char_rejects_garbage() {
        Transpose::from_char('Q');
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn compute_validates_lengths() {
        let a = vec![0.0; 3];
        let b = vec![0.0; 4];
        let mut c = vec![0.0; 4];
        Gemm::new().compute(Transpose::No, Transpose::No, 2, 2, 2, &a, &b, &mut c);
    }
}
