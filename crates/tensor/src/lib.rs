//! # latte-tensor
//!
//! Dense-tensor substrate for the Latte workspace: shapes, `f32` tensors,
//! deterministic initializers, a blocked GEMM (the stand-in for MKL's
//! `sgemm` that both Latte and the Caffe-style baseline call), and
//! convolution/pooling primitives used by the baselines and as test oracles.
//!
//! This crate deliberately knows nothing about neurons, ensembles, or the
//! compiler — it is the numeric floor everything else stands on.
//!
//! # Examples
//!
//! ```
//! use latte_tensor::{Tensor, gemm::{Gemm, Transpose}};
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
//! let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
//! let mut c = Tensor::zeros(vec![2, 2]);
//! Gemm::new().compute(
//!     Transpose::No, Transpose::No, 2, 2, 3,
//!     a.as_slice(), b.as_slice(), c.as_mut_slice(),
//! );
//! assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
//! ```

#![warn(missing_docs)]

pub mod conv;
pub mod gemm;
pub mod init;
mod shape;
mod tensor;

pub use shape::{Indices, Shape};
pub use tensor::Tensor;
