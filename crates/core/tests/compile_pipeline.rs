//! End-to-end compiler pipeline tests: synthesis → pattern matching →
//! tiling → fusion on real network fragments.

use latte_core::dsl::stdlib::{max_neuron, relu_neuron, weighted_neuron};
use latte_core::dsl::{
    Ensemble, Mapping, Net, NormalizationSpec, SourceRange, SourceRegion,
};
use latte_core::{compile, OptLevel};
use latte_tensor::{init, Tensor};

/// data[8] → fc1[4] → relu → fc2[3] → softmax loss (with label[1]).
fn mlp_net() -> Net {
    let mut net = Net::new(4);
    let data = net.add(Ensemble::data("data", vec![8]));
    let label = net.add(Ensemble::data("label", vec![1]));
    let fc1 = net.add(
        Ensemble::new("fc1", vec![4], weighted_neuron())
            .with_field("weights", vec![false], init::xavier(vec![4, 8], 8, 1))
            .with_field("bias", vec![false], Tensor::zeros(vec![4, 1]))
            .with_param("weights", 1.0)
            .with_param("bias", 2.0),
    );
    net.connect(data, fc1, Mapping::all_to_all(vec![8]));
    let relu = net.add(Ensemble::activation("relu1", vec![4], relu_neuron()));
    net.connect(fc1, relu, Mapping::one_to_one());
    let fc2 = net.add(
        Ensemble::new("fc2", vec![3], weighted_neuron())
            .with_field("weights", vec![false], init::xavier(vec![3, 4], 4, 2))
            .with_field("bias", vec![false], Tensor::zeros(vec![3, 1]))
            .with_param("weights", 1.0)
            .with_param("bias", 2.0),
    );
    net.connect(relu, fc2, Mapping::all_to_all(vec![4]));
    let loss = net.add(Ensemble::normalization(
        "loss",
        vec![1],
        NormalizationSpec::new("softmax_loss")
            .attr("classes", 3.0)
            .state("prob", vec![3])
            .loss(),
    ));
    net.connect(fc2, loss, Mapping::all_to_all(vec![3]));
    net.connect(label, loss, Mapping::all_to_all(vec![1]));
    net
}

/// data[y,x,cin] → conv(k3 s1 p1, cout) → relu → maxpool(2x2 s2).
fn conv_block_net(h: usize, w: usize, cin: usize, cout: usize) -> Net {
    let mut net = Net::new(2);
    let data = net.add(Ensemble::data("data", vec![h, w, cin]));
    let patch = 3 * 3 * cin;
    let conv = net.add(
        Ensemble::new("conv1", vec![h, w, cout], weighted_neuron())
            .with_field(
                "weights",
                vec![true, true, false],
                init::xavier(vec![cout, patch], patch, 3),
            )
            .with_field("bias", vec![true, true, false], Tensor::zeros(vec![cout, 1]))
            .with_param("weights", 1.0)
            .with_param("bias", 2.0),
    );
    let cin_i = cin as isize;
    net.connect(
        data,
        conv,
        Mapping::new(move |idx| {
            let y = idx[0] as isize - 1;
            let x = idx[1] as isize - 1;
            SourceRegion::new(vec![
                SourceRange::new(y, y + 3),
                SourceRange::new(x, x + 3),
                SourceRange::new(0, cin_i),
            ])
        }),
    );
    let relu = net.add(Ensemble::activation(
        "relu1",
        vec![h, w, cout],
        relu_neuron(),
    ));
    net.connect(conv, relu, Mapping::one_to_one());
    let pool = net.add(Ensemble::new(
        "pool1",
        vec![h / 2, w / 2, cout],
        max_neuron(),
    ));
    net.connect(
        relu,
        pool,
        Mapping::new(|idx| {
            let (y, x, c) = (idx[0] as isize, idx[1] as isize, idx[2] as isize);
            SourceRegion::new(vec![
                SourceRange::new(y * 2, y * 2 + 2),
                SourceRange::new(x * 2, x * 2 + 2),
                SourceRange::single(c),
            ])
        }),
    );
    net
}

#[test]
fn mlp_compiles_with_fc_gemms() {
    let net = mlp_net();
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    // Forward: fc1, relu (in-place), fc2, loss extern.
    assert_eq!(compiled.forward.len(), 4);
    // fc1/fc2 forward dot products + fc backward input/weight nests.
    assert!(
        compiled.stats.gemms_matched >= 4,
        "stats: {:?}\n{}",
        compiled.stats,
        compiled.pretty()
    );
    assert_eq!(compiled.losses, vec!["loss.value".to_string()]);
    assert_eq!(compiled.params.len(), 4);
    assert_eq!(compiled.inputs.len(), 2);
    // relu runs in place: its buffers alias fc1's.
    let relu_value = compiled.buffer("relu1.value").unwrap();
    assert_eq!(relu_value.alias_of.as_deref(), Some("fc1.value"));
    // All-to-all staging aliases the source (no copies).
    let fc1_in = compiled.buffer("fc1.in0").unwrap();
    assert_eq!(fc1_in.alias_of.as_deref(), Some("data.value"));
}

#[test]
fn mlp_without_shared_buffers_stages_copies() {
    let net = mlp_net();
    let compiled = compile(&net, &OptLevel::full().with_shared_buffers(false)).unwrap();
    let fc1_in = compiled.buffer("fc1.in0").unwrap();
    assert!(fc1_in.alias_of.is_none(), "staging must be materialized");
    let printed = compiled.pretty();
    assert!(printed.contains("copy fc1.in0"), "{printed}");
}

#[test]
fn conv_block_fuses_forward_and_backward() {
    let net = conv_block_net(16, 16, 3, 8);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    // conv+relu+pool fuse into one forward group; backward likewise.
    assert_eq!(
        compiled.stats.fusions, 4,
        "stats: {:?}\nforward groups: {:?}\nbackward groups: {:?}",
        compiled.stats,
        compiled.forward.iter().map(|g| &g.name).collect::<Vec<_>>(),
        compiled.backward.iter().map(|g| &g.name).collect::<Vec<_>>(),
    );
    assert_eq!(compiled.forward.len(), 1);
    assert!(compiled.forward[0].name.contains("conv1+relu1+pool1"));
    // Conv forward + conv backward-weights matched as GEMM. The conv
    // backward-input nest is skipped entirely (data gradient unneeded).
    assert!(compiled.stats.gemms_matched >= 2, "{:?}", compiled.stats);
    // The pool tile is half the conv tile (dependence-distance scaling).
    let printed = compiled.pretty();
    assert!(printed.contains("@tiled"), "{printed}");
    // Patch staging dropped the shared output-channel dimension.
    let patch = compiled.buffer("conv1.in0").unwrap();
    assert_eq!(patch.shape.dims(), &[16, 16, 27]);
    assert!(compiled.stats.dims_dropped >= 1);
}

#[test]
fn conv_block_unoptimized_still_synthesizes() {
    let net = conv_block_net(8, 8, 3, 4);
    let compiled = compile(&net, &OptLevel::none()).unwrap();
    assert_eq!(compiled.stats.gemms_matched, 0);
    assert_eq!(compiled.stats.fusions, 0);
    assert_eq!(compiled.forward.len(), 3);
    let printed = compiled.pretty();
    // The synthesized convolution is an explicit loop nest.
    assert!(printed.contains("conv1.value[n0, n1, n2]"), "{printed}");
}

#[test]
fn optimization_levels_preserve_group_coverage() {
    // Every ensemble appears in some forward group at every opt level.
    for opt in [
        OptLevel::none(),
        OptLevel::parallel_only(),
        OptLevel::full().with_fusion(false),
        OptLevel::full(),
    ] {
        let net = conv_block_net(8, 8, 3, 4);
        let compiled = compile(&net, &opt).unwrap();
        let covered: Vec<String> = compiled
            .forward
            .iter()
            .flat_map(|g| g.ensembles.clone())
            .collect();
        for e in ["conv1", "relu1", "pool1"] {
            assert!(covered.contains(&e.to_string()), "{opt:?}: missing {e}");
        }
    }
}

#[test]
fn backward_groups_run_in_reverse_topological_order() {
    let net = mlp_net();
    let compiled = compile(&net, &OptLevel::none()).unwrap();
    let order: Vec<&str> = compiled
        .backward
        .iter()
        .map(|g| g.name.as_str())
        .collect();
    assert_eq!(order, vec!["loss.bwd", "fc2.bwd", "relu1.bwd", "fc1.bwd"]);
}

#[test]
fn normalization_groups_are_barriers() {
    let net = mlp_net();
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let loss_fwd = compiled
        .forward
        .iter()
        .find(|g| g.name == "loss.fwd")
        .unwrap();
    assert!(loss_fwd.barrier);
}

#[test]
fn conv_weights_are_shared_along_spatial_dims() {
    let net = conv_block_net(8, 8, 3, 4);
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let w = compiled.buffer("conv1.weights").unwrap();
    // SoA layout [out_channels, patch_len] — spatial dims dropped.
    assert_eq!(w.shape.dims(), &[4, 27]);
}
