//! Deeper scheduling scenarios: long fusion chains, mixed barriers, tile
//! scaling through repeated sub-sampling, and prime extents.

use latte_core::dsl::stdlib::{max_neuron, relu_neuron, weighted_neuron};
use latte_core::dsl::{Ensemble, Mapping, Net, NormalizationSpec, SourceRange, SourceRegion};
use latte_core::{compile, OptLevel};
use latte_ir::Stmt;
use latte_tensor::{init, Tensor};

fn conv(net: &mut Net, name: &str, input: latte_core::dsl::EnsembleId, cout: usize) {
    let dims = net.ensemble(input).dims().to_vec();
    let (h, w, cin) = (dims[0], dims[1], dims[2]);
    let patch = 9 * cin;
    let id = net.add(
        Ensemble::new(name, vec![h, w, cout], weighted_neuron())
            .with_field(
                "weights",
                vec![true, true, false],
                init::xavier(vec![cout, patch], patch, 1),
            )
            .with_field("bias", vec![true, true, false], Tensor::zeros(vec![cout, 1]))
            .with_param("weights", 1.0)
            .with_param("bias", 2.0),
    );
    let cin = cin as isize;
    net.connect(
        input,
        id,
        Mapping::new(move |idx| {
            let (y, x) = (idx[0] as isize - 1, idx[1] as isize - 1);
            SourceRegion::new(vec![
                SourceRange::new(y, y + 3),
                SourceRange::new(x, x + 3),
                SourceRange::new(0, cin),
            ])
        }),
    );
}

fn relu(net: &mut Net, name: &str, input: &str) {
    let src = net.find(input).unwrap();
    let dims = net.ensemble(src).dims().to_vec();
    let id = net.add(Ensemble::activation(name, dims, relu_neuron()));
    net.connect(src, id, Mapping::one_to_one());
}

fn pool2(net: &mut Net, name: &str, input: &str) {
    let src = net.find(input).unwrap();
    let dims = net.ensemble(src).dims().to_vec();
    let id = net.add(Ensemble::new(
        name,
        vec![dims[0] / 2, dims[1] / 2, dims[2]],
        max_neuron(),
    ));
    net.connect(
        src,
        id,
        Mapping::new(|idx| {
            let (y, x, c) = (idx[0] as isize, idx[1] as isize, idx[2] as isize);
            SourceRegion::new(vec![
                SourceRange::new(y * 2, y * 2 + 2),
                SourceRange::new(x * 2, x * 2 + 2),
                SourceRange::single(c),
            ])
        }),
    );
}

/// conv → relu → pool → pool: the second pooling halves again, so the
/// conv/relu tiles must be 4x the final pool tile — repeated
/// dependence-distance scaling (the paper's Figure-11 transformation
/// applied twice).
#[test]
fn repeated_subsampling_scales_tiles_twice() {
    let mut net = Net::new(1);
    let d = net.add(Ensemble::data("data", vec![16, 16, 2]));
    conv(&mut net, "conv1", d, 4);
    relu(&mut net, "relu1", "conv1");
    pool2(&mut net, "pool1", "relu1");
    pool2(&mut net, "pool2", "pool1");
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    // Everything fuses into one forward group with three merges.
    assert_eq!(compiled.forward.len(), 1, "{}", compiled.pretty());
    let g = &compiled.forward[0];
    let tile = match &g.stmts[0] {
        Stmt::For(l) => l,
        other => panic!("{other:?}"),
    };
    // Find the inner extents of each member's n0 loop: conv/relu 4x the
    // pool2 tile, pool1 2x.
    let mut inner_extents = Vec::new();
    for s in &tile.body {
        if let Stmt::For(l) = s {
            if l.var == "n0" {
                inner_extents.push(l.extent);
            }
        }
    }
    let last = *inner_extents.last().unwrap();
    assert!(
        inner_extents.first().copied().unwrap() == 4 * last,
        "conv tile 4x the final pool tile: {inner_extents:?}"
    );
}

/// A normalization ensemble in the middle splits the chain into two
/// fusable runs.
#[test]
fn barrier_splits_chain_into_two_fusions() {
    let mut net = Net::new(1);
    let d = net.add(Ensemble::data("data", vec![8, 8, 2]));
    conv(&mut net, "conv1", d, 4);
    relu(&mut net, "relu1", "conv1");
    // LRN-style barrier.
    let r = net.find("relu1").unwrap();
    let dims = net.ensemble(r).dims().to_vec();
    let n = net.add(Ensemble::normalization(
        "norm1",
        dims.clone(),
        NormalizationSpec::new("softmax"),
    ));
    net.connect(r, n, Mapping::all_to_all(dims));
    conv(&mut net, "conv2", n, 4);
    relu(&mut net, "relu2", "conv2");
    pool2(&mut net, "pool2", "relu2");
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    let names: Vec<&str> = compiled.forward.iter().map(|g| g.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["conv1+relu1.fwd", "norm1.fwd", "conv2+relu2+pool2.fwd"],
        "{names:?}"
    );
}

/// Prime spatial extents cannot take the preferred tile sizes; the
/// scheduler falls back to tile size 1 and the program still fuses.
#[test]
fn prime_extents_tile_with_unit_tiles() {
    let mut net = Net::new(1);
    let d = net.add(Ensemble::data("data", vec![7, 7, 2]));
    conv(&mut net, "conv1", d, 3);
    relu(&mut net, "relu1", "conv1");
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    assert_eq!(compiled.stats.fusions, 2, "{}", compiled.pretty()); // fwd + bwd
    let tile = match &compiled.forward[0].stmts[0] {
        Stmt::For(l) => l,
        other => panic!("{other:?}"),
    };
    assert_eq!(tile.extent, 7);
    assert_eq!(tile.annot.tiled.unwrap().tile_size, 1);
}

/// Fusion is blocked when the intermediate has a second consumer in the
/// backward phase (gradients must be complete before the producer's
/// backward), but still happens forward.
#[test]
fn multi_consumer_blocks_backward_fusion_only() {
    use latte_core::dsl::stdlib::add_neuron;
    let mut net = Net::new(1);
    let d = net.add(Ensemble::data("data", vec![8, 8, 2]));
    conv(&mut net, "conv1", d, 4);
    relu(&mut net, "relu1", "conv1");
    // Two consumers of relu1: a pool and an elementwise sum.
    pool2(&mut net, "pool1", "relu1");
    let r = net.find("relu1").unwrap();
    let dims = net.ensemble(r).dims().to_vec();
    let sum = net.add(Ensemble::new("sum1", dims, add_neuron(1)));
    net.connect(r, sum, Mapping::one_to_one());
    let compiled = compile(&net, &OptLevel::full()).unwrap();
    // relu1 has two consumers, so relu cannot run in place and pool's
    // backward may not fuse into relu's backward.
    let bwd_names: Vec<&str> = compiled.backward.iter().map(|g| g.name.as_str()).collect();
    assert!(
        !bwd_names.iter().any(|n| n.contains("pool1+relu1")),
        "backward fused across a multi-consumer edge: {bwd_names:?}"
    );
}
