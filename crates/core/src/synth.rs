//! Program synthesis (the paper's Section 5.3).
//!
//! For every ensemble, in topological order, synthesis produces one
//! forward [`Group`] and (in reverse order) one backward [`Group`]:
//!
//! * **data-copy tasks** — a [`CopyStmt`] gathering each sink neuron's
//!   inputs into a staging buffer (the generic analogue of im2col), with
//!   dimensions *dropped* wherever shared-variable analysis proved the
//!   inputs uniform; one-to-one and all-to-all connections skip the copy
//!   entirely and alias the source buffer ("Latte does not perform
//!   data-flow synthesis, instead relies on the runtime mapping of the
//!   input pointers");
//! * **compute nests** — each top-level statement of the neuron's
//!   forward/backward body is instantiated once per neuron by wrapping it
//!   in loops over the ensemble grid, with every array-of-structs field
//!   reference rewritten to the struct-of-arrays buffer layout;
//! * **scatter tasks** — the reverse copies accumulating staged input
//!   gradients back into the source ensemble's gradient buffer.

use std::collections::HashMap;

use latte_ir::{
    AssignOp, BufRef, BufferDecl, BufferKind, CopyStmt, ExternOp, GatherStmt, IndexExpr, Stmt,
};
use latte_tensor::Shape;

use crate::analysis::{analyze_connection, ConnAnalysis, MappingClass};
use crate::dsl::{
    body_buf, BodyCtx, Ensemble, EnsembleKind, FieldLen, Net,
};
use crate::error::CompileError;
use crate::names;
use crate::program::{Group, GroupMeta, InputBinding, ParamBinding, Phase, Upstream};

/// Synthesis-time options, the subset of
/// [`OptLevel`](crate::OptLevel) that changes what code is generated
/// rather than how it is later transformed.
#[derive(Debug, Clone, Copy)]
pub struct SynthOptions {
    /// Drop staging-buffer dimensions along which inputs are shared, and
    /// alias all-to-all inputs to the source buffer (Section 5.2).
    pub shared_buffers: bool,
    /// Run activation ensembles in place over their sole source.
    pub inplace_activation: bool,
    /// Skip computing gradients that only flow into data ensembles.
    pub skip_data_grad: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            shared_buffers: true,
            inplace_activation: true,
            skip_data_grad: true,
        }
    }
}

/// The synthesized (pre-optimization) program.
#[derive(Debug)]
pub struct Synthesized {
    /// All buffer declarations.
    pub buffers: Vec<BufferDecl>,
    /// Forward groups in topological order.
    pub forward: Vec<Group>,
    /// Backward groups in reverse topological order.
    pub backward: Vec<Group>,
    /// Learnable parameters.
    pub params: Vec<ParamBinding>,
    /// Data ensembles.
    pub inputs: Vec<InputBinding>,
    /// Loss buffers.
    pub losses: Vec<String>,
    /// Initial field-buffer contents.
    pub param_inits: Vec<(String, Vec<f32>)>,
    /// Buffers that alias other storage.
    pub aliased_buffers: usize,
    /// Staging dimensions dropped by shared-variable analysis.
    pub dims_dropped: usize,
}

/// How one connection's inputs reach the neuron bodies.
#[derive(Debug, Clone)]
enum Staging {
    /// Sink neuron `(i…)` reads `src.value[i…]` directly.
    AliasOneToOne { src: String },
    /// The staged-input buffer aliases the whole flattened source.
    AliasAllToAll { src: String },
    /// A real staging buffer filled by a synthesized copy.
    Staged {
        src: String,
        /// Indices of sink dims kept (not dropped) in the staging buffer.
        kept: Vec<usize>,
        analysis: ConnAnalysis,
    },
    /// Irregular: staged through an offset table.
    Gathered {
        src: String,
        table: std::sync::Arc<Vec<i64>>,
    },
}

struct EnsCtx<'a> {
    ens: &'a Ensemble,
    stagings: Vec<Staging>,
    analyses: Vec<ConnAnalysis>,
    /// Whether the sink needs to propagate gradients to each connection.
    grad_needed: Vec<bool>,
    /// Shape of each connection's source ensemble.
    src_dims_store: Vec<Vec<usize>>,
    /// Non-recurrent consumer count of each connection's source.
    src_consumers: Vec<usize>,
    inplace: bool,
}

/// Synthesizes the full program for a network.
///
/// # Errors
///
/// Propagates analysis errors and reports invalid ensemble configurations
/// (missing fields, recurrent edges that were not unrolled, …).
pub fn synthesize(net: &Net, opts: &SynthOptions) -> Result<Synthesized, CompileError> {
    let order = net.topo_order()?;
    let consumer_counts = net.consumer_counts();

    let mut out = Synthesized {
        buffers: Vec::new(),
        forward: Vec::new(),
        backward: Vec::new(),
        params: Vec::new(),
        inputs: Vec::new(),
        losses: Vec::new(),
        param_inits: Vec::new(),
        aliased_buffers: 0,
        dims_dropped: 0,
    };
    let mut backward_rev: Vec<Group> = Vec::new();

    for &id in &order {
        let ens = net.ensemble(id);
        let invalid = |detail: &str| CompileError::Invalid {
            ensemble: ens.name().to_string(),
            detail: detail.to_string(),
        };
        let conns = net.connections(id);
        if conns.iter().any(|c| c.recurrent) {
            return Err(invalid(
                "recurrent connections must be removed with Net::unroll before compiling",
            ));
        }

        match ens.kind() {
            EnsembleKind::Data => {
                if !conns.is_empty() {
                    return Err(invalid("data ensembles cannot have inbound connections"));
                }
                declare_value_grad(&mut out.buffers, ens, None);
                out.inputs.push(InputBinding {
                    ensemble: ens.name().to_string(),
                    buffer: names::value(ens.name()),
                    len: ens.len(),
                });
            }
            EnsembleKind::Normalization(spec) => {
                synth_normalization(net, id, ens, spec, &mut out, &mut backward_rev)?;
            }
            EnsembleKind::Concat => {
                synth_concat(net, id, ens, &mut out, &mut backward_rev)?;
            }
            EnsembleKind::Standard | EnsembleKind::Activation => {
                let neuron = ens
                    .neuron()
                    .ok_or_else(|| invalid("missing neuron type"))?;
                // Analyze every connection.
                let mut analyses = Vec::with_capacity(conns.len());
                for (c, conn) in conns.iter().enumerate() {
                    let src = net.ensemble(conn.source);
                    analyses.push(analyze_connection(
                        &conn.mapping,
                        ens.dims(),
                        src.dims(),
                        ens.name(),
                        c,
                    )?);
                }

                // In-place activation decision.
                let is_activation = matches!(ens.kind(), EnsembleKind::Activation);
                if is_activation
                    && (conns.len() != 1
                        || !matches!(analyses[0].class, MappingClass::OneToOne))
                {
                    return Err(invalid(
                        "activation ensembles require exactly one one-to-one connection",
                    ));
                }
                let inplace = is_activation && opts.inplace_activation && {
                    let src_id = conns[0].source;
                    let src = net.ensemble(src_id);
                    consumer_counts[src_id.index()] == 1
                        && !matches!(src.kind(), EnsembleKind::Data)
                };

                // Staging decision per connection.
                let mut stagings = Vec::with_capacity(conns.len());
                let mut grad_needed = Vec::with_capacity(conns.len());
                for (c, conn) in conns.iter().enumerate() {
                    let src = net.ensemble(conn.source);
                    grad_needed.push(
                        !(matches!(src.kind(), EnsembleKind::Data) && opts.skip_data_grad),
                    );
                    let a = &analyses[c];
                    let staging = match &a.class {
                        MappingClass::OneToOne => Staging::AliasOneToOne {
                            src: src.name().to_string(),
                        },
                        MappingClass::AllToAll if opts.shared_buffers => {
                            Staging::AliasAllToAll {
                                src: src.name().to_string(),
                            }
                        }
                        MappingClass::Irregular(regions) => Staging::Gathered {
                            src: src.name().to_string(),
                            table: std::sync::Arc::new(build_gather_table(
                                ens.dims(),
                                src.dims(),
                                regions,
                            )),
                        },
                        _ => {
                            let kept: Vec<usize> = (0..ens.dims().len())
                                .filter(|&j| {
                                    !(opts.shared_buffers && a.shared_sink_dims[j])
                                })
                                .collect();
                            Staging::Staged {
                                src: src.name().to_string(),
                                kept,
                                analysis: a.clone(),
                            }
                        }
                    };
                    stagings.push(staging);
                }

                let src_dims_store: Vec<Vec<usize>> = conns
                    .iter()
                    .map(|conn| net.ensemble(conn.source).dims().to_vec())
                    .collect();
                let src_consumers: Vec<usize> = conns
                    .iter()
                    .map(|conn| consumer_counts[conn.source.index()])
                    .collect();
                let ctx = EnsCtx {
                    ens,
                    stagings,
                    analyses,
                    grad_needed,
                    src_dims_store,
                    src_consumers,
                    inplace,
                };
                synth_neuron_ensemble(&ctx, neuron, opts, &mut out, &mut backward_rev)?;
            }
        }
    }

    backward_rev.reverse();
    out.backward = backward_rev;
    Ok(out)
}

/// Declares `{ens}.value` / `{ens}.grad`, optionally aliasing a source
/// (in-place activations).
fn declare_value_grad(buffers: &mut Vec<BufferDecl>, ens: &Ensemble, alias_src: Option<&str>) {
    let dims = ens.dims().to_vec();
    match alias_src {
        Some(src) => {
            buffers.push(BufferDecl::alias(
                names::value(ens.name()),
                dims.clone(),
                BufferKind::Value,
                names::value(src),
            ));
            buffers.push(BufferDecl::alias(
                names::grad(ens.name()),
                dims,
                BufferKind::Grad,
                names::grad(src),
            ));
        }
        None => {
            buffers.push(BufferDecl::new(
                names::value(ens.name()),
                dims.clone(),
                BufferKind::Value,
            ));
            buffers.push(BufferDecl::new(
                names::grad(ens.name()),
                dims,
                BufferKind::Grad,
            ));
        }
    }
}

/// Builds the flat gather table for an irregular connection: one source
/// offset (or `-1`) per `(sink neuron, region element)` pair.
fn build_gather_table(
    sink_dims: &[usize],
    src_dims: &[usize],
    regions: &[crate::dsl::SourceRegion],
) -> Vec<i64> {
    let src_shape = Shape::new(src_dims.to_vec());
    let sink_shape = Shape::new(sink_dims.to_vec());
    let region_len: usize = regions[0].len();
    let mut table = Vec::with_capacity(sink_shape.len() * region_len);
    for idx in sink_shape.indices() {
        let region = &regions[sink_shape.offset(&idx)];
        // Row-major walk of the region.
        let extents = region.extents();
        let starts = region.starts();
        let region_shape = Shape::new(extents.clone());
        for k in region_shape.indices() {
            let mut flat: i64 = 0;
            let mut oob = false;
            for (d, (&kd, &st)) in k.iter().zip(&starts).enumerate() {
                let s = st + kd as isize;
                if s < 0 || s as usize >= src_dims[d] {
                    oob = true;
                    break;
                }
                flat += (s as usize * src_shape.strides()[d]) as i64;
            }
            table.push(if oob { -1 } else { flat });
        }
    }
    table
}

/// Synthesizes the forward/backward groups of a neuron ensemble.
fn synth_neuron_ensemble(
    ctx: &EnsCtx<'_>,
    neuron: &crate::dsl::NeuronType,
    opts: &SynthOptions,
    out: &mut Synthesized,
    backward_rev: &mut Vec<Group>,
) -> Result<(), CompileError> {
    let ens = ctx.ens;
    let name = ens.name();
    let dims = ens.dims().to_vec();
    let rank = dims.len();

    // --- buffers: value/grad ---
    let inplace_src = if ctx.inplace {
        match &ctx.stagings[0] {
            Staging::AliasOneToOne { src } => Some(src.clone()),
            _ => None,
        }
    } else {
        None
    };
    declare_value_grad(&mut out.buffers, ens, inplace_src.as_deref());
    if inplace_src.is_some() {
        out.aliased_buffers += 2;
    }

    // --- buffers: staging per connection ---
    for (c, staging) in ctx.stagings.iter().enumerate() {
        match staging {
            Staging::AliasOneToOne { .. } => {}
            Staging::AliasAllToAll { src } => {
                let len = ctx.analyses[c].region_len;
                out.buffers.push(BufferDecl::alias(
                    names::input(name, c),
                    vec![len],
                    BufferKind::InputStage,
                    names::value(src),
                ));
                out.aliased_buffers += 1;
                if ctx.grad_needed[c] {
                    out.buffers.push(BufferDecl::alias(
                        names::grad_input(name, c),
                        vec![len],
                        BufferKind::InputGradStage,
                        names::grad(src),
                    ));
                    out.aliased_buffers += 1;
                }
            }
            Staging::Staged { kept, analysis, .. } => {
                let mut shape: Vec<usize> = kept.iter().map(|&j| dims[j]).collect();
                shape.push(analysis.region_len);
                out.dims_dropped += rank - kept.len();
                out.buffers.push(BufferDecl::new(
                    names::input(name, c),
                    shape.clone(),
                    BufferKind::InputStage,
                ));
                if ctx.grad_needed[c] {
                    out.buffers.push(BufferDecl::new(
                        names::grad_input(name, c),
                        shape,
                        BufferKind::InputGradStage,
                    ));
                }
            }
            Staging::Gathered { .. } => {
                let mut shape = dims.clone();
                shape.push(ctx.analyses[c].region_len);
                out.buffers.push(BufferDecl::new(
                    names::input(name, c),
                    shape.clone(),
                    BufferKind::InputStage,
                ));
                if ctx.grad_needed[c] {
                    out.buffers.push(BufferDecl::new(
                        names::grad_input(name, c),
                        shape,
                        BufferKind::InputGradStage,
                    ));
                }
            }
        }
    }

    // --- buffers: fields ---
    let mut field_shared: HashMap<String, Vec<bool>> = HashMap::new();
    let mut field_lens: HashMap<String, usize> = HashMap::new();
    for spec in neuron.fields() {
        let storage = ens.field(&spec.name).ok_or_else(|| CompileError::Invalid {
            ensemble: name.to_string(),
            detail: format!("missing storage for neuron field `{}`", spec.name),
        })?;
        let vec_len = match spec.len {
            FieldLen::Scalar => 1,
            FieldLen::Fixed(n) => n,
            FieldLen::InputLen(c) => {
                ctx.analyses
                    .get(c)
                    .ok_or_else(|| CompileError::Invalid {
                        ensemble: name.to_string(),
                        detail: format!(
                            "field `{}` sized by missing connection {c}",
                            spec.name
                        ),
                    })?
                    .region_len
            }
        };
        let mut expect: Vec<usize> = dims
            .iter()
            .zip(&storage.shared_dims)
            .filter(|(_, &s)| !s)
            .map(|(&d, _)| d)
            .collect();
        expect.push(vec_len);
        if storage.init.shape().dims() != expect.as_slice() {
            return Err(CompileError::FieldShape {
                ensemble: name.to_string(),
                field: spec.name.clone(),
                detail: format!(
                    "init shape {} but SoA layout requires {:?}",
                    storage.init.shape(),
                    expect
                ),
            });
        }
        field_shared.insert(spec.name.clone(), storage.shared_dims.clone());
        field_lens.insert(spec.name.clone(), vec_len);
        match &storage.share_global {
            Some(src_ens) => {
                out.buffers.push(BufferDecl::alias(
                    names::field(name, &spec.name),
                    expect.clone(),
                    BufferKind::Param,
                    names::field(src_ens, &spec.name),
                ));
                out.aliased_buffers += 1;
                if spec.with_grad {
                    out.buffers.push(BufferDecl::alias(
                        names::grad_field(name, &spec.name),
                        expect.clone(),
                        BufferKind::ParamGrad,
                        names::grad_field(src_ens, &spec.name),
                    ));
                    out.aliased_buffers += 1;
                }
            }
            None => {
                out.buffers.push(BufferDecl::new(
                    names::field(name, &spec.name),
                    expect.clone(),
                    BufferKind::Param,
                ));
                out.param_inits.push((
                    names::field(name, &spec.name),
                    storage.init.as_slice().to_vec(),
                ));
                if spec.with_grad {
                    out.buffers.push(BufferDecl::new(
                        names::grad_field(name, &spec.name),
                        expect.clone(),
                        BufferKind::ParamGrad,
                    ));
                }
            }
        }
    }
    for p in ens.params() {
        let spec = neuron
            .fields()
            .iter()
            .find(|f| f.name == p.field)
            .ok_or_else(|| CompileError::Invalid {
                ensemble: name.to_string(),
                detail: format!("param references missing field `{}`", p.field),
            })?;
        if !spec.with_grad {
            return Err(CompileError::Invalid {
                ensemble: name.to_string(),
                detail: format!("param field `{}` lacks a gradient buffer", p.field),
            });
        }
        // Shared (aliased) parameters are updated through their owner.
        if ens.field(&p.field).and_then(|f| f.share_global.as_ref()).is_none() {
            out.params.push(ParamBinding {
                value: names::field(name, &p.field),
                grad: names::grad_field(name, &p.field),
                lr_mult: p.lr_mult,
            });
        }
    }

    // --- body instantiation context ---
    let input_lens: Vec<usize> = ctx.analyses.iter().map(|a| a.region_len).collect();
    let body_ctx = BodyCtx::new(input_lens, field_lens);

    // --- forward group ---
    let mut fwd_stmts: Vec<Stmt> = Vec::new();
    for (c, staging) in ctx.stagings.iter().enumerate() {
        if let Some(stmt) = copy_stmt_for(ctx, c, staging, false) {
            fwd_stmts.push(stmt);
        }
    }
    for body_stmt in neuron.build_forward(&body_ctx) {
        fwd_stmts.push(instantiate(ctx, &body_stmt, &field_shared));
    }
    let meta = group_meta(ctx);
    out.forward.push(Group {
        name: format!("{name}.fwd"),
        ensembles: vec![name.to_string()],
        phase: Phase::Forward,
        stmts: fwd_stmts,
        barrier: false,
        meta: meta.clone(),
    });

    // --- backward group ---
    let mut bwd_stmts: Vec<Stmt> = Vec::new();
    for body_stmt in neuron.build_backward(&body_ctx) {
        let nest = instantiate(ctx, &body_stmt, &field_shared);
        if opts.skip_data_grad && nest_only_feeds_skipped_grads(ctx, &nest) {
            continue;
        }
        bwd_stmts.push(nest);
    }
    for (c, staging) in ctx.stagings.iter().enumerate() {
        if !ctx.grad_needed[c] {
            continue;
        }
        if let Some(stmt) = copy_stmt_for(ctx, c, staging, true) {
            bwd_stmts.push(stmt);
        }
    }
    if !bwd_stmts.is_empty() {
        backward_rev.push(Group {
            name: format!("{name}.bwd"),
            ensembles: vec![name.to_string()],
            phase: Phase::Backward,
            stmts: bwd_stmts,
            barrier: false,
            meta,
        });
    }
    Ok(())
}

/// Builds the data-copy (or gather) statement for one connection, in the
/// given direction. Returns `None` for aliased connections.
fn copy_stmt_for(ctx: &EnsCtx<'_>, c: usize, staging: &Staging, backward: bool) -> Option<Stmt> {
    let name = ctx.ens.name();
    match staging {
        Staging::AliasOneToOne { .. } | Staging::AliasAllToAll { .. } => None,
        Staging::Staged { src, kept, analysis } => {
            let dims = ctx.ens.dims();
            let affine = match &analysis.class {
                MappingClass::Affine(a) => a,
                // `Staged` is only built for affine (or all-to-all with
                // sharing disabled, which is also affine with zero coefs).
                MappingClass::AllToAll => {
                    // Treat as affine with zero coefficients.
                    return Some(Stmt::Copy(full_copy(
                        ctx, c, src, kept, analysis, backward,
                    )));
                }
                _ => unreachable!("staged staging implies affine class"),
            };
            let k = kept.len();
            let src_rank = affine.offsets.len();
            let mut dest_shape: Vec<usize> = kept.iter().map(|&j| dims[j]).collect();
            dest_shape.extend(analysis.extents.iter().copied());
            let mut map = Vec::with_capacity(src_rank);
            for d in 0..src_rank {
                let mut ix = IndexExpr::constant(affine.offsets[d]);
                for (pos, &j) in kept.iter().enumerate() {
                    let coef = affine.coefs[d][j];
                    if coef != 0 {
                        ix = ix + IndexExpr::var(CopyStmt::dim_var(pos)).scaled(coef);
                    }
                }
                ix = ix + IndexExpr::var(CopyStmt::dim_var(k + d));
                map.push(ix);
            }
            let (dest, src_buf) = if backward {
                (names::grad_input(name, c), names::grad(src))
            } else {
                (names::input(name, c), names::value(src))
            };
            Some(Stmt::Copy(CopyStmt {
                dest,
                extents: dest_shape.clone(),
                offsets: vec![IndexExpr::zero(); dest_shape.len()],
                dest_shape,
                src: src_buf,
                src_shape: src_shape_of(ctx, c),
                map,
                scatter: backward,
            }))
        }
        Staging::Gathered { src, table } => {
            let (dest, src_buf) = if backward {
                (names::grad_input(name, c), names::grad(src))
            } else {
                (names::input(name, c), names::value(src))
            };
            Some(Stmt::Gather(GatherStmt {
                dest,
                dest_len: ctx.ens.len() * ctx.analyses[c].region_len,
                src: src_buf,
                table: table.clone(),
                scatter: backward,
            }))
        }
    }
}

/// All-to-all copy with buffer sharing disabled: every sink neuron gets
/// its own copy of the whole source (the naive duplicated staging the
/// shared-variable optimization eliminates).
fn full_copy(
    ctx: &EnsCtx<'_>,
    c: usize,
    src: &str,
    kept: &[usize],
    analysis: &ConnAnalysis,
    backward: bool,
) -> CopyStmt {
    let name = ctx.ens.name();
    let dims = ctx.ens.dims();
    let k = kept.len();
    let src_rank = analysis.extents.len();
    let mut dest_shape: Vec<usize> = kept.iter().map(|&j| dims[j]).collect();
    dest_shape.extend(analysis.extents.iter().copied());
    let map = (0..src_rank)
        .map(|d| IndexExpr::var(CopyStmt::dim_var(k + d)))
        .collect();
    let (dest, src_buf) = if backward {
        (names::grad_input(name, c), names::grad(src))
    } else {
        (names::input(name, c), names::value(src))
    };
    CopyStmt {
        dest,
        extents: dest_shape.clone(),
        offsets: vec![IndexExpr::zero(); dest_shape.len()],
        dest_shape,
        src: src_buf,
        src_shape: src_shape_of(ctx, c),
        map,
        scatter: backward,
    }
}

fn src_shape_of(ctx: &EnsCtx<'_>, c: usize) -> Vec<usize> {
    ctx.src_dims_store[c].clone()
}

/// The group metadata used by tiling and fusion.
fn group_meta(ctx: &EnsCtx<'_>) -> GroupMeta {
    let dims = ctx.ens.dims();
    let rank = dims.len();
    let tileable = rank >= 2
        && ctx
            .stagings
            .iter()
            .all(|s| match s {
                Staging::AliasOneToOne { .. } | Staging::AliasAllToAll { .. } => true,
                Staging::Staged { kept, .. } => kept.first() == Some(&0),
                Staging::Gathered { .. } => false,
            });
    let upstream = if ctx.analyses.len() == 1 {
        ctx.analyses[0].dim0_consumption().map(|(stride, halo)| Upstream {
            ensemble: match &ctx.stagings[0] {
                Staging::AliasOneToOne { src }
                | Staging::AliasAllToAll { src }
                | Staging::Staged { src, .. }
                | Staging::Gathered { src, .. } => src.clone(),
            },
            stride,
            halo,
            sole_consumer: ctx.src_consumers[0] == 1,
        })
    } else {
        None
    };
    GroupMeta {
        dim0_extent: if tileable { Some(dims[0]) } else { None },
        upstream,
        share_body_with: None,
        serial_hint: false,
    }
}

/// Whether a backward nest writes only gradients that are being skipped.
fn nest_only_feeds_skipped_grads(ctx: &EnsCtx<'_>, nest: &Stmt) -> bool {
    let mut skipped: Vec<String> = Vec::new();
    for (c, &needed) in ctx.grad_needed.iter().enumerate() {
        if !needed {
            skipped.push(names::grad_input(ctx.ens.name(), c));
            if let Staging::AliasOneToOne { src } | Staging::AliasAllToAll { src } =
                &ctx.stagings[c]
            {
                skipped.push(names::grad(src));
            }
        }
    }
    if skipped.is_empty() {
        return false;
    }
    let written = nest.written_buffers();
    !written.is_empty() && written.iter().all(|w| skipped.contains(w))
}

/// Instantiates one top-level body statement for the whole ensemble:
/// wraps it in loops over the neuron grid and rewrites every canonical
/// buffer reference to the SoA layout (the paper's AoS→SoA pass).
fn instantiate(
    ctx: &EnsCtx<'_>,
    body_stmt: &Stmt,
    field_shared: &HashMap<String, Vec<bool>>,
) -> Stmt {
    let dims = ctx.ens.dims();
    let rank = dims.len();
    let nvars: Vec<IndexExpr> = (0..rank)
        .map(|d| IndexExpr::var(format!("n{d}")))
        .collect();

    let rewritten = rewrite_stmt(ctx, body_stmt, &nvars, field_shared);

    // Wrap innermost-out in the neuron grid loops.
    let mut stmt = rewritten;
    for d in (0..rank).rev() {
        stmt = Stmt::for_loop(format!("n{d}"), dims[d], vec![stmt]);
    }
    stmt
}

/// Recursively rewrites a body statement's buffer references.
fn rewrite_stmt(
    ctx: &EnsCtx<'_>,
    stmt: &Stmt,
    nvars: &[IndexExpr],
    field_shared: &HashMap<String, Vec<bool>>,
) -> Stmt {
    match stmt {
        Stmt::For(l) => Stmt::For(latte_ir::Loop {
            var: l.var.clone(),
            extent: l.extent,
            annot: l.annot,
            body: l
                .body
                .iter()
                .map(|s| rewrite_stmt(ctx, s, nvars, field_shared))
                .collect(),
        }),
        Stmt::Assign(a) => {
            let (dest, force_add) = rewrite_ref(ctx, &a.dest, nvars, field_shared, true);
            let value = a.value.map_loads(&mut |r| {
                rewrite_ref(ctx, r, nvars, field_shared, false).0
            });
            let op = if force_add && a.op == AssignOp::Set {
                AssignOp::Add
            } else {
                a.op
            };
            Stmt::Assign(latte_ir::Assign { dest, op, value })
        }
        other => other.clone(),
    }
}

/// Rewrites one canonical buffer reference. Returns the new reference and
/// whether a `Set` store must be converted to `Add` (writes that alias a
/// shared gradient buffer with other potential writers).
fn rewrite_ref(
    ctx: &EnsCtx<'_>,
    r: &BufRef,
    nvars: &[IndexExpr],
    field_shared: &HashMap<String, Vec<bool>>,
    _is_dest: bool,
) -> (BufRef, bool) {
    let ens = ctx.ens.name();
    let b = r.buffer.as_str();
    if b == body_buf::VALUE {
        return (BufRef::new(names::value(ens), nvars.to_vec()), false);
    }
    if b == body_buf::GRAD {
        return (BufRef::new(names::grad(ens), nvars.to_vec()), false);
    }
    if let Some(c) = parse_suffix(b, "$in") {
        let idx = r.indices.first().cloned().unwrap_or_else(IndexExpr::zero);
        return (input_ref(ctx, c, idx, false), false);
    }
    if let Some(c) = parse_suffix(b, "$gin") {
        let idx = r.indices.first().cloned().unwrap_or_else(IndexExpr::zero);
        let force_add = matches!(
            &ctx.stagings[c],
            Staging::AliasOneToOne { .. } | Staging::AliasAllToAll { .. }
        ) && !ctx.inplace;
        return (input_ref(ctx, c, idx, true), force_add);
    }
    if let Some(field) = b.strip_prefix("$f_") {
        return (field_ref(ctx, field, r, nvars, field_shared, false), false);
    }
    if let Some(field) = b.strip_prefix("$gf_") {
        return (field_ref(ctx, field, r, nvars, field_shared, true), false);
    }
    // Unknown names pass through untouched (lets tests inject buffers).
    (r.clone(), false)
}

fn parse_suffix(name: &str, prefix: &str) -> Option<usize> {
    name.strip_prefix(prefix)?.parse().ok()
}

/// Rewrites `$in{c}[idx]` / `$gin{c}[idx]`.
fn input_ref(ctx: &EnsCtx<'_>, c: usize, idx: IndexExpr, grad: bool) -> BufRef {
    let ens = ctx.ens.name();
    match &ctx.stagings[c] {
        Staging::AliasOneToOne { src } => {
            // Region length 1: the staged input *is* the source element at
            // the neuron's own position.
            let name = if grad {
                if ctx.inplace {
                    names::grad(ens)
                } else {
                    names::grad(src)
                }
            } else if ctx.inplace {
                names::value(ens)
            } else {
                names::value(src)
            };
            let nvars: Vec<IndexExpr> = (0..ctx.ens.dims().len())
                .map(|d| IndexExpr::var(format!("n{d}")))
                .collect();
            BufRef::new(name, nvars)
        }
        Staging::AliasAllToAll { .. } => {
            let name = if grad {
                names::grad_input(ens, c)
            } else {
                names::input(ens, c)
            };
            BufRef::new(name, vec![idx])
        }
        Staging::Staged { kept, .. } => {
            let name = if grad {
                names::grad_input(ens, c)
            } else {
                names::input(ens, c)
            };
            let mut indices: Vec<IndexExpr> = kept
                .iter()
                .map(|&j| IndexExpr::var(format!("n{j}")))
                .collect();
            indices.push(idx);
            BufRef::new(name, indices)
        }
        Staging::Gathered { .. } => {
            let name = if grad {
                names::grad_input(ens, c)
            } else {
                names::input(ens, c)
            };
            let mut indices: Vec<IndexExpr> = (0..ctx.ens.dims().len())
                .map(|d| IndexExpr::var(format!("n{d}")))
                .collect();
            indices.push(idx);
            BufRef::new(name, indices)
        }
    }
}

/// Rewrites `$f_{field}[idx]` / `$gf_{field}[idx]`.
fn field_ref(
    ctx: &EnsCtx<'_>,
    fieldname: &str,
    r: &BufRef,
    _nvars: &[IndexExpr],
    field_shared: &HashMap<String, Vec<bool>>,
    grad: bool,
) -> BufRef {
    let ens = ctx.ens.name();
    let shared = field_shared
        .get(fieldname)
        .unwrap_or_else(|| panic!("body references undeclared field `{fieldname}`"));
    let mut indices: Vec<IndexExpr> = shared
        .iter()
        .enumerate()
        .filter(|(_, &s)| !s)
        .map(|(j, _)| IndexExpr::var(format!("n{j}")))
        .collect();
    indices.push(r.indices.first().cloned().unwrap_or_else(IndexExpr::zero));
    let name = if grad {
        names::grad_field(ens, fieldname)
    } else {
        names::field(ens, fieldname)
    };
    BufRef::new(name, indices)
}

/// Synthesizes a concatenation ensemble: one copy per source into its
/// slice along the innermost dimension, and the reverse scatter for
/// gradients. Concat groups are tileable along dimension 0 but never name
/// an upstream (multiple producers), so they do not fuse.
fn synth_concat(
    net: &Net,
    id: crate::dsl::EnsembleId,
    ens: &Ensemble,
    out: &mut Synthesized,
    backward_rev: &mut Vec<Group>,
) -> Result<(), CompileError> {
    let name = ens.name();
    let dims = ens.dims().to_vec();
    let rank = dims.len();
    let conns = net.connections(id);
    let invalid = |detail: String| CompileError::Invalid {
        ensemble: name.to_string(),
        detail,
    };
    if conns.is_empty() {
        return Err(invalid("concat needs at least one connection".into()));
    }
    let mut offset = 0usize;
    let mut fwd_stmts = Vec::new();
    let mut bwd_stmts = Vec::new();
    for conn in conns {
        let src = net.ensemble(conn.source);
        let sdims = src.dims();
        if sdims.len() != rank || sdims[..rank - 1] != dims[..rank - 1] {
            return Err(invalid(format!(
                "source `{}` has shape {:?}, expected {:?} except the last dimension",
                src.name(),
                sdims,
                &dims[..rank - 1]
            )));
        }
        // Global dest index g: slice offset only on the last dim; source
        // index = g with the last dim rebased.
        let mut offsets = vec![IndexExpr::zero(); rank];
        offsets[rank - 1] = IndexExpr::constant(offset as i64);
        let mut extents = sdims.to_vec();
        extents[rank - 1] = sdims[rank - 1];
        let map: Vec<IndexExpr> = (0..rank)
            .map(|d| {
                let v = IndexExpr::var(CopyStmt::dim_var(d));
                if d == rank - 1 {
                    v + (-(offset as i64))
                } else {
                    v
                }
            })
            .collect();
        fwd_stmts.push(Stmt::Copy(CopyStmt {
            dest: names::value(name),
            dest_shape: dims.clone(),
            extents: extents.clone(),
            offsets: offsets.clone(),
            src: names::value(src.name()),
            src_shape: sdims.to_vec(),
            map: map.clone(),
            scatter: false,
        }));
        if !matches!(src.kind(), EnsembleKind::Data) {
            bwd_stmts.push(Stmt::Copy(CopyStmt {
                dest: names::grad(name),
                dest_shape: dims.clone(),
                extents,
                offsets,
                src: names::grad(src.name()),
                src_shape: sdims.to_vec(),
                map,
                scatter: true,
            }));
        }
        offset += sdims[rank - 1];
    }
    if offset != dims[rank - 1] {
        return Err(invalid(format!(
            "source last dimensions sum to {offset}, ensemble declares {}",
            dims[rank - 1]
        )));
    }
    declare_value_grad(&mut out.buffers, ens, None);
    let meta = GroupMeta {
        dim0_extent: if rank >= 2 { Some(dims[0]) } else { None },
        upstream: None,
        share_body_with: None,
        serial_hint: false,
    };
    out.forward.push(Group {
        name: format!("{name}.fwd"),
        ensembles: vec![name.to_string()],
        phase: Phase::Forward,
        stmts: fwd_stmts,
        barrier: false,
        meta: meta.clone(),
    });
    if !bwd_stmts.is_empty() {
        backward_rev.push(Group {
            name: format!("{name}.bwd"),
            ensembles: vec![name.to_string()],
            phase: Phase::Backward,
            stmts: bwd_stmts,
            barrier: false,
            meta,
        });
    }
    Ok(())
}

/// Synthesizes a normalization ensemble: extern kernels with barriers.
fn synth_normalization(
    net: &Net,
    id: crate::dsl::EnsembleId,
    ens: &Ensemble,
    spec: &crate::dsl::NormalizationSpec,
    out: &mut Synthesized,
    backward_rev: &mut Vec<Group>,
) -> Result<(), CompileError> {
    let name = ens.name();
    let conns = net.connections(id);
    if conns.is_empty() {
        return Err(CompileError::Invalid {
            ensemble: name.to_string(),
            detail: "normalization ensemble needs at least one connection".to_string(),
        });
    }
    declare_value_grad(&mut out.buffers, ens, None);
    for (suffix, shape, shared) in &spec.state {
        out.buffers.push(BufferDecl::new(
            names::state(name, suffix),
            shape.clone(),
            if *shared {
                BufferKind::SharedState
            } else {
                BufferKind::State
            },
        ));
    }
    let src_values: Vec<String> = conns
        .iter()
        .map(|c| names::value(net.ensemble(c.source).name()))
        .collect();
    let src_grads: Vec<String> = conns
        .iter()
        .map(|c| names::grad(net.ensemble(c.source).name()))
        .collect();
    let states: Vec<String> = spec
        .state
        .iter()
        .map(|(suffix, _, _)| names::state(name, suffix))
        .collect();

    let mut fwd_bufs = src_values.clone();
    fwd_bufs.push(names::value(name));
    fwd_bufs.extend(states.iter().cloned());
    let meta = GroupMeta::default();
    out.forward.push(Group {
        name: format!("{name}.fwd"),
        ensembles: vec![name.to_string()],
        phase: Phase::Forward,
        stmts: vec![Stmt::Extern(ExternOp {
            op: format!("{}_forward", spec.op),
            buffers: fwd_bufs,
            attrs: spec.attrs.clone(),
        })],
        barrier: true,
        meta: meta.clone(),
    });

    let mut bwd_bufs = src_values;
    bwd_bufs.push(names::value(name));
    bwd_bufs.push(names::grad(name));
    bwd_bufs.extend(src_grads);
    bwd_bufs.extend(states);
    backward_rev.push(Group {
        name: format!("{name}.bwd"),
        ensembles: vec![name.to_string()],
        phase: Phase::Backward,
        stmts: vec![Stmt::Extern(ExternOp {
            op: format!("{}_backward", spec.op),
            buffers: bwd_bufs,
            attrs: spec.attrs.clone(),
        })],
        barrier: true,
        meta,
    });
    if spec.loss {
        out.losses.push(names::value(name));
    }
    Ok(())
}
