//! Compiler error type.

use std::fmt;

/// An error produced while compiling a [`Net`](crate::dsl::Net).
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The non-recurrent connection graph has a cycle.
    Cycle {
        /// Names of ensembles on the cycle.
        ensembles: Vec<String>,
    },
    /// An ensemble field's initial tensor has the wrong shape.
    FieldShape {
        /// The offending ensemble.
        ensemble: String,
        /// The offending field.
        field: String,
        /// Human-readable explanation.
        detail: String,
    },
    /// A connection mapping produced regions of differing sizes, which the
    /// uniform-region analysis cannot stage.
    NonRectangular {
        /// The sink ensemble of the offending connection.
        ensemble: String,
        /// Index of the connection on the sink.
        connection: usize,
    },
    /// A mapping range fell entirely outside the source ensemble.
    MappingOutOfRange {
        /// The sink ensemble of the offending connection.
        ensemble: String,
        /// Index of the connection on the sink.
        connection: usize,
        /// Human-readable explanation.
        detail: String,
    },
    /// An ensemble configuration is invalid (missing neuron, missing
    /// field storage, bad normalization arity, …).
    Invalid {
        /// The offending ensemble.
        ensemble: String,
        /// Human-readable explanation.
        detail: String,
    },
    /// The inter-pass IR verifier rejected the program a pass produced.
    /// Always a compiler bug (or a deliberately sabotaged pass under
    /// test), never a user error.
    Verify {
        /// Name of the pass whose output failed verification
        /// (`"synthesize"` when the synthesized program itself is bad).
        pass: String,
        /// The verifier's diagnostic, including the statement path.
        detail: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Cycle { ensembles } => write!(
                f,
                "non-recurrent connection graph has a cycle through [{}] (mark backward edges recurrent)",
                ensembles.join(", ")
            ),
            CompileError::FieldShape {
                ensemble,
                field,
                detail,
            } => write!(f, "field `{field}` of ensemble `{ensemble}`: {detail}"),
            CompileError::NonRectangular {
                ensemble,
                connection,
            } => write!(
                f,
                "connection {connection} of ensemble `{ensemble}` maps sink neurons to regions of differing sizes"
            ),
            CompileError::MappingOutOfRange {
                ensemble,
                connection,
                detail,
            } => write!(
                f,
                "connection {connection} of ensemble `{ensemble}` maps outside the source: {detail}"
            ),
            CompileError::Invalid { ensemble, detail } => {
                write!(f, "invalid ensemble `{ensemble}`: {detail}")
            }
            CompileError::Verify { pass, detail } => {
                write!(f, "ir verification failed after pass `{pass}`: {detail}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = CompileError::Cycle {
            ensembles: vec!["a".into(), "b".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("cycle through [a, b]"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &(dyn std::error::Error + Send + Sync)) {}
        let e = CompileError::Invalid {
            ensemble: "x".into(),
            detail: "no neuron type".into(),
        };
        takes_err(&e);
    }
}
