//! The staged pass pipeline: a [`Pass`] trait, the concrete passes
//! wrapping each of the paper's optimizations, and the [`PassManager`]
//! that drives them with instrumentation and inter-pass verification.
//!
//! [`compile`](crate::compile) runs the *same* pipeline for every
//! [`OptLevel`]: the level does not choose which functions get called, it
//! only decides which passes report `enabled`. Disabled passes are
//! skipped but still get a [`PassStat`] row, so
//! [`CompileStats::passes`](crate::CompileStats) has identical structure
//! across all configurations.
//!
//! Instrumentation:
//!
//! * per-pass wall time and IR-size deltas land in
//!   [`CompileStats::passes`](crate::CompileStats);
//! * `LATTE_DUMP_IR=<dir>` writes a textual snapshot of the whole program
//!   (buffer table + both phases) after synthesis and after every enabled
//!   pass, named `compile<seq>-<step>-<pass>.txt`;
//! * the [`latte_ir::verify`] checker runs on the synthesized program and
//!   after every enabled pass — always in debug builds, opt-in in release
//!   via `LATTE_VERIFY_IR=1` (and opt-out in debug via
//!   `LATTE_VERIFY_IR=0`). A failure becomes
//!   [`CompileError::Verify`] naming the offending pass.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use latte_ir::{BufferDecl, Stmt};
use latte_tensor::Shape;

use crate::compile::OptLevel;
use crate::error::CompileError;
use crate::opt;
use crate::program::{CompileStats, Group, PassStat};
use crate::tuned::TunedSchedule;

/// The IR flowing through the pipeline: both phases' groups.
#[derive(Debug, Clone)]
pub struct PipelineState {
    /// Forward groups in execution order.
    pub forward: Vec<Group>,
    /// Backward groups in execution order.
    pub backward: Vec<Group>,
}

impl PipelineState {
    fn groups(&self) -> usize {
        self.forward.len() + self.backward.len()
    }

    fn stmts(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::For(l) => 1 + count(&l.body),
                    _ => 1,
                })
                .sum()
        }
        self.forward
            .iter()
            .chain(&self.backward)
            .map(|g| count(&g.stmts))
            .sum()
    }

    /// `(group name, statements)` pairs across both phases, in execution
    /// order — the shape [`latte_ir::verify_program`] consumes.
    pub fn groups_for_verify(&self) -> impl Iterator<Item = (&str, &[Stmt])> {
        self.forward
            .iter()
            .chain(&self.backward)
            .map(|g| (g.name.as_str(), g.stmts.as_slice()))
    }
}

/// Read-only context every pass receives.
pub struct PassContext<'a> {
    /// Per-buffer shapes (per-item, batch dimension excluded).
    pub shapes: &'a HashMap<String, Shape>,
    /// The buffer table (declaration order = allocation order).
    pub buffers: &'a [BufferDecl],
    /// The optimization level the net is being compiled at.
    pub opt: &'a OptLevel,
    /// Measured schedule overrides, when compiling under an autotuned
    /// schedule ([`compile_tuned`](crate::compile_tuned)). `None` means
    /// the identity schedule: every pass uses its built-in heuristics.
    pub tuned: Option<&'a TunedSchedule>,
}

impl PassContext<'_> {
    /// The tile size the tiling/fusion passes should request: the tuned
    /// override when present, else the opt level's.
    fn effective_tile(&self) -> Option<usize> {
        self.tuned
            .map_or(self.opt.tile_size, |t| t.effective_tile(self.opt.tile_size))
    }
}

/// One named compiler stage.
pub trait Pass {
    /// Stable name, used in stats rows, dump file names, and
    /// [`CompileError::Verify`] diagnostics.
    fn name(&self) -> &'static str;

    /// Whether this `OptLevel` turns the pass on. Disabled passes are
    /// skipped (but still recorded).
    fn enabled(&self, opt: &OptLevel) -> bool;

    /// Transforms the IR in place, accumulating aggregate counters.
    fn run(&self, state: &mut PipelineState, ctx: &PassContext<'_>, stats: &mut CompileStats);
}

/// Replaces multiply-accumulate nests with GEMM library calls (the
/// paper's §5.3 kernel pattern matching).
struct PatternMatchPass;

impl Pass for PatternMatchPass {
    fn name(&self) -> &'static str {
        "pattern-match"
    }

    fn enabled(&self, opt: &OptLevel) -> bool {
        opt.pattern_match
    }

    fn run(&self, state: &mut PipelineState, ctx: &PassContext<'_>, stats: &mut CompileStats) {
        stats.gemms_matched += opt::pattern_match(&mut state.forward, ctx.shapes);
        stats.gemms_matched += opt::pattern_match(&mut state.backward, ctx.shapes);
    }
}

/// Merges producer→consumer chains into single tile loops (the paper's
/// §5.4.2 cross-layer fusion). Requires tiling: a fused chain *is* a tile
/// loop.
struct FusionPass;

impl Pass for FusionPass {
    fn name(&self) -> &'static str {
        "fusion"
    }

    fn enabled(&self, opt: &OptLevel) -> bool {
        opt.tiling && opt.fusion
    }

    fn run(&self, state: &mut PipelineState, ctx: &PassContext<'_>, stats: &mut CompileStats) {
        for phase in [&mut state.forward, &mut state.backward] {
            let (groups, s) = opt::fuse_chains(std::mem::take(phase), ctx.effective_tile());
            *phase = groups;
            stats.groups_tiled += s.groups_tiled;
            stats.fusions += s.fusions;
        }
    }
}

/// Tiles the outermost spatial loop of every group the fusion pass left
/// untiled (the paper's §5.4.1 loop tiling).
struct TilingPass;

impl Pass for TilingPass {
    fn name(&self) -> &'static str {
        "tiling"
    }

    fn enabled(&self, opt: &OptLevel) -> bool {
        opt.tiling
    }

    fn run(&self, state: &mut PipelineState, ctx: &PassContext<'_>, stats: &mut CompileStats) {
        for phase in [&mut state.forward, &mut state.backward] {
            let (groups, s) = opt::tile_untiled(std::mem::take(phase), ctx.effective_tile());
            *phase = groups;
            stats.groups_tiled += s.groups_tiled;
        }
    }
}

/// Marks tile loops parallel for the runtime's collapsed batch × tile
/// schedule (the paper's §5.4.3).
struct ParallelizePass;

impl Pass for ParallelizePass {
    fn name(&self) -> &'static str {
        "parallelize"
    }

    fn enabled(&self, opt: &OptLevel) -> bool {
        opt.parallel
    }

    fn run(&self, state: &mut PipelineState, ctx: &PassContext<'_>, _stats: &mut CompileStats) {
        opt::parallelize(&mut state.forward, ctx.tuned);
        opt::parallelize(&mut state.backward, ctx.tuned);
    }
}

/// Marks innermost loops `@simd` in the IR. Execution keys off the
/// compiled net's global `vectorize` flag (the runtime decides per
/// kernel whether a native slice lowering applies), so this marking is
/// observability: dumps and golden snapshots show which loops the
/// vectorizing lowering may claim.
struct VectorizeMarkPass;

impl VectorizeMarkPass {
    fn mark(stmts: &mut [Stmt]) {
        for s in stmts {
            if let Stmt::For(l) = s {
                if l.body.iter().any(|b| matches!(b, Stmt::For(_))) {
                    Self::mark(&mut l.body);
                } else {
                    l.annot.vectorize = true;
                }
            }
        }
    }
}

impl Pass for VectorizeMarkPass {
    fn name(&self) -> &'static str {
        "vectorize-mark"
    }

    fn enabled(&self, opt: &OptLevel) -> bool {
        opt.vectorize
    }

    fn run(&self, state: &mut PipelineState, _ctx: &PassContext<'_>, _stats: &mut CompileStats) {
        for g in state.forward.iter_mut().chain(state.backward.iter_mut()) {
            Self::mark(&mut g.stmts);
        }
    }
}

/// Marks unrolled recurrent step groups that are α-equivalent to an
/// earlier step (identical statements modulo the `@t{k}` buffer
/// rename), so the runtime lowering compiles one step body per family
/// and rebinds it per step. Runs last: tiling and fusion have already
/// shaped the groups, so a step the schedule treated differently simply
/// fails the equivalence check and is lowered on its own.
struct StepSharePass;

impl Pass for StepSharePass {
    fn name(&self) -> &'static str {
        "step-share"
    }

    fn enabled(&self, _opt: &OptLevel) -> bool {
        // Purely an annotation (no IR change) and always profitable —
        // on, uniformly, at every level.
        true
    }

    fn run(&self, state: &mut PipelineState, _ctx: &PassContext<'_>, stats: &mut CompileStats) {
        for phase in [&mut state.forward, &mut state.backward] {
            let s = opt::share_steps(phase);
            stats.step_groups_shared += s.shared;
            stats.step_stmts_deduped += s.stmts_deduped;
        }
    }
}

/// A synthesis-time optimization surfaced as a pipeline row. Buffer
/// sharing, in-place activations, and data-gradient skipping happen
/// *during* synthesis (in the paper they are part of shared-variable
/// analysis, not a separate rewrite), so by the time the pipeline runs
/// their work is done; the pass exists so the pipeline report lists every
/// optimization the `OptLevel` controls, uniformly.
struct SynthesisEmbeddedPass {
    name: &'static str,
    enabled: fn(&OptLevel) -> bool,
}

impl Pass for SynthesisEmbeddedPass {
    fn name(&self) -> &'static str {
        self.name
    }

    fn enabled(&self, opt: &OptLevel) -> bool {
        (self.enabled)(opt)
    }

    fn run(&self, _state: &mut PipelineState, _ctx: &PassContext<'_>, _stats: &mut CompileStats) {}
}

/// Distinguishes successive compiles in `LATTE_DUMP_IR` file names.
static DUMP_SEQ: AtomicUsize = AtomicUsize::new(0);

/// The ordered pass pipeline plus its instrumentation and verification
/// hooks.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify: bool,
    dump_dir: Option<std::path::PathBuf>,
}

impl PassManager {
    /// The standard pipeline, in the paper's stage order. Every
    /// [`OptLevel`] builds this same pipeline; flags only flip per-pass
    /// `enabled` bits.
    pub fn standard() -> Self {
        let passes: Vec<Box<dyn Pass>> = vec![
            Box::new(SynthesisEmbeddedPass {
                name: "shared-buffers",
                enabled: |o| o.shared_buffers,
            }),
            Box::new(SynthesisEmbeddedPass {
                name: "inplace-activation",
                enabled: |o| o.inplace_activation,
            }),
            Box::new(SynthesisEmbeddedPass {
                name: "skip-data-grad",
                enabled: |o| o.skip_data_grad,
            }),
            Box::new(PatternMatchPass),
            Box::new(FusionPass),
            Box::new(TilingPass),
            Box::new(ParallelizePass),
            Box::new(VectorizeMarkPass),
            Box::new(StepSharePass),
        ];
        PassManager {
            passes,
            verify: verify_enabled(),
            dump_dir: std::env::var_os("LATTE_DUMP_IR").map(Into::into),
        }
    }

    /// Appends a pass to the pipeline (used by tests to inject a
    /// sabotaged pass behind the verifier).
    pub fn push(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Forces inter-pass verification on or off, overriding the
    /// build-type/environment default.
    pub fn with_verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Runs the pipeline over `state`, recording one [`PassStat`] per
    /// pass into `stats.passes`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Verify`] when the synthesized program or
    /// any enabled pass's output fails IR verification.
    pub fn run(
        &self,
        state: &mut PipelineState,
        ctx: &PassContext<'_>,
        stats: &mut CompileStats,
    ) -> Result<(), CompileError> {
        let seq = self
            .dump_dir
            .as_ref()
            .map(|_| DUMP_SEQ.fetch_add(1, Ordering::Relaxed));
        self.checkpoint(state, ctx, "synthesize", seq, 0)?;
        for (step, pass) in self.passes.iter().enumerate() {
            let enabled = pass.enabled(ctx.opt);
            let groups_before = state.groups();
            let stmts_before = state.stmts();
            let start = Instant::now();
            if enabled {
                pass.run(state, ctx, stats);
            }
            let wall_micros = if enabled {
                start.elapsed().as_micros()
            } else {
                0
            };
            stats.passes.push(PassStat {
                name: pass.name().to_string(),
                enabled,
                wall_micros,
                groups_before,
                groups_after: state.groups(),
                stmts_before,
                stmts_after: state.stmts(),
            });
            if enabled {
                self.checkpoint(state, ctx, pass.name(), seq, step + 1)?;
            }
        }
        Ok(())
    }

    /// Verifies and (when `LATTE_DUMP_IR` is set) dumps the program as it
    /// stands after `pass`.
    fn checkpoint(
        &self,
        state: &PipelineState,
        ctx: &PassContext<'_>,
        pass: &str,
        seq: Option<usize>,
        step: usize,
    ) -> Result<(), CompileError> {
        if let (Some(dir), Some(seq)) = (&self.dump_dir, seq) {
            // Dump before verifying: a failing pass's IR is exactly what
            // you want on disk.
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("compile{seq:03}-{step:02}-{pass}.txt"));
            let _ = std::fs::write(path, render_state(state, ctx.buffers));
        }
        if self.verify {
            latte_ir::verify_program(ctx.buffers, state.groups_for_verify()).map_err(|e| {
                CompileError::Verify {
                    pass: pass.to_string(),
                    detail: e.to_string(),
                }
            })?;
        }
        Ok(())
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::standard()
    }
}

/// Debug builds and tests verify between passes by default; release
/// builds opt in with `LATTE_VERIFY_IR=1` (and debug builds may opt out
/// with `LATTE_VERIFY_IR=0`).
fn verify_enabled() -> bool {
    match std::env::var("LATTE_VERIFY_IR") {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => false,
        Ok(_) => true,
        Err(_) => cfg!(debug_assertions),
    }
}

/// The textual snapshot `LATTE_DUMP_IR` writes: buffer table, then both
/// phases in the same format as
/// [`CompiledNet::pretty`](crate::CompiledNet::pretty).
fn render_state(state: &PipelineState, buffers: &[BufferDecl]) -> String {
    let mut s = String::new();
    s.push_str("== buffers ==\n");
    for b in buffers {
        s.push_str(&format!("{b}\n"));
    }
    s.push_str("== forward ==\n");
    for g in &state.forward {
        s.push_str(&g.pretty());
    }
    s.push_str("== backward ==\n");
    for g in &state.backward {
        s.push_str(&g.pretty());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_is_uniform_across_levels() {
        let names: Vec<&str> = PassManager::standard()
            .passes
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(
            names,
            [
                "shared-buffers",
                "inplace-activation",
                "skip-data-grad",
                "pattern-match",
                "fusion",
                "tiling",
                "parallelize",
                "vectorize-mark",
                "step-share",
            ]
        );
        // `none` disables every rewrite but keeps synthesis-embedded
        // sharing on; `full` enables everything.
        let mgr = PassManager::standard();
        let none = OptLevel::none();
        let full = OptLevel::full();
        let on = |opt: &OptLevel| -> Vec<bool> {
            mgr.passes.iter().map(|p| p.enabled(opt)).collect()
        };
        assert_eq!(
            on(&none),
            [true, true, true, false, false, false, false, false, true]
        );
        assert_eq!(on(&full), vec![true; 9]);
    }

    #[test]
    fn fusion_requires_tiling() {
        let opt = OptLevel::none().with_fusion(true); // fusion without tiling
        assert!(!FusionPass.enabled(&opt));
        assert!(FusionPass.enabled(&opt.with_tiling(true)));
    }
}
