//! Shared-variable analysis (the paper's Section 5.2).
//!
//! Latte represents the data-flow graph implicitly through mapping
//! functions. This module evaluates a connection's mapping over the sink
//! index space and recovers its structure:
//!
//! * the **class** of the mapping — one-to-one, all-to-all, an affine
//!   window (convolutions, pooling), or irregular (kept as an explicit
//!   adjacency table);
//! * the **shared sink dimensions** — dimensions of the sink ensemble
//!   along which every neuron consumes *identical* inputs, letting the
//!   compiler drop those dimensions from staging buffers and copy loops
//!   ("the compiler compares the adjacency lists of neurons along a
//!   dimension; if this list is uniform ... the neurons along that
//!   dimension can share the same buffer").
//!
//! The closure is treated as a black box, exactly as the Julia
//! implementation treats user mapping functions: we *probe* it to fit an
//! affine model and then *verify* the model on (a sample of) the index
//! space, falling back to an explicit table when verification fails.

use latte_tensor::Shape;

use crate::dsl::{Mapping, SourceRegion};
use crate::error::CompileError;

/// Upper bound on sink sizes for which the affine model is verified
/// exhaustively; larger sinks are verified on a deterministic sample.
const EXHAUSTIVE_VERIFY_LIMIT: usize = 1 << 16;
/// Sample size for sinks above [`EXHAUSTIVE_VERIFY_LIMIT`].
const VERIFY_SAMPLES: usize = 4096;

/// The affine model of a mapping: `start_d = Σ_j coefs[d][j] * sink_j +
/// offsets[d]` with constant per-dimension extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineMap {
    /// `coefs[d][j]` is the coefficient of sink dimension `j` in the start
    /// of source dimension `d`.
    pub coefs: Vec<Vec<i64>>,
    /// The constant start per source dimension.
    pub offsets: Vec<i64>,
}

impl AffineMap {
    /// Evaluates the modeled region start for a sink index.
    pub fn start(&self, sink: &[usize]) -> Vec<i64> {
        self.coefs
            .iter()
            .zip(&self.offsets)
            .map(|(row, &off)| {
                off + row
                    .iter()
                    .zip(sink)
                    .map(|(&c, &s)| c * s as i64)
                    .sum::<i64>()
            })
            .collect()
    }
}

/// Classification of a connection's mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingClass {
    /// Sink neuron `(i…)` consumes exactly source neuron `(i…)`.
    OneToOne,
    /// Every sink neuron consumes the entire source (fully-connected).
    AllToAll,
    /// A strided rectangular window, affine in the sink index
    /// (convolution, pooling).
    Affine(AffineMap),
    /// No affine structure; the explicit region per sink neuron is kept
    /// (in row-major sink order).
    Irregular(Vec<SourceRegion>),
}

/// The result of analyzing one connection.
#[derive(Debug, Clone)]
pub struct ConnAnalysis {
    /// Region extent per source dimension (uniform across sinks).
    pub extents: Vec<usize>,
    /// Number of staged inputs per sink neuron (`extents` product).
    pub region_len: usize,
    /// Structure of the mapping.
    pub class: MappingClass,
    /// Per sink dimension: `true` when the consumed region is independent
    /// of the index along that dimension (inputs shared; buffer dimension
    /// dropped).
    pub shared_sink_dims: Vec<bool>,
}

impl ConnAnalysis {
    /// The consumption stride and halo of the mapping along sink dimension
    /// 0 (the tiled dimension): how many source rows (of the source
    /// dimension driven by sink dim 0) one step of the sink consumes, and
    /// how many *extra* rows beyond the stride its window overlaps.
    ///
    /// Returns `None` when the mapping has no affine dependence on sink
    /// dim 0 (all-to-all, irregular, or shared along dim 0), in which case
    /// the consumer cannot be tiled-fused with its producer.
    pub fn dim0_consumption(&self) -> Option<(usize, usize)> {
        let affine = match &self.class {
            MappingClass::OneToOne => return Some((1, 0)),
            MappingClass::Affine(a) => a,
            _ => return None,
        };
        // Find source dims driven by sink dim 0. For fusion we require
        // exactly one, and it must be source dim 0 (both ensembles keep
        // the tiled dimension outermost).
        let driven: Vec<usize> = affine
            .coefs
            .iter()
            .enumerate()
            .filter(|(_, row)| row.first().copied().unwrap_or(0) != 0)
            .map(|(d, _)| d)
            .collect();
        if driven != [0] {
            return None;
        }
        let stride = affine.coefs[0][0];
        if stride <= 0 {
            return None;
        }
        let stride = stride as usize;
        let halo = self.extents[0].saturating_sub(stride);
        Some((stride, halo))
    }
}

/// Deterministic pseudo-random sink indices for sampled verification.
fn sample_indices(shape: &Shape, n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::with_capacity(n);
    let len = shape.len();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push(shape.unravel((state >> 17) as usize % len));
    }
    // Always include the extreme corner.
    out.push(shape.dims().iter().map(|&d| d - 1).collect());
    out
}

/// Analyzes one connection.
///
/// # Errors
///
/// Returns [`CompileError::NonRectangular`] when region sizes differ
/// across sink neurons, and [`CompileError::MappingOutOfRange`] when a
/// region lies entirely outside the source.
pub fn analyze_connection(
    mapping: &Mapping,
    sink_dims: &[usize],
    src_dims: &[usize],
    ensemble: &str,
    connection: usize,
) -> Result<ConnAnalysis, CompileError> {
    let sink_shape = Shape::new(sink_dims.to_vec());
    let origin = vec![0usize; sink_dims.len()];
    let base = mapping.eval(&origin);
    let non_rect = || CompileError::NonRectangular {
        ensemble: ensemble.to_string(),
        connection,
    };
    if base.ranges.len() != src_dims.len() {
        return Err(CompileError::MappingOutOfRange {
            ensemble: ensemble.to_string(),
            connection,
            detail: format!(
                "mapping returns {} ranges for a source of rank {}",
                base.ranges.len(),
                src_dims.len()
            ),
        });
    }
    let extents = base.extents();
    let base_starts = base.starts();

    // Fit the affine model by probing unit steps along each sink dim.
    let mut coefs = vec![vec![0i64; sink_dims.len()]; src_dims.len()];
    let mut affine_candidate = true;
    for (j, &dj) in sink_dims.iter().enumerate() {
        if dj <= 1 {
            continue;
        }
        let mut probe = origin.clone();
        probe[j] = 1;
        let r = mapping.eval(&probe);
        if r.extents() != extents {
            return Err(non_rect());
        }
        for (d, (&s, &b)) in r.starts().iter().zip(&base_starts).enumerate() {
            coefs[d][j] = s as i64 - b as i64;
        }
        // Second probe to catch non-linearity early.
        if dj > 2 {
            let mut probe2 = origin.clone();
            probe2[j] = 2;
            let r2 = mapping.eval(&probe2);
            if r2.extents() != extents {
                return Err(non_rect());
            }
            for (d, (&s, &b)) in r2.starts().iter().zip(&base_starts).enumerate() {
                if s as i64 - b as i64 != 2 * coefs[d][j] {
                    affine_candidate = false;
                }
            }
        }
    }
    let model = AffineMap {
        coefs,
        offsets: base_starts.iter().map(|&s| s as i64).collect(),
    };

    // Verify the model (exhaustively or on a sample).
    let verify_points: Vec<Vec<usize>> = if sink_shape.len() <= EXHAUSTIVE_VERIFY_LIMIT {
        sink_shape.indices().collect()
    } else {
        sample_indices(&sink_shape, VERIFY_SAMPLES)
    };
    let exhaustive = sink_shape.len() <= EXHAUSTIVE_VERIFY_LIMIT;
    if affine_candidate {
        'verify: for idx in &verify_points {
            let r = mapping.eval(idx);
            if r.extents() != extents {
                return Err(non_rect());
            }
            let predicted = model.start(idx);
            for (&p, &a) in predicted.iter().zip(r.starts().iter()) {
                if p != a as i64 {
                    affine_candidate = false;
                    break 'verify;
                }
            }
        }
    }

    let shared_sink_dims: Vec<bool>;
    let class: MappingClass;
    if affine_candidate {
        shared_sink_dims = (0..sink_dims.len())
            .map(|j| model.coefs.iter().all(|row| row[j] == 0))
            .collect();
        // Dimensions of extent 1 are identity regardless of coefficient
        // (the probe never moves along them, so the coefficient is 0).
        let is_identity = sink_dims.len() == src_dims.len()
            && extents.iter().all(|&e| e == 1)
            && model.offsets.iter().all(|&o| o == 0)
            && model.coefs.iter().enumerate().all(|(d, row)| {
                row.iter().enumerate().all(|(j, &c)| {
                    c == i64::from(d == j) || (sink_dims[j] <= 1 && c == 0)
                })
            });
        let is_all_to_all = shared_sink_dims.iter().all(|&s| s)
            && model.offsets.iter().all(|&o| o == 0)
            && extents
                .iter()
                .zip(src_dims)
                .all(|(&e, &s)| e == s);
        class = if is_identity {
            MappingClass::OneToOne
        } else if is_all_to_all {
            MappingClass::AllToAll
        } else {
            MappingClass::Affine(model)
        };
    } else {
        // Irregular: materialize the full adjacency (requires exhaustive
        // enumeration; reject absurdly large irregular sinks).
        if !exhaustive {
            return Err(CompileError::NonRectangular {
                ensemble: ensemble.to_string(),
                connection,
            });
        }
        let mut regions = Vec::with_capacity(sink_shape.len());
        for idx in sink_shape.indices() {
            let r = mapping.eval(&idx);
            if r.extents() != extents {
                return Err(non_rect());
            }
            regions.push(r);
        }
        // Uniformity along a dimension still enables sharing: compare the
        // adjacency lists of neighbours along each dim.
        shared_sink_dims = (0..sink_dims.len())
            .map(|j| {
                sink_shape.indices().all(|idx| {
                    if idx[j] == 0 {
                        return true;
                    }
                    let mut prev = idx.clone();
                    prev[j] -= 1;
                    regions[sink_shape.offset(&idx)] == regions[sink_shape.offset(&prev)]
                })
            })
            .collect();
        class = MappingClass::Irregular(regions);
    }

    let region_len: usize = extents.iter().product();
    if region_len == 0 {
        return Err(CompileError::MappingOutOfRange {
            ensemble: ensemble.to_string(),
            connection,
            detail: "mapping produced an empty region".to_string(),
        });
    }
    Ok(ConnAnalysis {
        extents,
        region_len,
        class,
        shared_sink_dims,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{Mapping, SourceRange, SourceRegion};

    fn window_mapping(kernel: isize, stride: isize, pad: isize, in_c: isize) -> Mapping {
        Mapping::new(move |idx| {
            let y = idx[0] as isize * stride - pad;
            let x = idx[1] as isize * stride - pad;
            SourceRegion::new(vec![
                SourceRange::new(y, y + kernel),
                SourceRange::new(x, x + kernel),
                SourceRange::new(0, in_c),
            ])
        })
    }

    #[test]
    fn conv_mapping_classified_affine_with_shared_channel_dim() {
        let a = analyze_connection(
            &window_mapping(3, 1, 1, 8),
            &[6, 6, 16], // sink (y, x, c)
            &[6, 6, 8],  // source (y, x, c)
            "conv1",
            0,
        )
        .unwrap();
        assert_eq!(a.extents, vec![3, 3, 8]);
        assert_eq!(a.region_len, 72);
        // Inputs are shared along the output-channel dim (dropped).
        assert_eq!(a.shared_sink_dims, vec![false, false, true]);
        match &a.class {
            MappingClass::Affine(m) => {
                assert_eq!(m.coefs[0], vec![1, 0, 0]);
                assert_eq!(m.coefs[1], vec![0, 1, 0]);
                assert_eq!(m.coefs[2], vec![0, 0, 0]);
                assert_eq!(m.offsets, vec![-1, -1, 0]);
            }
            other => panic!("expected affine, got {other:?}"),
        }
        assert_eq!(a.dim0_consumption(), Some((1, 2)));
    }

    #[test]
    fn pool_mapping_stride_two_no_halo() {
        let pool = Mapping::new(|idx| {
            let (y, x, c) = (idx[0] as isize, idx[1] as isize, idx[2] as isize);
            SourceRegion::new(vec![
                SourceRange::new(y * 2, y * 2 + 2),
                SourceRange::new(x * 2, x * 2 + 2),
                SourceRange::single(c),
            ])
        });
        let a = analyze_connection(&pool, &[3, 3, 4], &[6, 6, 4], "pool1", 0).unwrap();
        assert_eq!(a.shared_sink_dims, vec![false, false, false]);
        assert_eq!(a.dim0_consumption(), Some((2, 0)));
    }

    #[test]
    fn one_to_one_detected_from_closure() {
        let a = analyze_connection(&Mapping::one_to_one(), &[4, 5], &[4, 5], "relu1", 0).unwrap();
        assert_eq!(a.class, MappingClass::OneToOne);
        assert_eq!(a.region_len, 1);
        assert_eq!(a.dim0_consumption(), Some((1, 0)));
    }

    #[test]
    fn all_to_all_detected_and_fully_shared() {
        let a = analyze_connection(
            &Mapping::all_to_all(vec![4, 5]),
            &[10],
            &[4, 5],
            "fc1",
            0,
        )
        .unwrap();
        assert_eq!(a.class, MappingClass::AllToAll);
        assert_eq!(a.shared_sink_dims, vec![true]);
        assert_eq!(a.region_len, 20);
        assert_eq!(a.dim0_consumption(), None);
    }

    #[test]
    fn irregular_mapping_falls_back_to_table() {
        // A "bit-reversal"-flavoured permutation: not affine.
        let m = Mapping::new(|idx| {
            let i = idx[0];
            let j = (i * 3 + i * i) % 8;
            SourceRegion::new(vec![SourceRange::single(j as isize)])
        });
        let a = analyze_connection(&m, &[8], &[8], "perm", 0).unwrap();
        match &a.class {
            MappingClass::Irregular(regions) => assert_eq!(regions.len(), 8),
            other => panic!("expected irregular, got {other:?}"),
        }
        assert_eq!(a.shared_sink_dims, vec![false]);
        assert_eq!(a.dim0_consumption(), None);
    }

    #[test]
    fn non_rectangular_mapping_rejected() {
        let m = Mapping::new(|idx| {
            SourceRegion::new(vec![SourceRange::new(0, 1 + idx[0] as isize)])
        });
        let err = analyze_connection(&m, &[4], &[8], "tri", 0).unwrap_err();
        assert!(matches!(err, CompileError::NonRectangular { .. }));
    }

    #[test]
    fn wrong_rank_rejected() {
        let m = Mapping::new(|_| SourceRegion::new(vec![SourceRange::single(0)]));
        let err = analyze_connection(&m, &[4], &[8, 8], "bad", 0).unwrap_err();
        assert!(matches!(err, CompileError::MappingOutOfRange { .. }));
    }

    #[test]
    fn strided_fc_like_mapping_shares_only_unused_dims() {
        // Sink (g, n): group g consumes block g of the source, regardless
        // of n — shared along dim 1 only.
        let m = Mapping::new(|idx| {
            let g = idx[0] as isize;
            SourceRegion::new(vec![SourceRange::new(g * 4, g * 4 + 4)])
        });
        let a = analyze_connection(&m, &[2, 6], &[8], "grouped", 0).unwrap();
        assert_eq!(a.shared_sink_dims, vec![false, true]);
        match &a.class {
            MappingClass::Affine(am) => assert_eq!(am.coefs[0], vec![4, 0]),
            other => panic!("expected affine, got {other:?}"),
        }
    }
}
