//! The Latte language surface: neurons, ensembles, connections, networks.
//!
//! This module is the Rust rendering of the paper's Section 3. A network
//! is a [`Net`] of [`Ensemble`]s joined by [`Mapping`]s; every ensemble is
//! a homogeneous grid of one [`NeuronType`], whose forward/backward bodies
//! are written against the `latte-ir` expression language through
//! [`BodyBuilder`].

mod ensemble;
mod mapping;
mod net;
mod neuron;
pub mod stdlib;

pub use ensemble::{Ensemble, EnsembleKind, FieldStorage, NormalizationSpec, ParamSpec};
pub use mapping::{Mapping, SourceRange, SourceRegion};
pub use net::{Connection, EnsembleId, Net};
pub use neuron::{body_buf, BodyBuilder, BodyCtx, FieldLen, FieldSpec, NeuronType, NeuronTypeBuilder};
