//! The core neuron library: the small set of neuron types the paper's
//! standard library layers are built from.
//!
//! Higher-level *layer* constructors (fully-connected, convolution,
//! pooling, LSTM, …) live in `latte-nn`; this module holds only the neuron
//! types themselves so compiler tests can use them without a circular
//! dependency.

use latte_ir::UnaryOp;

use super::neuron::{FieldLen, NeuronType};

/// The paper's `WeightedNeuron` (Figure 3): output is the dot product of
/// the inputs with a learnable weight vector, plus a learnable bias.
///
/// The forward body initializes `value` with the bias and then
/// accumulates, which leaves the multiply-accumulate loop in the exact
/// shape the GEMM pattern matcher recognizes.
pub fn weighted_neuron() -> NeuronType {
    NeuronType::builder("WeightedNeuron")
        .field_with_grad("weights", FieldLen::InputLen(0))
        .field_with_grad("bias", FieldLen::Scalar)
        .forward(|b| {
            b.assign(b.value(), b.field("bias", 0));
            b.for_each_input(0, |b, i| {
                b.accumulate(b.value(), b.input(0, i.clone()).mul(b.field("weights", i)));
            });
        })
        .backward(|b| {
            // Back-propagated gradient: ∇inputs[i] += weights[i] * ∇.
            b.for_each_input(0, |b, i| {
                b.accumulate(
                    b.grad_input(0, i.clone()),
                    b.field("weights", i).mul(b.grad_expr()),
                );
            });
            // Weight gradient: ∇weights[i] += inputs[i] * ∇.
            b.for_each_input(0, |b, i| {
                b.accumulate(
                    b.grad_field("weights", i.clone()),
                    b.grad_expr().mul(b.input(0, i)),
                );
            });
            // Bias gradient: ∇bias += ∇.
            b.accumulate(b.grad_field("bias", 0), b.grad_expr());
        })
        .build()
}

/// Rectified linear unit: `value = max(input, 0)`.
///
/// Intended for [`Ensemble::activation`](super::Ensemble::activation)
/// (in-place eligible); the backward body therefore *sets* the input
/// gradient as a pure function of `∇` and `value`.
pub fn relu_neuron() -> NeuronType {
    NeuronType::builder("ReLUNeuron")
        .forward(|b| {
            b.assign(b.value(), b.input(0, 0).max(b.lit(0.0)));
        })
        .backward(|b| {
            let g = b.grad_expr().mul(b.value_expr().unary(UnaryOp::Step));
            let dest = b.grad_input(0, 0);
            b.assign(dest, g);
        })
        .build()
}

/// Logistic sigmoid activation; backward uses `σ' = σ(1-σ)` so it stays
/// in-place safe.
pub fn sigmoid_neuron() -> NeuronType {
    NeuronType::builder("SigmoidNeuron")
        .forward(|b| {
            b.assign(b.value(), b.input(0, 0).unary(UnaryOp::Sigmoid));
        })
        .backward(|b| {
            let v = b.value_expr();
            let g = b
                .grad_expr()
                .mul(v.clone().mul(b.lit(1.0).sub(b.value_expr())));
            let dest = b.grad_input(0, 0);
            b.assign(dest, g);
        })
        .build()
}

/// Hyperbolic tangent activation; backward uses `tanh' = 1 - tanh²`.
pub fn tanh_neuron() -> NeuronType {
    NeuronType::builder("TanhNeuron")
        .forward(|b| {
            b.assign(b.value(), b.input(0, 0).unary(UnaryOp::Tanh));
        })
        .backward(|b| {
            let v2 = b.value_expr().mul(b.value_expr());
            let g = b.grad_expr().mul(b.lit(1.0).sub(v2));
            let dest = b.grad_input(0, 0);
            b.assign(dest, g);
        })
        .build()
}

/// A max neuron: output is the maximum of its inputs (max pooling).
///
/// Backward routes `∇` to the input(s) equal to the selected maximum via
/// an equality indicator. When several inputs tie for the maximum, each
/// receives the full gradient (Caffe routes to the first maximum only);
/// with continuous data, ties have measure zero.
pub fn max_neuron() -> NeuronType {
    NeuronType::builder("MaxNeuron")
        .forward(|b| {
            b.assign(b.value(), b.lit(f32::NEG_INFINITY));
            b.for_each_input(0, |b, i| {
                b.max_assign(b.value(), b.input(0, i));
            });
        })
        .backward(|b| {
            b.for_each_input(0, |b, i| {
                let routed = b
                    .grad_expr()
                    .mul(b.input(0, i.clone()).eq_indicator(b.value_expr()));
                b.accumulate(b.grad_input(0, i), routed);
            });
        })
        .build()
}

/// A mean neuron: output is the average of its inputs (mean pooling).
pub fn mean_neuron() -> NeuronType {
    NeuronType::builder("MeanNeuron")
        .forward(|b| {
            b.assign(b.value(), b.lit(0.0));
            let inv = 1.0 / b.num_inputs(0) as f32;
            b.for_each_input(0, |b, i| {
                b.accumulate(b.value(), b.input(0, i).mul(b.lit(inv)));
            });
        })
        .backward(|b| {
            let inv = 1.0 / b.num_inputs(0) as f32;
            b.for_each_input(0, |b, i| {
                b.accumulate(b.grad_input(0, i), b.grad_expr().mul(b.lit(inv)));
            });
        })
        .build()
}

/// An element-wise sum over `n_conns` one-to-one connections (the `+`
/// ensembles of the paper's LSTM example).
pub fn add_neuron(n_conns: usize) -> NeuronType {
    assert!(n_conns >= 1, "add neuron needs at least one input");
    NeuronType::builder("AddNeuron")
        .forward(move |b| {
            b.assign(b.value(), b.input(0, 0));
            for c in 1..n_conns {
                b.accumulate(b.value(), b.input(c, 0));
            }
        })
        .backward(move |b| {
            for c in 0..n_conns {
                b.accumulate(b.grad_input(c, 0), b.grad_expr());
            }
        })
        .build()
}

/// An element-wise product of two one-to-one connections (the `*`
/// ensembles of the paper's LSTM example).
pub fn mul_neuron() -> NeuronType {
    NeuronType::builder("MulNeuron")
        .forward(|b| {
            b.assign(b.value(), b.input(0, 0).mul(b.input(1, 0)));
        })
        .backward(|b| {
            b.accumulate(b.grad_input(0, 0), b.grad_expr().mul(b.input(1, 0)));
            b.accumulate(b.grad_input(1, 0), b.grad_expr().mul(b.input(0, 0)));
        })
        .build()
}

/// An identity/copy neuron (useful to materialize an ensemble boundary).
pub fn identity_neuron() -> NeuronType {
    NeuronType::builder("IdentityNeuron")
        .forward(|b| {
            b.assign(b.value(), b.input(0, 0));
        })
        .backward(|b| {
            b.accumulate(b.grad_input(0, 0), b.grad_expr());
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::neuron::BodyCtx;
    use std::collections::HashMap;

    fn ctx(lens: Vec<usize>) -> BodyCtx {
        BodyCtx::new(lens, HashMap::new())
    }

    #[test]
    fn relu_bodies_are_setters() {
        let nt = relu_neuron();
        let fwd = latte_ir::print_stmts(&nt.build_forward(&ctx(vec![1])));
        assert!(fwd.contains("$value = max($in0[0], 0)"), "{fwd}");
        let bwd = latte_ir::print_stmts(&nt.build_backward(&ctx(vec![1])));
        assert!(bwd.contains("$gin0[0] = ($grad * step($value))"), "{bwd}");
    }

    #[test]
    fn max_neuron_initializes_to_neg_inf() {
        let nt = max_neuron();
        let fwd = latte_ir::print_stmts(&nt.build_forward(&ctx(vec![4])));
        assert!(fwd.contains("$value = -inf"), "{fwd}");
        assert!(fwd.contains("$value max= $in0[i0]"), "{fwd}");
    }

    #[test]
    fn add_neuron_spans_connections() {
        let nt = add_neuron(3);
        let fwd = latte_ir::print_stmts(&nt.build_forward(&ctx(vec![1, 1, 1])));
        assert!(fwd.contains("$in1[0]") && fwd.contains("$in2[0]"), "{fwd}");
    }

    #[test]
    fn mul_neuron_product_rule() {
        let nt = mul_neuron();
        let bwd = latte_ir::print_stmts(&nt.build_backward(&ctx(vec![1, 1])));
        assert!(bwd.contains("$gin0[0] += ($grad * $in1[0])"), "{bwd}");
        assert!(bwd.contains("$gin1[0] += ($grad * $in0[0])"), "{bwd}");
    }

    #[test]
    fn mean_neuron_scales_by_count() {
        let nt = mean_neuron();
        let fwd = latte_ir::print_stmts(&nt.build_forward(&ctx(vec![4])));
        assert!(fwd.contains("* 0.25"), "{fwd}");
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn add_neuron_rejects_zero_conns() {
        add_neuron(0);
    }
}
