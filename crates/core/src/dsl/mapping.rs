//! Connection mapping functions.
//!
//! A mapping specifies, for every neuron in the sink ensemble, the
//! rectangular region of source-ensemble neurons it consumes — exactly the
//! paper's `mapping` closures (Figure 5). Mappings are ordinary Rust
//! closures; the compiler *classifies* them by evaluating them over the
//! sink index space (`latte-core::analysis`), recovering the affine
//! structure (one-to-one, all-to-all, strided window) that drives buffer
//! sharing, data-copy synthesis, tiling, and fusion.

use std::fmt;
use std::sync::Arc;

/// A half-open range of source indices along one source dimension.
///
/// Ranges may extend past the source extent (negative start or
/// past-the-end stop); out-of-bounds elements read as zero on the forward
/// pass and absorb no gradient on the backward pass — the standard
/// zero-padding semantics of convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceRange {
    /// Inclusive start (may be negative).
    pub start: isize,
    /// Exclusive stop.
    pub stop: isize,
}

impl SourceRange {
    /// Creates a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if `stop < start`.
    pub fn new(start: isize, stop: isize) -> Self {
        assert!(stop >= start, "invalid range {start}..{stop}");
        SourceRange { start, stop }
    }

    /// A single index.
    pub fn single(i: isize) -> Self {
        SourceRange::new(i, i + 1)
    }

    /// The number of indices in the range.
    pub fn len(&self) -> usize {
        (self.stop - self.start) as usize
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.stop == self.start
    }
}

impl fmt::Display for SourceRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.stop)
    }
}

/// The rectangular region of source neurons consumed by one sink neuron:
/// one [`SourceRange`] per source dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceRegion {
    /// One range per source-ensemble dimension, outermost first.
    pub ranges: Vec<SourceRange>,
}

impl SourceRegion {
    /// Creates a region from per-dimension ranges.
    pub fn new(ranges: Vec<SourceRange>) -> Self {
        SourceRegion { ranges }
    }

    /// The number of source neurons in the region.
    pub fn len(&self) -> usize {
        self.ranges.iter().map(SourceRange::len).product()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.iter().any(SourceRange::is_empty)
    }

    /// The extent of each dimension.
    pub fn extents(&self) -> Vec<usize> {
        self.ranges.iter().map(SourceRange::len).collect()
    }

    /// The start of each dimension.
    pub fn starts(&self) -> Vec<isize> {
        self.ranges.iter().map(|r| r.start).collect()
    }
}

type MappingFn = Arc<dyn Fn(&[usize]) -> SourceRegion + Send + Sync>;

/// A connection mapping: sink neuron index → consumed source region.
///
/// # Examples
///
/// The paper's convolution mapping (Figure 5), for a sink indexed
/// `(y, x, c)` over a source of shape `(in_h, in_w, in_c)`:
///
/// ```
/// use latte_core::dsl::{Mapping, SourceRange, SourceRegion};
///
/// let (kernel, stride, pad, in_c) = (3isize, 1isize, 1isize, 8isize);
/// let conv = Mapping::new(move |idx| {
///     let in_y = idx[0] as isize * stride - pad;
///     let in_x = idx[1] as isize * stride - pad;
///     SourceRegion::new(vec![
///         SourceRange::new(in_y, in_y + kernel),
///         SourceRange::new(in_x, in_x + kernel),
///         SourceRange::new(0, in_c), // all input channels
///     ])
/// });
/// assert_eq!(conv.eval(&[0, 0, 5]).ranges[0], SourceRange::new(-1, 2));
/// ```
#[derive(Clone)]
pub struct Mapping {
    f: MappingFn,
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mapping(<closure>)")
    }
}

impl Mapping {
    /// Wraps a mapping closure.
    pub fn new(f: impl Fn(&[usize]) -> SourceRegion + Send + Sync + 'static) -> Self {
        Mapping { f: Arc::new(f) }
    }

    /// The identity mapping: sink neuron `(i, j, …)` consumes exactly
    /// source neuron `(i, j, …)`.
    pub fn one_to_one() -> Self {
        Mapping::new(|idx| {
            SourceRegion::new(
                idx.iter()
                    .map(|&i| SourceRange::single(i as isize))
                    .collect(),
            )
        })
    }

    /// Every sink neuron consumes the entire source ensemble of the given
    /// shape (a fully-connected layer's mapping).
    pub fn all_to_all(source_dims: Vec<usize>) -> Self {
        Mapping::new(move |_| {
            SourceRegion::new(
                source_dims
                    .iter()
                    .map(|&d| SourceRange::new(0, d as isize))
                    .collect(),
            )
        })
    }

    /// Evaluates the mapping at a sink index.
    pub fn eval(&self, sink_index: &[usize]) -> SourceRegion {
        (self.f)(sink_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_is_identity() {
        let m = Mapping::one_to_one();
        let r = m.eval(&[3, 7]);
        assert_eq!(r.ranges, vec![SourceRange::single(3), SourceRange::single(7)]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn all_to_all_covers_source() {
        let m = Mapping::all_to_all(vec![4, 5]);
        let r = m.eval(&[0]);
        assert_eq!(r.extents(), vec![4, 5]);
        assert_eq!(r.len(), 20);
    }

    #[test]
    fn region_len_and_starts() {
        let r = SourceRegion::new(vec![SourceRange::new(-1, 2), SourceRange::new(0, 3)]);
        assert_eq!(r.len(), 9);
        assert_eq!(r.starts(), vec![-1, 0]);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn reversed_range_rejected() {
        SourceRange::new(3, 1);
    }
}
