//! Ensembles: homogeneous collections of neurons.

use std::collections::BTreeMap;

use latte_tensor::Tensor;

use super::neuron::NeuronType;

/// What flavour of ensemble this is.
///
/// Mirrors the paper's `Ensemble` / `ActivationEnsemble` /
/// `NormalizationEnsemble` distinction plus the input-data ensembles
/// produced by data layers.
#[derive(Debug, Clone)]
pub enum EnsembleKind {
    /// An ordinary ensemble of neurons.
    Standard,
    /// An activation ensemble: one-to-one over its single input and
    /// eligible for in-place execution (its value/gradient buffers alias
    /// the source's when it is the sole consumer).
    Activation,
    /// A normalization ensemble: an opaque array-level operation, executed
    /// by a registered runtime kernel and never fused across.
    Normalization(NormalizationSpec),
    /// An input ensemble whose values are written by the runtime's data
    /// loader each iteration.
    Data,
    /// A concatenation ensemble: its value is the connected sources laid
    /// side by side along the innermost dimension (the building block of
    /// Inception-style multi-branch architectures). Sources must agree on
    /// every dimension except the last, and each connection must be the
    /// identity over its slice (use `Mapping::one_to_one`).
    Concat,
}

/// Specification of a normalization ensemble's array operation.
///
/// The compiler lowers this to `extern {op}_forward` / `extern
/// {op}_backward` calls with a fixed buffer ABI (see
/// `latte-core::synth`); the runtime dispatches by name through its kernel
/// registry, so downstream crates can register new operations.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizationSpec {
    /// Registry base name, e.g. `"softmax_loss"`.
    pub op: String,
    /// Scalar attributes forwarded to the kernel.
    pub attrs: BTreeMap<String, f64>,
    /// Extra per-batch-item state buffers `(suffix, shape, shared)` the
    /// kernel needs (e.g. softmax probabilities kept for the backward
    /// pass). `shared = true` allocates one copy for the whole batch
    /// (batch-norm statistics).
    pub state: Vec<(String, Vec<usize>, bool)>,
    /// Whether this ensemble's value buffer holds a per-item loss the
    /// solver should report and seed backward propagation from.
    pub loss: bool,
}

impl NormalizationSpec {
    /// Creates a spec with no attributes or state.
    pub fn new(op: impl Into<String>) -> Self {
        NormalizationSpec {
            op: op.into(),
            attrs: BTreeMap::new(),
            state: Vec::new(),
            loss: false,
        }
    }

    /// Marks this ensemble as a loss.
    pub fn loss(mut self) -> Self {
        self.loss = true;
        self
    }

    /// Adds a scalar attribute.
    pub fn attr(mut self, key: impl Into<String>, value: f64) -> Self {
        self.attrs.insert(key.into(), value);
        self
    }

    /// Adds a per-item state buffer.
    pub fn state(mut self, suffix: impl Into<String>, shape: Vec<usize>) -> Self {
        self.state.push((suffix.into(), shape, false));
        self
    }

    /// Adds a whole-batch (shared) state buffer.
    pub fn shared_state(mut self, suffix: impl Into<String>, shape: Vec<usize>) -> Self {
        self.state.push((suffix.into(), shape, true));
        self
    }
}

/// SoA storage for one neuron field across an ensemble.
///
/// The buffer shape is `unshared neuron dims ++ [vector length]`: a
/// dimension flagged in `shared_dims` holds identical values for all
/// neurons along it, so it is *dropped* from storage — the paper's weight
/// sharing (convolution filters shared across spatial positions).
#[derive(Debug, Clone)]
pub struct FieldStorage {
    /// Field name, matching a [`super::neuron::FieldSpec`] of the
    /// ensemble's neuron type.
    pub name: String,
    /// One flag per ensemble dimension; `true` means the field is shared
    /// along that dimension.
    pub shared_dims: Vec<bool>,
    /// Initial values, shaped `unshared dims ++ [vec_len]`.
    pub init: Tensor,
    /// When set, the field's storage aliases the same-named field of this
    /// *ensemble* instead of allocating fresh storage. Used by
    /// [`Net::unroll`](super::Net::unroll) to share parameters across the
    /// time-step clones of a recurrent network (gradients then accumulate
    /// across time, giving back-propagation through time).
    pub share_global: Option<String>,
}

/// Marks a field as learnable.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// The learnable field's name.
    pub field: String,
    /// Per-parameter learning-rate multiplier (the paper's
    /// `Param(:bias, 2.0)`).
    pub lr_mult: f32,
}

/// A homogeneous collection of neurons arranged in an N-dimensional grid.
///
/// Spatial ensembles use the dimension order `(y, x, c)` — row, column,
/// feature — so that the compiler's canonical tiled dimension is the
/// outermost loop.
#[derive(Debug, Clone)]
pub struct Ensemble {
    name: String,
    dims: Vec<usize>,
    kind: EnsembleKind,
    neuron: Option<NeuronType>,
    fields: Vec<FieldStorage>,
    params: Vec<ParamSpec>,
}

impl Ensemble {
    /// Creates a standard ensemble of `neuron`s with the given grid shape.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains a zero extent.
    pub fn new(name: impl Into<String>, dims: Vec<usize>, neuron: NeuronType) -> Self {
        Self::with_kind(name, dims, EnsembleKind::Standard, Some(neuron))
    }

    /// Creates an activation ensemble (one-to-one, in-place eligible).
    pub fn activation(name: impl Into<String>, dims: Vec<usize>, neuron: NeuronType) -> Self {
        Self::with_kind(name, dims, EnsembleKind::Activation, Some(neuron))
    }

    /// Creates a normalization ensemble.
    pub fn normalization(
        name: impl Into<String>,
        dims: Vec<usize>,
        spec: NormalizationSpec,
    ) -> Self {
        Self::with_kind(name, dims, EnsembleKind::Normalization(spec), None)
    }

    /// Creates a data (input) ensemble.
    pub fn data(name: impl Into<String>, dims: Vec<usize>) -> Self {
        Self::with_kind(name, dims, EnsembleKind::Data, None)
    }

    /// Creates a concatenation ensemble; `dims`' last extent must equal
    /// the sum of the connected sources' last extents.
    pub fn concat(name: impl Into<String>, dims: Vec<usize>) -> Self {
        Self::with_kind(name, dims, EnsembleKind::Concat, None)
    }

    fn with_kind(
        name: impl Into<String>,
        dims: Vec<usize>,
        kind: EnsembleKind,
        neuron: Option<NeuronType>,
    ) -> Self {
        assert!(
            !dims.is_empty() && dims.iter().all(|&d| d > 0),
            "ensemble dims must be non-empty and non-zero"
        );
        Ensemble {
            name: name.into(),
            dims,
            kind,
            neuron,
            fields: Vec::new(),
            params: Vec::new(),
        }
    }

    /// Attaches SoA storage for a neuron field.
    ///
    /// # Panics
    ///
    /// Panics if `shared_dims` does not have one flag per ensemble
    /// dimension.
    pub fn with_field(
        mut self,
        name: impl Into<String>,
        shared_dims: Vec<bool>,
        init: Tensor,
    ) -> Self {
        assert_eq!(
            shared_dims.len(),
            self.dims.len(),
            "shared_dims must have one flag per ensemble dimension"
        );
        self.fields.push(FieldStorage {
            name: name.into(),
            shared_dims,
            init,
            share_global: None,
        });
        self
    }

    /// Marks a field as a learnable parameter with a learning-rate
    /// multiplier.
    pub fn with_param(mut self, field: impl Into<String>, lr_mult: f32) -> Self {
        self.params.push(ParamSpec {
            field: field.into(),
            lr_mult,
        });
        self
    }

    /// The ensemble name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the ensemble (used by [`super::Net::unroll`]).
    pub(crate) fn rename(&mut self, name: String) {
        self.name = name;
    }

    /// Mutable field access (used by [`super::Net::unroll`] to install
    /// parameter sharing across time-step clones).
    pub(crate) fn fields_mut(&mut self) -> &mut [FieldStorage] {
        &mut self.fields
    }

    /// The neuron grid shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The number of neurons.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Always `false`; ensembles hold at least one neuron.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The ensemble flavour.
    pub fn kind(&self) -> &EnsembleKind {
        &self.kind
    }

    /// The neuron type, absent for data and normalization ensembles.
    pub fn neuron(&self) -> Option<&NeuronType> {
        self.neuron.as_ref()
    }

    /// Field storage declarations.
    pub fn fields(&self) -> &[FieldStorage] {
        &self.fields
    }

    /// Learnable-parameter declarations.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldStorage> {
        self.fields.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::stdlib::weighted_neuron;

    #[test]
    fn ensemble_len_is_dim_product() {
        let e = Ensemble::data("data", vec![3, 4, 5]);
        assert_eq!(e.len(), 60);
        assert!(matches!(e.kind(), EnsembleKind::Data));
    }

    #[test]
    fn fields_and_params_attach() {
        let e = Ensemble::new("fc1", vec![10], weighted_neuron())
            .with_field("weights", vec![false], Tensor::zeros(vec![10, 5]))
            .with_field("bias", vec![false], Tensor::zeros(vec![10, 1]))
            .with_param("weights", 1.0)
            .with_param("bias", 2.0);
        assert_eq!(e.fields().len(), 2);
        assert_eq!(e.params()[1].lr_mult, 2.0);
        assert!(e.field("weights").is_some());
        assert!(e.field("nope").is_none());
    }

    #[test]
    fn normalization_spec_builder() {
        let s = NormalizationSpec::new("softmax_loss")
            .attr("classes", 10.0)
            .state("prob", vec![10]);
        assert_eq!(s.attrs["classes"], 10.0);
        assert_eq!(s.state[0].0, "prob");
    }

    #[test]
    #[should_panic(expected = "one flag per ensemble dimension")]
    fn with_field_validates_shared_dims() {
        let _ = Ensemble::new("fc1", vec![10], weighted_neuron()).with_field(
            "weights",
            vec![false, true],
            Tensor::zeros(vec![10]),
        );
    }
}
