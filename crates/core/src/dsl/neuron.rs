//! Neuron types and the body-builder API.
//!
//! In the paper a neuron type is a Julia struct plus `@neuron forward` /
//! `@neuron backward` functions whose ASTs the compiler introspects. Rust
//! offers no such introspection, so here the user *writes the AST*: the
//! forward/backward bodies are closures that receive a [`BodyBuilder`] and
//! emit `latte-ir` statements against the neuron's canonical buffers
//! (`value`, `∇`, `inputs[c]`, `∇inputs[c]`, and user fields). The
//! compiler's synthesis phase later instantiates these bodies for a whole
//! ensemble, rewriting the array-of-structs field references to
//! struct-of-arrays buffers (Section 5.3 of the paper).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use latte_ir::{BufRef, Expr, IndexExpr, Stmt, UnaryOp};

/// Canonical pre-synthesis buffer names used inside neuron bodies.
///
/// Synthesis rewrites these to ensemble-qualified SoA buffers.
pub mod body_buf {
    /// The neuron's output activation.
    pub const VALUE: &str = "$value";
    /// The gradient propagated to this neuron (the paper's `∇`).
    pub const GRAD: &str = "$grad";

    /// The staged inputs of connection `c`.
    pub fn input(c: usize) -> String {
        format!("$in{c}")
    }

    /// The staged input gradients of connection `c` (the paper's
    /// `∇inputs`).
    pub fn grad_input(c: usize) -> String {
        format!("$gin{c}")
    }

    /// The user field `name`.
    pub fn field(name: &str) -> String {
        format!("$f_{name}")
    }

    /// The gradient of user field `name`.
    pub fn grad_field(name: &str) -> String {
        format!("$gf_{name}")
    }
}

/// How long a neuron field's vector is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldLen {
    /// A single scalar per (possibly shared) neuron.
    Scalar,
    /// One element per staged input of connection `c` — e.g. the weight
    /// vector of a [`WeightedNeuron`](crate::dsl::weighted_neuron).
    InputLen(usize),
    /// A fixed length.
    Fixed(usize),
}

/// Declaration of a user field on a neuron type.
#[derive(Debug, Clone)]
pub struct FieldSpec {
    /// Field name, unique within the neuron type.
    pub name: String,
    /// Vector length of the field.
    pub len: FieldLen,
    /// Whether a gradient buffer accompanies the field (learnable
    /// parameters set this).
    pub with_grad: bool,
}

type BodyFn = Arc<dyn Fn(&mut BodyBuilder) + Send + Sync>;

/// A user-defined neuron type: fields plus forward/backward bodies.
///
/// Equivalent to the paper's `@neuron type ... end` plus its
/// `@neuron forward` / `@neuron backward` definitions.
///
/// # Examples
///
/// A neuron that simply doubles its single input:
///
/// ```
/// use latte_core::dsl::NeuronType;
///
/// let doubler = NeuronType::builder("Doubler")
///     .forward(|b| {
///         let x = b.input(0, 0);
///         b.assign(b.value(), x.mul(b.lit(2.0)));
///     })
///     .backward(|b| {
///         let g = b.grad_expr();
///         b.accumulate(b.grad_input(0, 0), g.mul(b.lit(2.0)));
///     })
///     .build();
/// assert_eq!(doubler.name(), "Doubler");
/// ```
#[derive(Clone)]
pub struct NeuronType {
    name: String,
    fields: Vec<FieldSpec>,
    forward: BodyFn,
    backward: BodyFn,
}

impl fmt::Debug for NeuronType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NeuronType")
            .field("name", &self.name)
            .field("fields", &self.fields)
            .finish_non_exhaustive()
    }
}

impl NeuronType {
    /// Starts building a neuron type.
    pub fn builder(name: impl Into<String>) -> NeuronTypeBuilder {
        NeuronTypeBuilder {
            name: name.into(),
            fields: Vec::new(),
            forward: None,
            backward: None,
        }
    }

    /// The type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared user fields.
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// Instantiates the forward body for the given context, returning the
    /// emitted top-level statements.
    pub fn build_forward(&self, ctx: &BodyCtx) -> Vec<Stmt> {
        let mut b = BodyBuilder::new(ctx.clone());
        (self.forward)(&mut b);
        b.stmts
    }

    /// Instantiates the backward body for the given context.
    pub fn build_backward(&self, ctx: &BodyCtx) -> Vec<Stmt> {
        let mut b = BodyBuilder::new(ctx.clone());
        (self.backward)(&mut b);
        b.stmts
    }
}

/// Builder for [`NeuronType`].
pub struct NeuronTypeBuilder {
    name: String,
    fields: Vec<FieldSpec>,
    forward: Option<BodyFn>,
    backward: Option<BodyFn>,
}

impl NeuronTypeBuilder {
    /// Declares a non-learnable field.
    pub fn field(mut self, name: impl Into<String>, len: FieldLen) -> Self {
        self.fields.push(FieldSpec {
            name: name.into(),
            len,
            with_grad: false,
        });
        self
    }

    /// Declares a field with an accompanying gradient buffer (a learnable
    /// parameter, like `weights`/`∇weights` in the paper's Figure 3).
    pub fn field_with_grad(mut self, name: impl Into<String>, len: FieldLen) -> Self {
        self.fields.push(FieldSpec {
            name: name.into(),
            len,
            with_grad: true,
        });
        self
    }

    /// Sets the forward body.
    pub fn forward(mut self, f: impl Fn(&mut BodyBuilder) + Send + Sync + 'static) -> Self {
        self.forward = Some(Arc::new(f));
        self
    }

    /// Sets the backward body.
    pub fn backward(mut self, f: impl Fn(&mut BodyBuilder) + Send + Sync + 'static) -> Self {
        self.backward = Some(Arc::new(f));
        self
    }

    /// Finishes the neuron type.
    ///
    /// # Panics
    ///
    /// Panics if no forward body was given. A missing backward body
    /// defaults to an empty body (a neuron that stops gradient flow).
    pub fn build(self) -> NeuronType {
        NeuronType {
            name: self.name,
            fields: self.fields,
            forward: self
                .forward
                .unwrap_or_else(|| panic!("neuron type requires a forward body")),
            backward: self.backward.unwrap_or_else(|| Arc::new(|_| {})),
        }
    }
}

/// Sizes known at synthesis time, handed to neuron bodies.
///
/// Equivalent to what `length(neuron.inputs[1])` resolves to in the
/// paper's Julia bodies.
#[derive(Debug, Clone, Default)]
pub struct BodyCtx {
    /// Number of staged inputs per connection.
    pub input_lens: Vec<usize>,
    /// Resolved vector length per field name.
    pub field_lens: HashMap<String, usize>,
}

impl BodyCtx {
    /// Creates a context from connection input lengths and field lengths.
    pub fn new(input_lens: Vec<usize>, field_lens: HashMap<String, usize>) -> Self {
        BodyCtx {
            input_lens,
            field_lens,
        }
    }
}

/// Emits the statements of a neuron body.
///
/// Expressions index the canonical buffers of [`body_buf`]; synthesis later
/// rewrites them to ensemble-level SoA buffers.
#[derive(Debug)]
pub struct BodyBuilder {
    ctx: BodyCtx,
    stmts: Vec<Stmt>,
    fresh: usize,
}

impl BodyBuilder {
    fn new(ctx: BodyCtx) -> Self {
        BodyBuilder {
            ctx,
            stmts: Vec::new(),
            fresh: 0,
        }
    }

    /// The number of staged inputs of connection `c`.
    ///
    /// # Panics
    ///
    /// Panics if the ensemble has no connection `c`.
    pub fn num_inputs(&self, c: usize) -> usize {
        *self
            .ctx
            .input_lens
            .get(c)
            .unwrap_or_else(|| panic!("neuron body references missing connection {c}"))
    }

    /// The resolved vector length of field `name`.
    ///
    /// # Panics
    ///
    /// Panics if the neuron type has no such field.
    pub fn field_len(&self, name: &str) -> usize {
        *self
            .ctx
            .field_lens
            .get(name)
            .unwrap_or_else(|| panic!("neuron body references missing field `{name}`"))
    }

    /// A literal constant expression.
    pub fn lit(&self, v: f32) -> Expr {
        Expr::Const(v)
    }

    /// The neuron's output value, as a store destination.
    pub fn value(&self) -> BufRef {
        BufRef::new(body_buf::VALUE, vec![])
    }

    /// The neuron's output value, as an expression.
    pub fn value_expr(&self) -> Expr {
        Expr::Load(self.value())
    }

    /// The neuron's incoming gradient `∇`, as an expression.
    pub fn grad_expr(&self) -> Expr {
        Expr::load(body_buf::GRAD, vec![])
    }

    /// Input `idx` of connection `c`, as an expression.
    pub fn input(&self, c: usize, idx: impl Into<IndexExpr>) -> Expr {
        Expr::load(body_buf::input(c), vec![idx.into()])
    }

    /// Input-gradient slot `idx` of connection `c`, as a store destination.
    pub fn grad_input(&self, c: usize, idx: impl Into<IndexExpr>) -> BufRef {
        BufRef::new(body_buf::grad_input(c), vec![idx.into()])
    }

    /// Field element `name[idx]`, as an expression.
    pub fn field(&self, name: &str, idx: impl Into<IndexExpr>) -> Expr {
        Expr::load(body_buf::field(name), vec![idx.into()])
    }

    /// Field-gradient element `∇name[idx]`, as a store destination.
    pub fn grad_field(&self, name: &str, idx: impl Into<IndexExpr>) -> BufRef {
        BufRef::new(body_buf::grad_field(name), vec![idx.into()])
    }

    /// Emits `dest = value`.
    pub fn assign(&mut self, dest: BufRef, value: Expr) {
        self.stmts.push(Stmt::assign(dest, value));
    }

    /// Emits `dest += value`.
    pub fn accumulate(&mut self, dest: BufRef, value: Expr) {
        self.stmts.push(Stmt::accumulate(dest, value));
    }

    /// Emits `dest = max(dest, value)`.
    pub fn max_assign(&mut self, dest: BufRef, value: Expr) {
        self.stmts.push(Stmt::max_assign(dest, value));
    }

    /// Emits a loop over the staged inputs of connection `c`, passing the
    /// loop index to `f`.
    ///
    /// Each call to this method becomes its own top-level loop nest after
    /// synthesis (loop distribution), which keeps the GEMM pattern matcher
    /// simple.
    pub fn for_each_input(&mut self, c: usize, f: impl FnOnce(&mut BodyBuilder, IndexExpr)) {
        let len = self.num_inputs(c);
        self.repeat(len, f);
    }

    /// Emits a counted loop of the given extent with a fresh variable.
    pub fn repeat(&mut self, extent: usize, f: impl FnOnce(&mut BodyBuilder, IndexExpr)) {
        let var = format!("i{}", self.fresh);
        self.fresh += 1;
        let mut inner = BodyBuilder {
            ctx: self.ctx.clone(),
            stmts: Vec::new(),
            fresh: self.fresh,
        };
        f(&mut inner, IndexExpr::var(&var));
        self.fresh = inner.fresh;
        self.stmts.push(Stmt::for_loop(var, extent, inner.stmts));
    }

    /// Convenience: applies a unary function to an expression.
    pub fn apply(&self, op: UnaryOp, e: Expr) -> Expr {
        e.unary(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::stdlib::weighted_neuron;

    #[test]
    fn weighted_neuron_forward_structure() {
        let nt = weighted_neuron();
        let ctx = BodyCtx::new(
            vec![5],
            [("weights".to_string(), 5), ("bias".to_string(), 1)]
                .into_iter()
                .collect(),
        );
        let stmts = nt.build_forward(&ctx);
        // Statement 0: value = bias[0]; statement 1: loop accumulating the
        // dot product.
        assert_eq!(stmts.len(), 2);
        let printed = latte_ir::print_stmts(&stmts);
        assert!(printed.contains("$value = $f_bias[0]"), "{printed}");
        assert!(
            printed.contains("$value += ($in0[i0] * $f_weights[i0])"),
            "{printed}"
        );
    }

    #[test]
    fn weighted_neuron_backward_structure() {
        let nt = weighted_neuron();
        let ctx = BodyCtx::new(
            vec![3],
            [("weights".to_string(), 3), ("bias".to_string(), 1)]
                .into_iter()
                .collect(),
        );
        let stmts = nt.build_backward(&ctx);
        let printed = latte_ir::print_stmts(&stmts);
        assert!(printed.contains("$gin0[i0] += ($f_weights[i0] * $grad)"), "{printed}");
        assert!(printed.contains("$gf_weights[i1] += ($grad * $in0[i1])"), "{printed}");
        assert!(printed.contains("$gf_bias[0] += $grad"), "{printed}");
    }

    #[test]
    fn fresh_loop_vars_do_not_collide() {
        let nt = NeuronType::builder("TwoLoops")
            .forward(|b| {
                b.for_each_input(0, |b, i| {
                    b.accumulate(b.value(), b.input(0, i));
                });
                b.for_each_input(0, |b, i| {
                    b.accumulate(b.value(), b.input(0, i));
                });
            })
            .build();
        let ctx = BodyCtx::new(vec![4], HashMap::new());
        let stmts = nt.build_forward(&ctx);
        let printed = latte_ir::print_stmts(&stmts);
        assert!(printed.contains("for i0"), "{printed}");
        assert!(printed.contains("for i1"), "{printed}");
    }

    #[test]
    #[should_panic(expected = "missing connection")]
    fn referencing_missing_connection_panics() {
        let nt = NeuronType::builder("Bad")
            .forward(|b| {
                b.for_each_input(2, |b, i| {
                    b.accumulate(b.value(), b.input(2, i));
                });
            })
            .build();
        nt.build_forward(&BodyCtx::default());
    }

    #[test]
    fn default_backward_is_empty() {
        let nt = NeuronType::builder("FwdOnly")
            .forward(|b| b.assign(b.value(), b.lit(1.0)))
            .build();
        assert!(nt.build_backward(&BodyCtx::default()).is_empty());
    }
}
