//! The network: ensembles plus connections.

use super::ensemble::Ensemble;
use super::mapping::Mapping;
use crate::error::CompileError;

/// Opaque handle to an ensemble inside a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnsembleId(usize);

impl EnsembleId {
    /// The index of the ensemble in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A directed connection into a sink ensemble.
#[derive(Debug, Clone)]
pub struct Connection {
    /// The ensemble whose values are consumed.
    pub source: EnsembleId,
    /// The region of source neurons consumed by each sink neuron.
    pub mapping: Mapping,
    /// Whether the connection reads the *previous time step's* values
    /// (recurrent networks; see [`Net::unroll`]).
    pub recurrent: bool,
}

/// A neural network: a collection of connected ensembles (the paper's
/// `Net` type).
///
/// # Examples
///
/// ```
/// use latte_core::dsl::{Ensemble, Mapping, Net};
/// use latte_core::dsl::stdlib::weighted_neuron;
/// use latte_tensor::Tensor;
///
/// let mut net = Net::new(8);
/// let data = net.add(Ensemble::data("data", vec![4]));
/// let fc = net.add(
///     Ensemble::new("fc1", vec![2], weighted_neuron())
///         .with_field("weights", vec![false], Tensor::zeros(vec![2, 4]))
///         .with_field("bias", vec![false], Tensor::zeros(vec![2, 1]))
///         .with_param("weights", 1.0)
///         .with_param("bias", 2.0),
/// );
/// net.connect(data, fc, Mapping::all_to_all(vec![4]));
/// assert_eq!(net.batch(), 8);
/// assert_eq!(net.topo_order().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Net {
    batch: usize,
    ensembles: Vec<Ensemble>,
    /// Inbound connections per ensemble, in `add_connections` order (the
    /// order neuron bodies see as `inputs[0]`, `inputs[1]`, …).
    connections: Vec<Vec<Connection>>,
}

impl Net {
    /// Creates an empty network with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(batch: usize) -> Self {
        assert!(batch > 0, "batch size must be non-zero");
        Net {
            batch,
            ensembles: Vec::new(),
            connections: Vec::new(),
        }
    }

    /// The training/inference batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Adds an ensemble, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if an ensemble with the same name already exists.
    pub fn add(&mut self, ensemble: Ensemble) -> EnsembleId {
        assert!(
            self.find(ensemble.name()).is_none(),
            "duplicate ensemble name `{}`",
            ensemble.name()
        );
        self.ensembles.push(ensemble);
        self.connections.push(Vec::new());
        EnsembleId(self.ensembles.len() - 1)
    }

    /// Connects `source` to `sink` with the given mapping (the paper's
    /// `add_connections`).
    pub fn connect(&mut self, source: EnsembleId, sink: EnsembleId, mapping: Mapping) {
        self.connections[sink.0].push(Connection {
            source,
            mapping,
            recurrent: false,
        });
    }

    /// Connects `source` to `sink` with a *recurrent* edge: the sink reads
    /// the source's previous-time-step values. Recurrent edges are ignored
    /// by topological ordering and realized by [`Net::unroll`].
    pub fn connect_recurrent(&mut self, source: EnsembleId, sink: EnsembleId, mapping: Mapping) {
        self.connections[sink.0].push(Connection {
            source,
            mapping,
            recurrent: true,
        });
    }

    /// The ensemble behind a handle.
    pub fn ensemble(&self, id: EnsembleId) -> &Ensemble {
        &self.ensembles[id.0]
    }

    /// All ensembles in insertion order.
    pub fn ensembles(&self) -> impl Iterator<Item = (EnsembleId, &Ensemble)> {
        self.ensembles
            .iter()
            .enumerate()
            .map(|(i, e)| (EnsembleId(i), e))
    }

    /// The number of ensembles.
    pub fn len(&self) -> usize {
        self.ensembles.len()
    }

    /// Whether the network has no ensembles.
    pub fn is_empty(&self) -> bool {
        self.ensembles.is_empty()
    }

    /// Inbound connections of an ensemble.
    pub fn connections(&self, id: EnsembleId) -> &[Connection] {
        &self.connections[id.0]
    }

    /// Looks up an ensemble by name.
    pub fn find(&self, name: &str) -> Option<EnsembleId> {
        self.ensembles
            .iter()
            .position(|e| e.name() == name)
            .map(EnsembleId)
    }

    /// The number of non-recurrent consumers of each ensemble.
    pub fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.ensembles.len()];
        for conns in &self.connections {
            for c in conns {
                if !c.recurrent {
                    counts[c.source.0] += 1;
                }
            }
        }
        counts
    }

    /// Unrolls a recurrent network over `steps` time steps.
    ///
    /// Every ensemble is cloned per step as `"{name}@t{k}"`; non-recurrent
    /// connections stay within a step, recurrent connections read the
    /// previous step's clone (step 0 reads a zero-filled data ensemble
    /// `"{name}@init"`). Parameters of clones for `t > 0` alias the step-0
    /// buffers, so gradients accumulate across time — standard
    /// back-propagation through time with full weight sharing.
    ///
    /// The result contains no recurrent edges and compiles directly.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn unroll(&self, steps: usize) -> Net {
        assert!(steps > 0, "unroll requires at least one step");
        let mut out = Net::new(self.batch);
        let step_name = |name: &str, t: usize| format!("{name}@t{t}");
        // Zero state feeding recurrent edges at step 0.
        let mut inits: Vec<(usize, EnsembleId)> = Vec::new();
        for (sink, conns) in self.connections.iter().enumerate() {
            let _ = sink;
            for c in conns {
                if c.recurrent && !inits.iter().any(|(s, _)| *s == c.source.0) {
                    let src = &self.ensembles[c.source.0];
                    let id = out.add(Ensemble::data(
                        format!("{}@init", src.name()),
                        src.dims().to_vec(),
                    ));
                    inits.push((c.source.0, id));
                }
            }
        }
        let mut ids: Vec<Vec<EnsembleId>> = Vec::with_capacity(steps);
        for t in 0..steps {
            let mut step_ids = Vec::with_capacity(self.ensembles.len());
            for ens in &self.ensembles {
                let mut e = ens.clone();
                e.rename(step_name(ens.name(), t));
                if t > 0 {
                    for f in e.fields_mut() {
                        if f.share_global.is_none() {
                            f.share_global = Some(step_name(ens.name(), 0));
                        }
                    }
                }
                step_ids.push(out.add(e));
            }
            ids.push(step_ids);
        }
        for t in 0..steps {
            for (sink, conns) in self.connections.iter().enumerate() {
                for c in conns {
                    let source = if c.recurrent {
                        if t == 0 {
                            inits
                                .iter()
                                .find(|(s, _)| *s == c.source.0)
                                .expect("init ensemble exists")
                                .1
                        } else {
                            ids[t - 1][c.source.0]
                        }
                    } else {
                        ids[t][c.source.0]
                    };
                    out.connect(source, ids[t][sink], c.mapping.clone());
                }
            }
        }
        out
    }

    /// Topological order over non-recurrent connections.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Cycle`] when the non-recurrent sub-graph has
    /// a cycle (a recurrent network missing `recurrent = true` flags).
    pub fn topo_order(&self) -> Result<Vec<EnsembleId>, CompileError> {
        let n = self.ensembles.len();
        let mut indegree = vec![0usize; n];
        for (sink, conns) in self.connections.iter().enumerate() {
            indegree[sink] = conns.iter().filter(|c| !c.recurrent).count();
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        // Keep insertion order stable for deterministic output.
        ready.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::from(ready);
        while let Some(next) = queue.pop_front() {
            order.push(EnsembleId(next));
            for (sink, conns) in self.connections.iter().enumerate() {
                for c in conns {
                    if !c.recurrent && c.source.0 == next {
                        indegree[sink] -= 1;
                        if indegree[sink] == 0 {
                            queue.push_back(sink);
                        }
                    }
                }
            }
        }
        if order.len() != n {
            let stuck: Vec<String> = (0..n)
                .filter(|&i| indegree[i] > 0)
                .map(|i| self.ensembles[i].name().to_string())
                .collect();
            return Err(CompileError::Cycle { ensembles: stuck });
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::stdlib::relu_neuron;

    fn chain(names: &[&str]) -> (Net, Vec<EnsembleId>) {
        let mut net = Net::new(1);
        let ids: Vec<EnsembleId> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                if i == 0 {
                    net.add(Ensemble::data(*n, vec![4]))
                } else {
                    net.add(Ensemble::activation(*n, vec![4], relu_neuron()))
                }
            })
            .collect();
        for w in ids.windows(2) {
            net.connect(w[0], w[1], Mapping::one_to_one());
        }
        (net, ids)
    }

    #[test]
    fn topo_order_follows_chain() {
        let (net, ids) = chain(&["a", "b", "c"]);
        assert_eq!(net.topo_order().unwrap(), ids);
    }

    #[test]
    fn cycle_is_detected() {
        let (mut net, ids) = chain(&["a", "b", "c"]);
        net.connect(ids[2], ids[1], Mapping::one_to_one());
        let err = net.topo_order().unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn recurrent_edges_do_not_create_cycles() {
        let (mut net, ids) = chain(&["a", "b", "c"]);
        net.connect_recurrent(ids[2], ids[1], Mapping::one_to_one());
        assert!(net.topo_order().is_ok());
    }

    #[test]
    fn consumer_counts_ignore_recurrent() {
        let (mut net, ids) = chain(&["a", "b", "c"]);
        net.connect_recurrent(ids[2], ids[0], Mapping::one_to_one());
        let counts = net.consumer_counts();
        assert_eq!(counts, vec![1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "duplicate ensemble name")]
    fn duplicate_names_rejected() {
        let mut net = Net::new(1);
        net.add(Ensemble::data("x", vec![1]));
        net.add(Ensemble::data("x", vec![1]));
    }

    #[test]
    fn find_by_name() {
        let (net, ids) = chain(&["a", "b", "c"]);
        assert_eq!(net.find("b"), Some(ids[1]));
        assert_eq!(net.find("zzz"), None);
    }
}
