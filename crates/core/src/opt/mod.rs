//! Compiler optimizations over the synthesized program: GEMM pattern
//! matching, loop tiling, cross-layer fusion, and parallelization.

mod pattern;
mod schedule;

pub use pattern::pattern_match;
pub use schedule::{parallelize, tile_and_fuse, ScheduleStats};
