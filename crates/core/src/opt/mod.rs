//! Compiler optimizations over the synthesized program: GEMM pattern
//! matching, loop tiling, cross-layer fusion, and parallelization.

mod pattern;
#[cfg(any(test, feature = "sabotage"))]
pub mod sabotage;
mod schedule;
mod stepshare;

pub use pattern::pattern_match;
pub use schedule::{fuse_chains, parallelize, tile_and_fuse, tile_untiled, ScheduleStats};
pub use stepshare::{share_steps, ShareStats};
