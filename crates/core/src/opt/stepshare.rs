//! Step-body sharing for unrolled recurrent networks.
//!
//! [`Net::unroll`](crate::dsl::Net::unroll) clones every ensemble once
//! per time step, so an unrolled LSTM compiles `T` copies of identical
//! per-step IR whose only difference is the `@t{k}` suffix in buffer
//! names. This pass detects those clone families *after* the whole
//! optimization pipeline has run (so tiling and fusion have already had
//! their say — a step that fused differently simply fails the
//! equivalence check) and marks every later member with a
//! [`StepShare`] annotation naming the first member and the `@t` offset
//! between them. The runtime's lowering then compiles one body per
//! family and rebinds buffers through the rename instead of re-lowering
//! each step, making plan construction for a length-`T` unroll cost
//! O(1) step bodies instead of O(T).
//!
//! The equivalence check is exact, not structural: a candidate is
//! shared only when the representative's printed statements, with every
//! `@t{j}` buffer occurrence shifted by the step delta, are *textually
//! identical* to the candidate's printed statements. Boundary steps
//! (step 0 reads `@init` ensembles instead of a previous step) fail the
//! check and become representatives of their own, which is what makes
//! the middle of the unroll — the part that grows with `T` — the shared
//! region.

use std::collections::HashMap;

use latte_ir::print_stmts;

use crate::program::{Group, StepShare};

/// Counters produced by [`share_steps`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ShareStats {
    /// Groups annotated to reuse a representative's body.
    pub shared: usize,
    /// IR statements (nested included) inside those groups — the
    /// duplicate IR the lowering no longer compiles.
    pub stmts_deduped: usize,
}

/// Extracts the uniform `@t{k}` step index of a group, if every
/// ensemble the group computes carries the same one.
fn group_step(group: &Group) -> Option<usize> {
    let mut step = None;
    for ens in &group.ensembles {
        let at = ens.rfind("@t")?;
        let k: usize = ens[at + 2..].parse().ok()?;
        match step {
            None => step = Some(k),
            Some(s) if s == k => {}
            Some(_) => return None,
        }
    }
    step
}

/// The family key: the group's ensembles with their step suffix
/// replaced by a placeholder, joined in order.
fn family_key(group: &Group, step: usize) -> String {
    let suffix = format!("@t{step}");
    group
        .ensembles
        .iter()
        .map(|e| e.replace(&suffix, "@t#"))
        .collect::<Vec<_>>()
        .join("+")
}

/// Rewrites every `@t{j}` occurrence in `text` to `@t{j + delta}`.
/// Returns `None` when any resulting index would be negative (the
/// rename would name a step that does not exist).
fn shift_steps(text: &str, delta: i64) -> Option<String> {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(at) = text[i..].find("@t") {
        let at = i + at;
        let digits_start = at + 2;
        let mut digits_end = digits_start;
        while digits_end < bytes.len() && bytes[digits_end].is_ascii_digit() {
            digits_end += 1;
        }
        if digits_end == digits_start {
            // "@t" without digits (not a step suffix — e.g. `@tile`).
            out.push_str(&text[i..digits_end]);
            i = digits_end;
            continue;
        }
        let j: i64 = text[digits_start..digits_end].parse().ok()?;
        let shifted = j + delta;
        if shifted < 0 {
            return None;
        }
        out.push_str(&text[i..digits_start]);
        out.push_str(&shifted.to_string());
        i = digits_end;
    }
    out.push_str(&text[i..]);
    Some(out)
}

/// Counts statements, nested included (matches the pass manager's
/// IR-size metric).
fn count_stmts(stmts: &[latte_ir::Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            latte_ir::Stmt::For(l) => 1 + count_stmts(&l.body),
            _ => 1,
        })
        .sum()
}

/// Annotates α-equivalent unrolled step groups within one phase's
/// groups (must be in execution order). See the module docs for the
/// sharing rule.
pub fn share_steps(groups: &mut [Group]) -> ShareStats {
    let mut stats = ShareStats::default();
    // Family key → (rep index, rep step). The representative is the
    // earliest group in execution order that later members match.
    let mut families: HashMap<String, (usize, usize)> = HashMap::new();
    // Printed bodies, computed lazily and cached by group index.
    let mut printed: Vec<Option<String>> = vec![None; groups.len()];
    for gi in 0..groups.len() {
        let Some(step) = group_step(&groups[gi]) else {
            continue;
        };
        let key = family_key(&groups[gi], step);
        let Some(&(rep_idx, rep_step)) = families.get(&key) else {
            families.insert(key, (gi, step));
            continue;
        };
        let delta = step as i64 - rep_step as i64;
        if printed[rep_idx].is_none() {
            printed[rep_idx] = Some(print_stmts(&groups[rep_idx].stmts));
        }
        if printed[gi].is_none() {
            printed[gi] = Some(print_stmts(&groups[gi].stmts));
        }
        let equivalent = groups[gi].barrier == groups[rep_idx].barrier
            && shift_steps(printed[rep_idx].as_ref().unwrap(), delta).as_deref()
                == Some(printed[gi].as_ref().unwrap().as_str());
        if equivalent {
            groups[gi].meta.share_body_with = Some(StepShare {
                group: groups[rep_idx].name.clone(),
                delta,
            });
            stats.shared += 1;
            stats.stmts_deduped += count_stmts(&groups[gi].stmts);
        } else {
            // Boundary step (e.g. `@init` reads) — it becomes the
            // representative later steps are compared against.
            families.insert(key, (gi, step));
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_steps_rewrites_all_occurrences() {
        assert_eq!(
            shift_steps("lstm_h@t3.value += x@t3$in0 * h@t2", 2).as_deref(),
            Some("lstm_h@t5.value += x@t5$in0 * h@t4")
        );
        assert_eq!(shift_steps("h@t1 reads h@t0", -1), None);
    }

    #[test]
    fn shift_steps_negative_index_is_none() {
        assert_eq!(shift_steps("h@t0.value", -1), None);
    }

    #[test]
    fn shift_steps_ignores_non_step_at_t() {
        assert_eq!(
            shift_steps("x@tile + y@t2", 1).as_deref(),
            Some("x@tile + y@t3")
        );
    }
}
