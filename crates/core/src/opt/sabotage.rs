//! Deliberately broken compiler transformations, for harness self-tests.
//!
//! A correctness harness that has never caught a bug proves nothing. The
//! mutations here simulate the two classic ways an optimization pass goes
//! wrong — a loop bound miscomputed during tiling, and a reduction extent
//! dropped during GEMM pattern matching — so the `latte-oracle`
//! differential harness can demonstrate that it *does* flag a
//! miscompiled program (see its `sabotage_is_caught` tests).
//!
//! Gated behind the `sabotage` cargo feature (and `cfg(test)`): these
//! functions mutate a compiled program into one that silently computes
//! wrong answers, which is exactly what must never ship.

use latte_ir::Stmt;

use crate::program::Group;

/// Shrinks the extent of the first tiled loop with extent > 1 by one,
/// simulating an off-by-one in tile-count computation. Returns whether a
/// loop was mutated.
pub fn shrink_first_tiled_loop(groups: &mut [Group]) -> bool {
    fn walk(stmts: &mut [Stmt]) -> bool {
        for s in stmts {
            if let Stmt::For(l) = s {
                if l.annot.tiled.is_some() && l.extent > 1 {
                    l.extent -= 1;
                    return true;
                }
                if walk(&mut l.body) {
                    return true;
                }
            }
        }
        false
    }
    groups.iter_mut().any(|g| walk(&mut g.stmts))
}

/// Shrinks the reduction depth `k` of the first matched GEMM with `k > 1`
/// by one, simulating a dropped fusion/pattern-match guard that loses the
/// last accumulation term. Returns whether a GEMM was mutated.
pub fn shrink_gemm_reduction(groups: &mut [Group]) -> bool {
    fn walk(stmts: &mut [Stmt]) -> bool {
        for s in stmts {
            // collapsible_match suggests a pattern guard, but guards
            // cannot take the &mut borrow `walk` needs.
            #[allow(clippy::collapsible_match)]
            match s {
                Stmt::Gemm(g) if g.k > 1 => {
                    g.k -= 1;
                    return true;
                }
                Stmt::For(l) => {
                    if walk(&mut l.body) {
                        return true;
                    }
                }
                _ => {}
            }
        }
        false
    }
    groups.iter_mut().any(|g| walk(&mut g.stmts))
}

/// Shrinks the extent of the first loop (tiled or not) with extent > 1,
/// for programs compiled without tiling. Returns whether a loop was
/// mutated.
pub fn shrink_first_loop(groups: &mut [Group]) -> bool {
    fn walk(stmts: &mut [Stmt]) -> bool {
        for s in stmts {
            if let Stmt::For(l) = s {
                if l.extent > 1 {
                    l.extent -= 1;
                    return true;
                }
                if walk(&mut l.body) {
                    return true;
                }
            }
        }
        false
    }
    groups.iter_mut().any(|g| walk(&mut g.stmts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_ir::{Loop, LoopAnnot, Stmt, TileInfo};

    fn group_with(stmts: Vec<Stmt>) -> Group {
        Group {
            name: "g".into(),
            ensembles: Vec::new(),
            phase: crate::program::Phase::Forward,
            stmts,
            barrier: false,
            meta: Default::default(),
        }
    }

    fn tiled_loop(extent: usize) -> Stmt {
        Stmt::For(Loop {
            var: "i".into(),
            extent,
            annot: LoopAnnot {
                tiled: Some(TileInfo { tile_size: 2, dep_distance: 0 }),
                ..Default::default()
            },
            body: Vec::new(),
        })
    }

    #[test]
    fn shrinks_only_the_first_tiled_loop() {
        let mut groups = vec![group_with(vec![
            Stmt::For(Loop {
                var: "o".into(),
                extent: 4,
                annot: LoopAnnot::default(),
                body: vec![tiled_loop(3), tiled_loop(5)],
            }),
        ])];
        assert!(shrink_first_tiled_loop(&mut groups));
        let Stmt::For(outer) = &groups[0].stmts[0] else { unreachable!() };
        assert_eq!(outer.extent, 4, "untiled outer loop must stay intact");
        let Stmt::For(first) = &outer.body[0] else { unreachable!() };
        let Stmt::For(second) = &outer.body[1] else { unreachable!() };
        assert_eq!((first.extent, second.extent), (2, 5));
    }

    #[test]
    fn reports_when_nothing_is_mutable() {
        let mut groups = vec![group_with(vec![tiled_loop(1)])];
        assert!(!shrink_first_tiled_loop(&mut groups));
        assert!(!shrink_gemm_reduction(&mut groups));
    }
}
