//! Deliberately broken compiler transformations, for harness self-tests.
//!
//! A correctness harness that has never caught a bug proves nothing. The
//! mutations here simulate the two classic ways an optimization pass goes
//! wrong — a loop bound miscomputed during tiling, and a reduction extent
//! dropped during GEMM pattern matching — so the `latte-oracle`
//! differential harness can demonstrate that it *does* flag a
//! miscompiled program (see its `sabotage_is_caught` tests).
//!
//! Gated behind the `sabotage` cargo feature (and `cfg(test)`): these
//! functions mutate a compiled program into one that silently computes
//! wrong answers, which is exactly what must never ship.

use latte_ir::Stmt;

use crate::compile::OptLevel;
use crate::pass::{Pass, PassContext, PipelineState};
use crate::program::{CompileStats, Group};

/// Shrinks the extent of the first tiled loop with extent > 1 by one,
/// simulating an off-by-one in tile-count computation. Returns whether a
/// loop was mutated.
pub fn shrink_first_tiled_loop(groups: &mut [Group]) -> bool {
    fn walk(stmts: &mut [Stmt]) -> bool {
        for s in stmts {
            if let Stmt::For(l) = s {
                if l.annot.tiled.is_some() && l.extent > 1 {
                    l.extent -= 1;
                    return true;
                }
                if walk(&mut l.body) {
                    return true;
                }
            }
        }
        false
    }
    groups.iter_mut().any(|g| walk(&mut g.stmts))
}

/// Shrinks the reduction depth `k` of the first matched GEMM with `k > 1`
/// by one, simulating a dropped fusion/pattern-match guard that loses the
/// last accumulation term. Returns whether a GEMM was mutated.
pub fn shrink_gemm_reduction(groups: &mut [Group]) -> bool {
    fn walk(stmts: &mut [Stmt]) -> bool {
        for s in stmts {
            // collapsible_match suggests a pattern guard, but guards
            // cannot take the &mut borrow `walk` needs.
            #[allow(clippy::collapsible_match)]
            match s {
                Stmt::Gemm(g) if g.k > 1 => {
                    g.k -= 1;
                    return true;
                }
                Stmt::For(l) => {
                    if walk(&mut l.body) {
                        return true;
                    }
                }
                _ => {}
            }
        }
        false
    }
    groups.iter_mut().any(|g| walk(&mut g.stmts))
}

/// Shrinks the extent of the first loop (tiled or not) with extent > 1,
/// for programs compiled without tiling. Returns whether a loop was
/// mutated.
pub fn shrink_first_loop(groups: &mut [Group]) -> bool {
    fn walk(stmts: &mut [Stmt]) -> bool {
        for s in stmts {
            if let Stmt::For(l) = s {
                if l.extent > 1 {
                    l.extent -= 1;
                    return true;
                }
                if walk(&mut l.body) {
                    return true;
                }
            }
        }
        false
    }
    groups.iter_mut().any(|g| walk(&mut g.stmts))
}

/// Inflates the extent of the first innermost loop (one with no nested
/// loop in its body) far past any plausible buffer size, simulating a
/// bound miscomputed *upward* — the failure the differential harness
/// cannot see (the program would fault or read garbage before producing
/// comparable numbers) but the IR verifier rejects statically: buffer
/// references indexed by that loop now range outside their declarations.
/// Returns whether a loop was mutated.
pub fn inflate_innermost_loop(groups: &mut [Group]) -> bool {
    fn walk(stmts: &mut [Stmt]) -> bool {
        for s in stmts {
            if let Stmt::For(l) = s {
                if walk(&mut l.body) {
                    return true;
                }
                if !l.body.is_empty() {
                    l.extent += 1 << 20;
                    return true;
                }
            }
        }
        false
    }
    groups.iter_mut().any(|g| walk(&mut g.stmts))
}

/// Redirects the destination of the first scalar assignment to a buffer
/// no declaration provides — a dangling reference, as left behind by a
/// rewrite that renamed a buffer but missed a use. Returns whether a
/// store was mutated.
pub fn dangle_first_store(groups: &mut [Group]) -> bool {
    fn walk(stmts: &mut [Stmt]) -> bool {
        for s in stmts {
            match s {
                Stmt::Assign(a) => {
                    a.dest.buffer = "__sabotaged_dangling".into();
                    return true;
                }
                // Not a guard: guards cannot borrow the binding mutably.
                #[allow(clippy::collapsible_match)]
                Stmt::For(l) => {
                    if walk(&mut l.body) {
                        return true;
                    }
                }
                _ => {}
            }
        }
        false
    }
    groups.iter_mut().any(|g| walk(&mut g.stmts))
}

/// Which corruption [`CorruptIrPass`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Inflate an innermost loop bound past its buffers
    /// ([`inflate_innermost_loop`]).
    BadLoopBound,
    /// Point a store at an undeclared buffer ([`dangle_first_store`]).
    DanglingBufRef,
}

/// A deliberately broken compiler pass, appended to a
/// [`crate::PassManager`] by the verifier's negative tests: it corrupts
/// the IR in place, and compilation must fail with
/// [`crate::CompileError::Verify`] naming this pass — proof the
/// inter-pass checker actually stands between a buggy rewrite and the
/// runtime.
pub struct CorruptIrPass(pub Corruption);

impl Pass for CorruptIrPass {
    fn name(&self) -> &'static str {
        "corrupt-ir"
    }

    fn enabled(&self, _opt: &OptLevel) -> bool {
        true
    }

    fn run(&self, state: &mut PipelineState, _ctx: &PassContext<'_>, _stats: &mut CompileStats) {
        let hit = match self.0 {
            Corruption::BadLoopBound => {
                inflate_innermost_loop(&mut state.forward)
                    || inflate_innermost_loop(&mut state.backward)
            }
            Corruption::DanglingBufRef => {
                dangle_first_store(&mut state.forward) || dangle_first_store(&mut state.backward)
            }
        };
        assert!(hit, "program had nothing to corrupt");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_ir::{Loop, LoopAnnot, Stmt, TileInfo};

    fn group_with(stmts: Vec<Stmt>) -> Group {
        Group {
            name: "g".into(),
            ensembles: Vec::new(),
            phase: crate::program::Phase::Forward,
            stmts,
            barrier: false,
            meta: Default::default(),
        }
    }

    fn tiled_loop(extent: usize) -> Stmt {
        Stmt::For(Loop {
            var: "i".into(),
            extent,
            annot: LoopAnnot {
                tiled: Some(TileInfo { tile_size: 2, dep_distance: 0 }),
                ..Default::default()
            },
            body: Vec::new(),
        })
    }

    #[test]
    fn shrinks_only_the_first_tiled_loop() {
        let mut groups = vec![group_with(vec![
            Stmt::For(Loop {
                var: "o".into(),
                extent: 4,
                annot: LoopAnnot::default(),
                body: vec![tiled_loop(3), tiled_loop(5)],
            }),
        ])];
        assert!(shrink_first_tiled_loop(&mut groups));
        let Stmt::For(outer) = &groups[0].stmts[0] else { unreachable!() };
        assert_eq!(outer.extent, 4, "untiled outer loop must stay intact");
        let Stmt::For(first) = &outer.body[0] else { unreachable!() };
        let Stmt::For(second) = &outer.body[1] else { unreachable!() };
        assert_eq!((first.extent, second.extent), (2, 5));
    }

    #[test]
    fn reports_when_nothing_is_mutable() {
        let mut groups = vec![group_with(vec![tiled_loop(1)])];
        assert!(!shrink_first_tiled_loop(&mut groups));
        assert!(!shrink_gemm_reduction(&mut groups));
    }

    use crate::dsl::stdlib::{relu_neuron, weighted_neuron};
    use crate::dsl::{Ensemble, Mapping, Net};
    use crate::{compile_with, CompileError, OptLevel, PassManager};
    use latte_tensor::{init, Tensor};

    /// data[8] → fc1[4] → relu: enough structure for every pipeline
    /// stage to fire.
    fn fc_net() -> Net {
        let mut net = Net::new(2);
        let data = net.add(Ensemble::data("data", vec![8]));
        let fc1 = net.add(
            Ensemble::new("fc1", vec![4], weighted_neuron())
                .with_field("weights", vec![false], init::xavier(vec![4, 8], 8, 1))
                .with_field("bias", vec![false], Tensor::zeros(vec![4, 1]))
                .with_param("weights", 1.0)
                .with_param("bias", 2.0),
        );
        net.connect(data, fc1, Mapping::all_to_all(vec![8]));
        let relu = net.add(Ensemble::activation("relu1", vec![4], relu_neuron()));
        net.connect(fc1, relu, Mapping::one_to_one());
        net
    }

    fn corrupted_compile(opt: OptLevel, corruption: Corruption) -> CompileError {
        let mut mgr = PassManager::standard();
        mgr.push(Box::new(CorruptIrPass(corruption)));
        compile_with(&fc_net(), &opt, &mgr.with_verify(true))
            .expect_err("corrupted IR must not compile")
    }

    #[test]
    fn verifier_rejects_inflated_loop_bound() {
        let err = corrupted_compile(OptLevel::full(), Corruption::BadLoopBound);
        let CompileError::Verify { pass, detail } = &err else {
            panic!("expected Verify error, got {err:?}");
        };
        assert_eq!(pass, "corrupt-ir");
        assert!(
            detail.contains("outside"),
            "diagnostic should pin the out-of-range reference: {detail}"
        );
    }

    #[test]
    fn verifier_rejects_dangling_buffer_ref() {
        let err = corrupted_compile(OptLevel::none(), Corruption::DanglingBufRef);
        let CompileError::Verify { pass, detail } = &err else {
            panic!("expected Verify error, got {err:?}");
        };
        assert_eq!(pass, "corrupt-ir");
        assert!(
            detail.contains("undeclared buffer `__sabotaged_dangling`"),
            "diagnostic should name the dangling buffer: {detail}"
        );
    }

    #[test]
    fn verifier_off_lets_corruption_through() {
        // The same corrupted pipeline with verification forced off
        // "compiles" — demonstrating the verifier, not some other stage,
        // is what catches it.
        let mut mgr = PassManager::standard();
        mgr.push(Box::new(CorruptIrPass(Corruption::BadLoopBound)));
        let compiled = compile_with(&fc_net(), &OptLevel::full(), &mgr.with_verify(false));
        assert!(compiled.is_ok());
    }
}
