//! Library-kernel pattern matching (the paper's Section 5.4.1).
//!
//! Recognizes synthesized multiply-accumulate loop nests of the form
//!
//! ```text
//! for v1 … for vL { C[f(v)] += A[g(v)] * B[h(v)] }
//! ```
//!
//! where every index is affine in the loop variables, and rewrites them to
//! a single [`GemmStmt`] executed by the blocked GEMM kernel (the stand-in
//! for MKL `sgemm`). The classification is exact: the flat affine index of
//! each operand must decompose into canonical row-major flattenings of the
//! `m`, `n`, and `k` variable sets, so a successful match is a proof that
//! the nest *is* a matrix multiplication.

use std::collections::HashMap;

use latte_ir::{
    Assign, AssignOp, BinOp, BufRef, Expr, GemmDim, GemmStmt, GemmTiling, IndexExpr, Stmt,
};
use latte_tensor::Shape;

use crate::program::Group;

/// Rewrites every matchable nest in every group; returns the number of
/// GEMMs produced.
pub fn pattern_match(groups: &mut [Group], shapes: &HashMap<String, Shape>) -> usize {
    let mut matched = 0;
    for group in groups.iter_mut() {
        for stmt in group.stmts.iter_mut() {
            if let Some(gemm) = match_nest(stmt, shapes) {
                *stmt = Stmt::Gemm(gemm);
                matched += 1;
            }
        }
    }
    matched
}

/// One loop of a perfect nest.
#[derive(Debug, Clone)]
struct NestVar {
    name: String,
    extent: usize,
}

/// Attempts to match one top-level statement as a GEMM.
fn match_nest(stmt: &Stmt, shapes: &HashMap<String, Shape>) -> Option<GemmStmt> {
    // Peel the perfect nest.
    let mut vars: Vec<NestVar> = Vec::new();
    let mut cur = stmt;
    let assign: &Assign = loop {
        match cur {
            Stmt::For(l) if l.body.len() == 1 => {
                vars.push(NestVar {
                    name: l.var.clone(),
                    extent: l.extent,
                });
                cur = &l.body[0];
            }
            Stmt::Assign(a) => break a,
            _ => return None,
        }
    };
    if assign.op != AssignOp::Add {
        return None;
    }
    let (load_a, load_b) = match &assign.value {
        Expr::Binary(BinOp::Mul, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Load(ra), Expr::Load(rb)) => (ra, rb),
            _ => return None,
        },
        _ => return None,
    };

    // Drop unit-extent loops (their variable is identically zero).
    let mut dest = assign.dest.clone();
    let mut ra = load_a.clone();
    let mut rb = load_b.clone();
    let zero = IndexExpr::zero();
    vars.retain(|v| {
        if v.extent == 1 {
            dest = dest.map_indices(|i| i.subst(&v.name, &zero));
            ra = ra.map_indices(|i| i.subst(&v.name, &zero));
            rb = rb.map_indices(|i| i.subst(&v.name, &zero));
            false
        } else {
            true
        }
    });

    let flat_c = flatten(&dest, shapes)?;
    let flat_a = flatten(&ra, shapes)?;
    let flat_b = flatten(&rb, shapes)?;

    // All loop variables must appear somewhere, and indices must not use
    // variables outside the nest.
    let names: Vec<&str> = vars.iter().map(|v| v.name.as_str()).collect();
    for fl in [&flat_c, &flat_a, &flat_b] {
        if fl.terms().any(|(v, _)| !names.contains(&v)) {
            return None;
        }
    }

    try_orientation(&vars, &flat_c, &flat_a, &flat_b, &ra.buffer, &rb.buffer)
        .or_else(|| try_orientation(&vars, &flat_c, &flat_b, &flat_a, &rb.buffer, &ra.buffer))
        .map(|mut g| {
            g.c = dest.buffer.clone();
            g
        })
}

/// Flattens a buffer reference to a single affine expression over loop
/// variables using the buffer's row-major strides.
fn flatten(r: &BufRef, shapes: &HashMap<String, Shape>) -> Option<IndexExpr> {
    let shape = shapes.get(&r.buffer)?;
    if r.indices.len() != shape.rank() {
        return None;
    }
    let mut flat = IndexExpr::zero();
    for (idx, &stride) in r.indices.iter().zip(shape.strides()) {
        flat = flat + idx.clone().scaled(stride as i64);
    }
    Some(flat)
}

/// A variable set with its canonical row-major flattening.
struct Flattening {
    /// Variables, major first.
    order: Vec<usize>,
    /// The flattening as an affine expression.
    expr: IndexExpr,
    /// Product of extents.
    total: usize,
}

/// Builds the canonical flattening of `set` (indices into `vars`) whose
/// per-variable radices are `coef(var) / unit` in `reference`; returns
/// `None` unless the scaled coefficients form an exact row-major chain.
fn chain(vars: &[NestVar], set: &[usize], reference: &IndexExpr, unit: i64) -> Option<Flattening> {
    if unit == 0 {
        return None;
    }
    let mut order: Vec<usize> = set.to_vec();
    let radix = |i: usize| -> Option<i64> {
        let c = reference.coef(&vars[i].name);
        if c % unit != 0 || c / unit <= 0 {
            None
        } else {
            Some(c / unit)
        }
    };
    for &i in &order {
        radix(i)?;
    }
    order.sort_by_key(|&i| std::cmp::Reverse(radix(i).unwrap()));
    // Validate the chain: last radix 1, each radix = next radix * next
    // extent.
    let mut expected = 1i64;
    for &i in order.iter().rev() {
        if radix(i)? != expected {
            return None;
        }
        expected *= vars[i].extent as i64;
    }
    let mut expr = IndexExpr::zero();
    for &i in &order {
        expr = expr + IndexExpr::var(&vars[i].name).scaled(radix(i).unwrap());
    }
    let total: usize = set.iter().map(|&i| vars[i].extent).product();
    Some(Flattening { order, expr, total })
}

/// Tries to interpret the nest as `C[m,n] += A[m,k] * B[k,n]` (with
/// transpositions) for the given operand assignment.
fn try_orientation(
    vars: &[NestVar],
    flat_c: &IndexExpr,
    flat_a: &IndexExpr,
    flat_b: &IndexExpr,
    a_name: &str,
    b_name: &str,
) -> Option<GemmStmt> {
    let uses = |fl: &IndexExpr, i: usize| fl.coef(&vars[i].name) != 0;
    let mut m_set = Vec::new();
    let mut n_set = Vec::new();
    let mut k_set = Vec::new();
    for i in 0..vars.len() {
        match (uses(flat_c, i), uses(flat_a, i), uses(flat_b, i)) {
            (true, true, false) => m_set.push(i),
            (true, false, true) => n_set.push(i),
            (false, true, true) => k_set.push(i),
            // A variable in all three, or in fewer than two, breaks the
            // bilinear form.
            _ => return None,
        }
    }

    // Column flattening from C (unit radix 1).
    let n_flat = chain(vars, &n_set, flat_c, 1)?;
    let ncols = n_flat.total as i64;
    // Row flattening from C, scaled by the column count.
    let m_flat = chain(vars, &m_set, flat_c, ncols)?;
    let m = m_flat.total;
    let n = n_flat.total;

    // Verify C = rowIdx * n + colIdx + const.
    let c_const = flat_c.offset();
    let c_expect = m_flat.expr.clone().scaled(ncols) + n_flat.expr.clone() + c_const;
    if &c_expect != flat_c {
        return None;
    }

    // A: try ta = No (A row-major m x k) then ta = Yes (k x m).
    let try_a = |ta: bool| -> Option<Flattening> {
        let k_flat = if ta {
            chain(vars, &k_set, flat_a, m as i64)?
        } else {
            chain(vars, &k_set, flat_a, 1)?
        };
        let kk = k_flat.total as i64;
        let a_expect = if ta {
            k_flat.expr.clone().scaled(m as i64) + m_flat.expr.clone() + flat_a.offset()
        } else {
            m_flat.expr.clone().scaled(kk) + k_flat.expr.clone() + flat_a.offset()
        };
        if &a_expect == flat_a {
            Some(k_flat)
        } else {
            None
        }
    };
    let (ta, k_flat) = if let Some(kf) = try_a(false) {
        (false, kf)
    } else if let Some(kf) = try_a(true) {
        (true, kf)
    } else {
        return None;
    };
    let k = k_flat.total;

    // B must use the SAME k flattening (operand reduction orders agree).
    let check_b = |tb: bool| -> bool {
        let b_expect = if tb {
            n_flat.expr.clone().scaled(k as i64) + k_flat.expr.clone() + flat_b.offset()
        } else {
            k_flat.expr.clone().scaled(ncols) + n_flat.expr.clone() + flat_b.offset()
        };
        &b_expect == flat_b
    };
    let tb = if check_b(false) {
        false
    } else if check_b(true) {
        true
    } else {
        return None;
    };

    // Tiling metadata over the group's dim-0 variable `n0`.
    let tiling = vars
        .iter()
        .position(|v| v.name == "n0")
        .and_then(|i| {
            let dim = if m_set.contains(&i) {
                GemmDim::M
            } else if n_set.contains(&i) {
                GemmDim::N
            } else {
                GemmDim::K
            };
            let per_step = match dim {
                GemmDim::M => m_flat.expr.coef("n0"),
                GemmDim::N => n_flat.expr.coef("n0"),
                GemmDim::K => k_flat.expr.coef("n0"),
            };
            // Only outermost-radix variables tile cleanly: the rows (or
            // cols/ks) of one n0 step must be contiguous in the index
            // space, i.e. n0 must be the major variable of its set.
            let is_major = |set: &Flattening| set.order.first() == Some(&i);
            let major = match dim {
                GemmDim::M => is_major(&m_flat),
                GemmDim::N => is_major(&n_flat),
                GemmDim::K => is_major(&k_flat),
            };
            if !major || per_step <= 0 {
                return None;
            }
            Some(GemmTiling {
                dim,
                per_step: per_step as usize,
                extent: vars[i].extent,
                a_step: flat_a.coef("n0") as usize,
                b_step: flat_b.coef("n0") as usize,
                c_step: flat_c.coef("n0") as usize,
            })
        });

    Some(GemmStmt {
        ta,
        tb,
        m,
        n,
        k,
        a: a_name.to_string(),
        a_off: IndexExpr::constant(flat_a.offset()),
        b: b_name.to_string(),
        b_off: IndexExpr::constant(flat_b.offset()),
        c: String::new(), // filled by the caller
        c_off: IndexExpr::constant(c_const),
        tiling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes(list: &[(&str, Vec<usize>)]) -> HashMap<String, Shape> {
        list.iter()
            .map(|(n, d)| (n.to_string(), Shape::new(d.clone())))
            .collect()
    }

    fn mac(
        loops: &[(&str, usize)],
        dest: (&str, Vec<IndexExpr>),
        a: (&str, Vec<IndexExpr>),
        b: (&str, Vec<IndexExpr>),
    ) -> Stmt {
        let mut stmt = Stmt::accumulate(
            BufRef::new(dest.0, dest.1),
            Expr::load(a.0, a.1).mul(Expr::load(b.0, b.1)),
        );
        for &(v, e) in loops.iter().rev() {
            stmt = Stmt::for_loop(v, e, vec![stmt]);
        }
        stmt
    }

    fn v(name: &str) -> IndexExpr {
        IndexExpr::var(name)
    }

    #[test]
    fn fc_forward_matches_row_vector_gemm() {
        // for n0 in N { for i in K { value[n0] += in[i] * w[n0, i] } }
        let shp = shapes(&[("v", vec![6]), ("in", vec![4]), ("w", vec![6, 4])]);
        let nest = mac(
            &[("n0", 6), ("i0", 4)],
            ("v", vec![v("n0")]),
            ("in", vec![v("i0")]),
            ("w", vec![v("n0"), v("i0")]),
        );
        let g = match_nest(&nest, &shp).expect("should match");
        // One row (m=1): C(1xN) += in(1xK) * W(NxK)^T.
        assert_eq!((g.m, g.n, g.k), (1, 6, 4));
        assert_eq!(g.a, "in");
        assert!(!g.ta);
        assert!(g.tb, "weights are stored NxK, so B is transposed");
    }

    #[test]
    fn conv_forward_matches_patch_gemm() {
        // for n0(y) n1(x) n2(c) i(k): val[n0,n1,n2] += patch[n0,n1,i] * w[n2,i]
        let (y, x, c, k) = (8, 8, 16, 27);
        let shp = shapes(&[
            ("val", vec![y, x, c]),
            ("patch", vec![y, x, k]),
            ("w", vec![c, k]),
        ]);
        let nest = mac(
            &[("n0", y), ("n1", x), ("n2", c), ("i0", k)],
            ("val", vec![v("n0"), v("n1"), v("n2")]),
            ("patch", vec![v("n0"), v("n1"), v("i0")]),
            ("w", vec![v("n2"), v("i0")]),
        );
        let g = match_nest(&nest, &shp).expect("should match");
        assert_eq!((g.m, g.n, g.k), (y * x, c, k));
        assert!(!g.ta);
        assert!(g.tb);
        let t = g.tiling.expect("dim-0 tiling metadata");
        assert_eq!(t.dim, GemmDim::M);
        assert_eq!(t.per_step, x);
        assert_eq!(t.a_step, x * k);
        assert_eq!(t.c_step, x * c);
        assert_eq!(t.b_step, 0);
    }

    #[test]
    fn conv_backward_weights_matches_transposed_gemm() {
        // gw[c,i] += patch[y,x,i] * g[y,x,c]  (reduction over y,x)
        let (y, x, c, k) = (4, 4, 8, 18);
        let shp = shapes(&[
            ("gw", vec![c, k]),
            ("patch", vec![y, x, k]),
            ("g", vec![y, x, c]),
        ]);
        let nest = mac(
            &[("n0", y), ("n1", x), ("n2", c), ("i0", k)],
            ("gw", vec![v("n2"), v("i0")]),
            ("patch", vec![v("n0"), v("n1"), v("i0")]),
            ("g", vec![v("n0"), v("n1"), v("n2")]),
        );
        let g = match_nest(&nest, &shp).expect("should match");
        // m=c (from dest∩g), n=k, k=y*x; A = g stored (yx, c) → transposed.
        assert_eq!((g.m, g.n, g.k), (c, k, y * x));
        assert!(g.ta);
        assert!(!g.tb);
        let t = g.tiling.expect("tiling over reduction rows");
        assert_eq!(t.dim, GemmDim::K);
        assert_eq!(t.per_step, x);
    }

    #[test]
    fn conv_backward_inputs_matches() {
        // gpatch[y,x,i] += w[c,i] * g[y,x,c]  (reduction over c)
        let (y, x, c, k) = (4, 4, 8, 18);
        let shp = shapes(&[
            ("gpatch", vec![y, x, k]),
            ("w", vec![c, k]),
            ("g", vec![y, x, c]),
        ]);
        let nest = mac(
            &[("n0", y), ("n1", x), ("n2", c), ("i0", k)],
            ("gpatch", vec![v("n0"), v("n1"), v("i0")]),
            ("w", vec![v("n2"), v("i0")]),
            ("g", vec![v("n0"), v("n1"), v("n2")]),
        );
        let g = match_nest(&nest, &shp).expect("should match");
        assert_eq!((g.m, g.n, g.k), (y * x, k, c));
        assert_eq!(g.a, "g");
        assert!(!g.ta);
        assert!(!g.tb);
        assert_eq!(g.tiling.unwrap().dim, GemmDim::M);
    }

    #[test]
    fn outer_product_matches_rank_one_update() {
        // gw[n, i] += in[i] * g[n]: no reduction variable → k == 1.
        let shp = shapes(&[("gw", vec![6, 4]), ("in", vec![4]), ("g", vec![6])]);
        let nest = mac(
            &[("n0", 6), ("i0", 4)],
            ("gw", vec![v("n0"), v("i0")]),
            ("in", vec![v("i0")]),
            ("g", vec![v("n0")]),
        );
        let g = match_nest(&nest, &shp).expect("should match");
        assert_eq!((g.m, g.n, g.k), (6, 4, 1));
    }

    #[test]
    fn non_affine_usage_rejected() {
        // A variable used by all three operands is not bilinear.
        let shp = shapes(&[("c", vec![4]), ("a", vec![4]), ("b", vec![4])]);
        let nest = mac(
            &[("n0", 4)],
            ("c", vec![v("n0")]),
            ("a", vec![v("n0")]),
            ("b", vec![v("n0")]),
        );
        assert!(match_nest(&nest, &shp).is_none());
    }

    #[test]
    fn set_assignments_do_not_match() {
        let shp = shapes(&[("c", vec![4]), ("a", vec![4]), ("b", vec![4, 4])]);
        let inner = Stmt::assign(
            BufRef::new("c", vec![v("n0")]),
            Expr::load("a", vec![v("i0")]).mul(Expr::load("b", vec![v("n0"), v("i0")])),
        );
        let nest = Stmt::for_loop("n0", 4, vec![Stmt::for_loop("i0", 4, vec![inner])]);
        assert!(match_nest(&nest, &shp).is_none());
    }

    #[test]
    fn strided_non_chain_access_rejected() {
        // Dest indexed with a stride-2 hole: not a contiguous flattening.
        let shp = shapes(&[("c", vec![8]), ("a", vec![4]), ("b", vec![4, 4])]);
        let nest = mac(
            &[("n0", 4), ("i0", 4)],
            ("c", vec![v("n0").scaled(2)]),
            ("a", vec![v("i0")]),
            ("b", vec![v("n0"), v("i0")]),
        );
        assert!(match_nest(&nest, &shp).is_none());
    }

    #[test]
    fn unit_extent_loops_are_ignored(){
        // Bias-style trailing unit dim: w[n0, i, 0] over shape [6,4,1].
        let shp = shapes(&[("v", vec![6]), ("in", vec![4]), ("w", vec![6, 4, 1])]);
        let nest = mac(
            &[("n0", 6), ("i0", 4), ("z", 1)],
            ("v", vec![v("n0")]),
            ("in", vec![v("i0")]),
            ("w", vec![v("n0"), v("i0"), v("z")]),
        );
        assert!(match_nest(&nest, &shp).is_some());
    }
}
