//! Loop tiling, cross-layer fusion, and parallelization (the paper's
//! Sections 5.4.1–5.4.3).
//!
//! Tiling splits each group's outermost spatial loop (`n0`, the `y`
//! dimension) into `for t { for n0 in 0..T }`, annotating the tile loop
//! with the dependence distance derived from the connection structure.
//!
//! Fusion merges adjacent tiled groups of a producer→consumer chain into a
//! single tile loop, *scaling the producer's tile size* by the consumer's
//! consumption stride so both sides present identical trip counts —
//! exactly the paper's Figure 11/12 transformation for
//! convolution+ReLU+pooling. A non-zero halo (overlapping windows) or a
//! barrier (normalization ensembles) prevents fusion.
//!
//! Parallelization marks the tile loop parallel; the runtime collapses it
//! with the batch loop under a static interleaved schedule
//! (`schedule(static,1)` in the paper).

use latte_ir::{GemmDim, IndexExpr, Loop, LoopAnnot, Stmt, TileInfo};

use crate::program::Group;
use crate::tuned::TunedSchedule;

/// Preferred standalone tile sizes, first divisor wins.
const PREFERRED_TILES: [usize; 4] = [8, 4, 2, 1];

/// Result of the scheduling passes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Groups whose outer loop was tiled.
    pub groups_tiled: usize,
    /// Number of group merges performed.
    pub fusions: usize,
}

/// Applies tiling and (optionally) fusion to a phase's groups.
/// `tile_size` overrides the preferred tile when it divides the extent;
/// a [`TunedSchedule`]'s tile override wins over both.
///
/// Kept as a convenience wrapper over the two pass entry points the pass
/// manager drives separately: [`fuse_chains`] (merge producer→consumer
/// chains into one tile loop) followed by [`tile_untiled`] (tile every
/// group the fusion pass left alone).
pub fn tile_and_fuse(
    groups: Vec<Group>,
    tiling: bool,
    fusion: bool,
    tile_size: Option<usize>,
    tuned: Option<&TunedSchedule>,
) -> (Vec<Group>, ScheduleStats) {
    if !tiling {
        return (groups, ScheduleStats::default());
    }
    let tile_size = tuned.map_or(tile_size, |t| t.effective_tile(tile_size));
    let (groups, fstats) = if fusion {
        fuse_chains(groups, tile_size)
    } else {
        (groups, ScheduleStats::default())
    };
    let (groups, tstats) = tile_untiled(groups, tile_size);
    (
        groups,
        ScheduleStats {
            groups_tiled: fstats.groups_tiled + tstats.groups_tiled,
            fusions: fstats.fusions,
        },
    )
}

/// The fusion pass: partitions a phase's groups into maximal fusable
/// chains (runs of consecutive groups linked producer→consumer with zero
/// halo) and merges each multi-group chain into a single tiled loop.
/// Chains that cannot be fused — and all singleton chains — are passed
/// through unchanged for [`tile_untiled`] to pick up.
pub fn fuse_chains(groups: Vec<Group>, tile_size: Option<usize>) -> (Vec<Group>, ScheduleStats) {
    let mut stats = ScheduleStats::default();
    let mut out: Vec<Group> = Vec::new();
    let mut i = 0;
    while i < groups.len() {
        let mut chain = vec![groups[i].clone()];
        let mut strides: Vec<usize> = Vec::new(); // link i -> i+1
        while i + 1 < groups.len() {
            let next = &groups[i + 1];
            match link_stride(chain.last().unwrap(), next) {
                Some(s) => {
                    strides.push(s);
                    chain.push(next.clone());
                    i += 1;
                }
                None => break,
            }
        }
        i += 1;

        if chain.len() == 1 {
            out.append(&mut chain);
        } else {
            match fuse_chain(chain, &strides, &mut stats, tile_size) {
                Ok(g) => out.push(g),
                // Leave the originals untiled; the tiling pass tiles each
                // independently.
                Err(mut originals) => out.append(&mut originals),
            }
        }
    }
    (out, stats)
}

/// The tiling pass: tiles the outermost spatial loop of every group that
/// does not already carry one (fused groups emerge from [`fuse_chains`]
/// pre-tiled). Groups with no tileable statement pass through unchanged.
pub fn tile_untiled(groups: Vec<Group>, tile_size: Option<usize>) -> (Vec<Group>, ScheduleStats) {
    let mut stats = ScheduleStats::default();
    let out = groups
        .into_iter()
        .map(|g| {
            let already = g
                .stmts
                .iter()
                .any(|s| matches!(s, Stmt::For(l) if l.annot.tiled.is_some()));
            if already {
                return g;
            }
            match tile_single(g, &mut stats, tile_size) {
                Ok(t) => t,
                Err(g) => g,
            }
        })
        .collect();
    (out, stats)
}

/// Marks the outer (tile) loop of each group parallel.
///
/// Every tiled, non-barrier group is marked, with or without a
/// [`TunedSchedule`] — the `parallel` annotation fixes the group's
/// gradient-lane accumulation structure, which must be identical whether
/// the group ultimately fans out or not (bit-identity). A tuned
/// schedule's measured serial decisions
/// ([`TunedSchedule::decide_parallel`]) land in
/// [`GroupMeta::serial_hint`](crate::GroupMeta) instead: the runtime
/// keeps the lane structure but drives every lane from the calling
/// thread, skipping the pool broadcast — which is what repairs
/// multi-thread end-to-end throughput on hosts where fan-out overhead
/// beats the parallel win.
pub fn parallelize(groups: &mut [Group], tuned: Option<&TunedSchedule>) {
    for g in groups.iter_mut() {
        if g.barrier {
            continue;
        }
        if let Some(t) = tuned {
            g.meta.serial_hint = !t.decide_parallel(&g.name);
        }
        for stmt in g.stmts.iter_mut() {
            if let Stmt::For(l) = stmt {
                if l.annot.tiled.is_some() {
                    l.annot.parallel = true;
                }
            }
        }
    }
}

/// Whether `next` can fuse onto the tail of `prev`; returns the
/// consumption stride of the link.
fn link_stride(prev: &Group, next: &Group) -> Option<usize> {
    if prev.barrier || next.barrier || prev.phase != next.phase {
        return None;
    }
    let (pe, ne) = (prev.meta.dim0_extent?, next.meta.dim0_extent?);
    // Forward: the consumer (`next`) names its producer; backward: the
    // *producer of gradients* (`prev`, downstream ensemble) names the
    // ensemble whose gradients it feeds (`next`).
    let (consumer_extent, producer_extent, link) = match next.meta.upstream.as_ref() {
        Some(u) if prev.ensembles.contains(&u.ensemble) => (ne, pe, u),
        _ => match prev.meta.upstream.as_ref() {
            Some(u) if next.ensembles.contains(&u.ensemble) => (pe, ne, u),
            _ => return None,
        },
    };
    if link.halo != 0 {
        return None;
    }
    // In the backward phase the producer's gradient buffer must be fed by
    // this consumer alone before the producer's backward may run per-tile.
    if prev.phase == crate::program::Phase::Backward && !link.sole_consumer {
        return None;
    }
    // Exact sub-sampling: the producer's rows must be consumed fully.
    if consumer_extent * link.stride != producer_extent {
        return None;
    }
    Some(link.stride)
}

/// Tiles a standalone group with a preferred tile size; returns the group
/// unchanged when no statement can be tiled.
#[allow(clippy::result_large_err)] // Err returns the group unchanged, by design
fn tile_single(
    group: Group,
    stats: &mut ScheduleStats,
    tile_size: Option<usize>,
) -> Result<Group, Group> {
    let extent = match group.meta.dim0_extent {
        Some(e) => e,
        None => return Err(group),
    };
    let tile = match choose_tile(extent, tile_size) {
        Some(t) => t,
        None => return Err(group),
    };
    let dep = group
        .meta
        .upstream
        .as_ref()
        .map(|u| u.stride)
        .unwrap_or(1);
    match tile_stmts(&group.stmts, extent, tile) {
        Some(body) => {
            stats.groups_tiled += 1;
            let count = extent / tile;
            let mut g = group;
            g.stmts = vec![Stmt::For(Loop {
                var: "t".to_string(),
                extent: count,
                annot: LoopAnnot {
                    tiled: Some(TileInfo {
                        tile_size: tile,
                        dep_distance: dep,
                    }),
                    parallel: false,
                    vectorize: false,
                },
                body,
            })];
            Ok(g)
        }
        None => Err(group),
    }
}

/// Fuses a chain of tileable groups into one tile loop.
fn fuse_chain(
    chain: Vec<Group>,
    strides: &[usize],
    stats: &mut ScheduleStats,
    tile_size: Option<usize>,
) -> Result<Group, Vec<Group>> {
    // Tile counts must be identical; choose from the smallest extent.
    let extents: Vec<usize> = chain
        .iter()
        .map(|g| g.meta.dim0_extent.expect("chained groups are tileable"))
        .collect();
    let min_extent = *extents.iter().min().unwrap();
    let base_tile = match choose_tile(min_extent, tile_size) {
        Some(t) => t,
        None => return Err(chain),
    };
    let count = min_extent / base_tile;
    if extents.iter().any(|e| e % count != 0) {
        return Err(chain);
    }

    let mut body: Vec<Stmt> = Vec::new();
    for (g, &extent) in chain.iter().zip(&extents) {
        let tile = extent / count;
        match tile_stmts(&g.stmts, extent, tile) {
            Some(mut stmts) => body.append(&mut stmts),
            None => return Err(chain),
        }
    }
    stats.groups_tiled += chain.len();
    stats.fusions += chain.len() - 1;

    let name = chain
        .iter()
        .map(|g| g.ensembles.join("+"))
        .collect::<Vec<_>>()
        .join("+");
    let dep = strides.iter().copied().max().unwrap_or(1);
    let ensembles: Vec<String> = chain.iter().flat_map(|g| g.ensembles.clone()).collect();
    let phase = chain[0].phase;
    let meta = crate::program::GroupMeta {
        dim0_extent: chain.last().unwrap().meta.dim0_extent,
        upstream: chain[0].meta.upstream.clone(),
        share_body_with: None,
        serial_hint: false,
    };
    Ok(Group {
        name: format!("{name}.{}", phase_suffix(phase)),
        ensembles,
        phase,
        stmts: vec![Stmt::For(Loop {
            var: "t".to_string(),
            extent: count,
            annot: LoopAnnot {
                tiled: Some(TileInfo {
                    tile_size: base_tile,
                    dep_distance: dep,
                }),
                parallel: false,
                vectorize: false,
            },
            body,
        })],
        barrier: false,
        meta,
    })
}

fn phase_suffix(p: crate::program::Phase) -> &'static str {
    match p {
        crate::program::Phase::Forward => "fwd",
        crate::program::Phase::Backward => "bwd",
    }
}

/// Picks the largest preferred tile that divides `extent` into more than
/// one tile; an explicit override wins when it qualifies.
fn choose_tile(extent: usize, requested: Option<usize>) -> Option<usize> {
    if let Some(t) = requested {
        if t > 0 && extent.is_multiple_of(t) && extent / t > 1 {
            return Some(t);
        }
    }
    PREFERRED_TILES
        .iter()
        .copied()
        .find(|&t| extent.is_multiple_of(t) && extent / t > 1)
}

/// Restricts a group's top-level statements to one tile of `n0`: tile `t`
/// covers `n0 ∈ [t*tile, (t+1)*tile)`. Returns `None` when any statement
/// does not span the full dim-0 extent.
fn tile_stmts(stmts: &[Stmt], extent: usize, tile: usize) -> Option<Vec<Stmt>> {
    let t_var = IndexExpr::var("t");
    stmts
        .iter()
        .map(|stmt| match stmt {
            Stmt::For(l) if l.var == "n0" && l.extent == extent => {
                // n0 := t*tile + n0, with the inner loop now 0..tile.
                let repl = t_var.clone().scaled(tile as i64) + IndexExpr::var("n0");
                let body: Vec<Stmt> = l.body.iter().map(|s| s.subst_var("n0", &repl)).collect();
                Some(Stmt::For(Loop {
                    var: "n0".to_string(),
                    extent: tile,
                    annot: l.annot,
                    body,
                }))
            }
            Stmt::Copy(c) if !c.extents.is_empty() && c.extents[0] == extent => {
                let mut c = c.clone();
                c.extents[0] = tile;
                c.offsets[0] = t_var.clone().scaled(tile as i64);
                Some(Stmt::Copy(c))
            }
            Stmt::Gemm(g) => {
                let t = g.tiling?;
                if t.extent != extent {
                    return None;
                }
                let mut g = g.clone();
                let span = t.per_step * tile;
                match t.dim {
                    GemmDim::M => g.m = span,
                    GemmDim::N => g.n = span,
                    GemmDim::K => g.k = span,
                }
                let step = |s: usize| t_var.clone().scaled((s * tile) as i64);
                g.a_off = g.a_off.clone() + step(t.a_step);
                g.b_off = g.b_off.clone() + step(t.b_step);
                g.c_off = g.c_off.clone() + step(t.c_step);
                g.tiling = None;
                Some(Stmt::Gemm(g))
            }
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{GroupMeta, Phase, Upstream};
    use latte_ir::{BufRef, Expr, GemmStmt, GemmTiling};

    fn elementwise_group(name: &str, extent: usize, upstream: Option<Upstream>) -> Group {
        // for n0 { for n1 { v[n0, n1] = max(v[n0, n1], 0) } }
        let dest = BufRef::new(
            format!("{name}.value"),
            vec![IndexExpr::var("n0"), IndexExpr::var("n1")],
        );
        let inner = Stmt::assign(dest.clone(), Expr::Load(dest).max(Expr::lit(0.0)));
        let nest = Stmt::for_loop("n0", extent, vec![Stmt::for_loop("n1", 4, vec![inner])]);
        Group {
            name: format!("{name}.fwd"),
            ensembles: vec![name.to_string()],
            phase: Phase::Forward,
            stmts: vec![nest],
            barrier: false,
            meta: GroupMeta {
                dim0_extent: Some(extent),
                upstream,
                ..GroupMeta::default()
            },
        }
    }

    #[test]
    fn standalone_group_gets_tiled() {
        let g = elementwise_group("relu1", 16, None);
        let (out, stats) = tile_and_fuse(vec![g], true, false, None, None);
        assert_eq!(stats.groups_tiled, 1);
        assert_eq!(out.len(), 1);
        match &out[0].stmts[0] {
            Stmt::For(l) => {
                assert_eq!(l.var, "t");
                assert_eq!(l.extent, 2); // 16 / preferred tile 8
                assert_eq!(l.annot.tiled.unwrap().tile_size, 8);
            }
            other => panic!("expected tile loop, got {other:?}"),
        }
    }

    #[test]
    fn tiling_disabled_is_identity() {
        let g = elementwise_group("relu1", 16, None);
        let (out, stats) = tile_and_fuse(vec![g.clone()], false, false, None, None);
        assert_eq!(stats.groups_tiled, 0);
        assert_eq!(out[0].stmts.len(), g.stmts.len());
    }

    #[test]
    fn elementwise_consumer_fuses_with_producer() {
        let conv = elementwise_group("conv1", 16, None);
        let relu = elementwise_group(
            "relu1",
            16,
            Some(Upstream {
                ensemble: "conv1".to_string(),
                stride: 1,
                halo: 0,
                sole_consumer: true,
            }),
        );
        let (out, stats) = tile_and_fuse(vec![conv, relu], true, true, None, None);
        assert_eq!(stats.fusions, 1);
        assert_eq!(out.len(), 1);
        assert!(out[0].name.contains("conv1+relu1"), "{}", out[0].name);
    }

    #[test]
    fn subsampling_consumer_doubles_producer_tile() {
        // Producer extent 16, pool extent 8 with stride 2: producer tile
        // must be twice the pool tile (the paper's Figure 11).
        let conv = elementwise_group("conv1", 16, None);
        let pool = elementwise_group(
            "pool1",
            8,
            Some(Upstream {
                ensemble: "conv1".to_string(),
                stride: 2,
                halo: 0,
                sole_consumer: true,
            }),
        );
        let (out, stats) = tile_and_fuse(vec![conv, pool], true, true, None, None);
        assert_eq!(stats.fusions, 1);
        let tile_loop = match &out[0].stmts[0] {
            Stmt::For(l) => l,
            other => panic!("expected loop, got {other:?}"),
        };
        // Pool extent 8 → preferred tile 8 is the whole extent → falls to
        // count via min extent 8 / 8 = 1... must still fuse with >1 tiles,
        // so the pass picks tile 4 → count 2.
        assert!(tile_loop.extent > 1);
        // Both bodies present: conv rows per tile = 2 * pool rows.
        let body = &tile_loop.body;
        let conv_inner = match &body[0] {
            Stmt::For(l) => l.extent,
            other => panic!("{other:?}"),
        };
        let pool_inner = match &body[1] {
            Stmt::For(l) => l.extent,
            other => panic!("{other:?}"),
        };
        assert_eq!(conv_inner, 2 * pool_inner);
    }

    #[test]
    fn halo_prevents_fusion() {
        let conv1 = elementwise_group("conv1", 16, None);
        let conv2 = elementwise_group(
            "conv2",
            16,
            Some(Upstream {
                ensemble: "conv1".to_string(),
                stride: 1,
                halo: 2, // 3x3 stride-1 window overlaps rows
                sole_consumer: true,
            }),
        );
        let (out, stats) = tile_and_fuse(vec![conv1, conv2], true, true, None, None);
        assert_eq!(stats.fusions, 0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn barrier_prevents_fusion() {
        let a = elementwise_group("a", 16, None);
        let mut b = elementwise_group(
            "b",
            16,
            Some(Upstream {
                ensemble: "a".to_string(),
                stride: 1,
                halo: 0,
                sole_consumer: true,
            }),
        );
        b.barrier = true;
        let (out, stats) = tile_and_fuse(vec![a, b], true, true, None, None);
        assert_eq!(stats.fusions, 0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn backward_chain_fuses_in_reverse_order() {
        // Backward order: pool.bwd first, then conv.bwd; pool names conv
        // as its upstream.
        let mut pool = elementwise_group(
            "pool1",
            8,
            Some(Upstream {
                ensemble: "conv1".to_string(),
                stride: 2,
                halo: 0,
                sole_consumer: true,
            }),
        );
        pool.phase = Phase::Backward;
        let mut conv = elementwise_group("conv1", 16, None);
        conv.phase = Phase::Backward;
        let (out, stats) = tile_and_fuse(vec![pool, conv], true, true, None, None);
        assert_eq!(stats.fusions, 1, "{:?}", out.iter().map(|g| &g.name).collect::<Vec<_>>());
    }

    #[test]
    fn gemm_tiling_adjusts_offsets() {
        let gemm = Stmt::Gemm(GemmStmt {
            ta: false,
            tb: true,
            m: 64,
            n: 16,
            k: 27,
            a: "patch".into(),
            a_off: IndexExpr::zero(),
            b: "w".into(),
            b_off: IndexExpr::zero(),
            c: "val".into(),
            c_off: IndexExpr::zero(),
            tiling: Some(GemmTiling {
                dim: GemmDim::M,
                per_step: 8,
                extent: 8,
                a_step: 8 * 27,
                b_step: 0,
                c_step: 8 * 16,
            }),
        });
        let g = Group {
            name: "conv1.fwd".into(),
            ensembles: vec!["conv1".into()],
            phase: Phase::Forward,
            stmts: vec![gemm],
            barrier: false,
            meta: GroupMeta {
                dim0_extent: Some(8),
                ..GroupMeta::default()
            },
        };
        let (out, stats) = tile_and_fuse(vec![g], true, false, None, None);
        assert_eq!(stats.groups_tiled, 1);
        let tile_loop = match &out[0].stmts[0] {
            Stmt::For(l) => l,
            other => panic!("{other:?}"),
        };
        match &tile_loop.body[0] {
            Stmt::Gemm(g) => {
                assert!(g.m < 64);
                assert!(g.c_off.uses("t"));
                assert!(g.a_off.uses("t"));
                assert!(!g.b_off.uses("t"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parallelize_marks_tile_loops() {
        let g = elementwise_group("relu1", 16, None);
        let (mut out, _) = tile_and_fuse(vec![g], true, false, None, None);
        parallelize(&mut out, None);
        match &out[0].stmts[0] {
            Stmt::For(l) => assert!(l.annot.parallel),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tuned_schedule_gates_parallel_marking_per_group() {
        let fast = elementwise_group("fast", 16, None);
        let slow = elementwise_group("slow", 16, None);
        let (mut out, _) = tile_and_fuse(vec![fast, slow], true, false, None, None);
        let mut tuned = TunedSchedule::default();
        tuned.group_parallel.insert("fast.fwd".into(), false);
        parallelize(&mut out, Some(&tuned));
        // Loops stay parallel-annotated either way (the annotation fixes
        // the accumulation structure); the decision lands in the hint.
        for g in &out {
            match &g.stmts[0] {
                Stmt::For(l) => assert!(l.annot.parallel),
                other => panic!("{other:?}"),
            }
        }
        let hints: Vec<bool> = out.iter().map(|g| g.meta.serial_hint).collect();
        assert_eq!(hints, [true, false], "explicit serial entry wins, default stays parallel");
    }

    #[test]
    fn tuned_tile_override_wins_over_opt_tile() {
        let g = elementwise_group("relu1", 16, None);
        let tuned = TunedSchedule { tile_size: Some(4), ..TunedSchedule::default() };
        let (out, _) = tile_and_fuse(vec![g], true, false, Some(8), Some(&tuned));
        match &out[0].stmts[0] {
            Stmt::For(l) => assert_eq!(l.annot.tiled.unwrap().tile_size, 4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_serial_schedule_marks_nothing() {
        let g = elementwise_group("relu1", 16, None);
        let (mut out, _) = tile_and_fuse(vec![g], true, false, None, None);
        let tuned = TunedSchedule::all_serial();
        parallelize(&mut out, Some(&tuned));
        match &out[0].stmts[0] {
            Stmt::For(l) => assert!(l.annot.parallel, "annotation structure is decision-invariant"),
            other => panic!("{other:?}"),
        }
        assert!(out[0].meta.serial_hint);
    }
}
