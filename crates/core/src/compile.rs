//! The compiler driver: analysis → synthesis → optimization.

use std::collections::HashMap;

use latte_tensor::Shape;

use crate::dsl::Net;
use crate::error::CompileError;
use crate::pass::{PassContext, PassManager, PipelineState};
use crate::program::{CompileStats, CompiledNet};
use crate::synth::{synthesize, SynthOptions};
use crate::tuned::TunedSchedule;

/// Which optimizations the compiler applies.
///
/// Each flag gates one of the paper's optimizations independently so the
/// Figure-13 per-optimization sweep can be reproduced. [`OptLevel::full`]
/// is the default production configuration; [`OptLevel::none`] yields the
/// naively synthesized program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptLevel {
    /// Replace multiply-accumulate nests with GEMM library calls.
    pub pattern_match: bool,
    /// Tile the outermost spatial loop.
    pub tiling: bool,
    /// Fuse adjacent tiled groups across layers (requires `tiling`).
    pub fusion: bool,
    /// Mark tile loops parallel (collapsed with the batch loop by the
    /// runtime).
    pub parallel: bool,
    /// Let the runtime lower unit-stride inner loops to native slice
    /// kernels (the stand-in for `#pragma simd` vectorization).
    pub vectorize: bool,
    /// Shared-variable buffer optimizations: drop uniform staging
    /// dimensions, alias all-to-all inputs.
    pub shared_buffers: bool,
    /// Run activation ensembles in place.
    pub inplace_activation: bool,
    /// Skip gradients flowing only into data ensembles.
    pub skip_data_grad: bool,
    /// Explicit tile size for the spatial loop (used when it divides the
    /// extent); `None` picks from the preferred sizes. Exposed for the
    /// tile-size ablation.
    pub tile_size: Option<usize>,
}

impl OptLevel {
    /// Every *optimization pass* disabled: the program exactly as
    /// synthesized. Shared-variable analysis (buffer sharing, in-place
    /// activations) stays on — in the paper it is part of synthesis, not
    /// an optional pass; disable it explicitly with
    /// [`OptLevel::with_shared_buffers`] for the ablation.
    pub fn none() -> Self {
        OptLevel {
            pattern_match: false,
            tiling: false,
            fusion: false,
            parallel: false,
            vectorize: false,
            shared_buffers: true,
            inplace_activation: true,
            skip_data_grad: true,
            tile_size: None,
        }
    }

    /// Everything enabled (the paper's "Latte" configuration).
    pub fn full() -> Self {
        OptLevel {
            pattern_match: true,
            tiling: true,
            fusion: true,
            parallel: true,
            vectorize: true,
            shared_buffers: true,
            inplace_activation: true,
            skip_data_grad: true,
            tile_size: None,
        }
    }

    /// Parallelization only — the paper's Figure-13 baseline bar
    /// ("Latte compiler outperforms Caffe by more than 7x" from
    /// parallelization alone).
    pub fn parallel_only() -> Self {
        OptLevel {
            parallel: true,
            ..OptLevel::none()
        }
    }

    /// Builder-style toggles.
    pub fn with_pattern_match(mut self, on: bool) -> Self {
        self.pattern_match = on;
        self
    }

    /// Toggles tiling.
    pub fn with_tiling(mut self, on: bool) -> Self {
        self.tiling = on;
        self
    }

    /// Toggles fusion.
    pub fn with_fusion(mut self, on: bool) -> Self {
        self.fusion = on;
        self
    }

    /// Toggles parallel annotation.
    pub fn with_parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Toggles native inner-loop lowering.
    pub fn with_vectorize(mut self, on: bool) -> Self {
        self.vectorize = on;
        self
    }

    /// Toggles shared-variable buffer optimizations.
    pub fn with_shared_buffers(mut self, on: bool) -> Self {
        self.shared_buffers = on;
        self
    }

    /// Requests an explicit tile size.
    pub fn with_tile_size(mut self, tile: usize) -> Self {
        self.tile_size = Some(tile);
        self
    }
}

impl Default for OptLevel {
    fn default() -> Self {
        OptLevel::full()
    }
}

/// Compiles a network into an executable program.
///
/// The pipeline is exactly the paper's: shared-variable analysis guides
/// synthesis; the synthesized loop nests then flow through the
/// [`PassManager`]'s staged pipeline — GEMM pattern matching, cross-layer
/// fusion, tiling, parallel marking, vectorize marking — with the
/// `OptLevel` acting as the pipeline builder (every level runs the same
/// pass sequence; flags only enable/disable individual passes). The
/// manager records per-pass wall time and IR-size deltas in
/// [`CompileStats::passes`](crate::CompileStats), verifies the IR between
/// passes (debug builds always, release with `LATTE_VERIFY_IR=1`), and
/// honours `LATTE_DUMP_IR=<dir>` textual snapshots. The result is handed
/// to `latte-runtime` for lowering to native kernels and execution.
///
/// # Errors
///
/// Returns a [`CompileError`] for cyclic graphs, invalid ensembles, and
/// malformed mappings, or [`CompileError::Verify`] when a pass emits
/// malformed IR (a compiler bug, not a user error).
pub fn compile(net: &Net, opt: &OptLevel) -> Result<CompiledNet, CompileError> {
    compile_impl(net, opt, &PassManager::standard(), None)
}

/// [`compile`] under a measured [`TunedSchedule`]: the schedule's tile
/// override and per-group serial/parallel decisions replace the pipeline's
/// fixed heuristics, through the same passes. Compiling with the identity
/// schedule ([`TunedSchedule::default`]) is equivalent to [`compile`].
///
/// # Errors
///
/// As [`compile`].
pub fn compile_tuned(
    net: &Net,
    opt: &OptLevel,
    tuned: &TunedSchedule,
) -> Result<CompiledNet, CompileError> {
    compile_impl(net, opt, &PassManager::standard(), Some(tuned))
}

/// [`compile`] with an explicit pass manager — the hook tests use to
/// inject extra (or sabotaged) passes and to force verification on or
/// off.
///
/// # Errors
///
/// As [`compile`].
pub fn compile_with(
    net: &Net,
    opt: &OptLevel,
    passes: &PassManager,
) -> Result<CompiledNet, CompileError> {
    compile_impl(net, opt, passes, None)
}

fn compile_impl(
    net: &Net,
    opt: &OptLevel,
    passes: &PassManager,
    tuned: Option<&TunedSchedule>,
) -> Result<CompiledNet, CompileError> {
    let synth_opts = SynthOptions {
        shared_buffers: opt.shared_buffers,
        inplace_activation: opt.inplace_activation,
        skip_data_grad: opt.skip_data_grad,
    };
    let s = synthesize(net, &synth_opts)?;

    let shapes: HashMap<String, Shape> = s
        .buffers
        .iter()
        .map(|b| (b.name.clone(), b.shape.clone()))
        .collect();

    let mut stats = CompileStats {
        aliased_buffers: s.aliased_buffers,
        dims_dropped: s.dims_dropped,
        ..CompileStats::default()
    };

    let mut state = PipelineState {
        forward: s.forward,
        backward: s.backward,
    };
    let ctx = PassContext {
        shapes: &shapes,
        buffers: &s.buffers,
        opt,
        tuned,
    };
    passes.run(&mut state, &ctx, &mut stats)?;

    // Record each group's batch-parallel decision (any loop the
    // parallel-marking pass annotated) so reports and bench runs can
    // print the schedule without re-deriving it from the IR.
    stats.group_parallel = state
        .forward
        .iter()
        .chain(&state.backward)
        .map(|g| {
            let mut parallel = false;
            for stmt in &g.stmts {
                stmt.visit(&mut |st| {
                    if let latte_ir::Stmt::For(l) = st {
                        parallel |= l.annot.parallel;
                    }
                });
            }
            // A tuned serial hint overrides the annotation: the group
            // keeps its parallel lane structure but runs on the caller.
            (g.name.clone(), parallel && !g.meta.serial_hint)
        })
        .collect();
    stats.groups_parallel = stats.group_parallel.iter().filter(|(_, p)| *p).count();
    stats.groups_serial = stats.group_parallel.len() - stats.groups_parallel;

    Ok(CompiledNet {
        batch: net.batch(),
        buffers: s.buffers,
        forward: state.forward,
        backward: state.backward,
        params: s.params,
        inputs: s.inputs,
        losses: s.losses,
        param_inits: s.param_inits,
        vectorize: opt.vectorize,
        stats,
    })
}
