//! # latte-core
//!
//! The Latte language and compiler — the primary contribution of
//! *"Latte: A Language, Compiler, and Runtime for Elegant and Efficient
//! Deep Neural Networks"* (PLDI 2016), reproduced in Rust.
//!
//! * [`dsl`] — the language: neurons, ensembles, connections, networks.
//! * [`analysis`] — shared-variable analysis over mapping functions.
//! * [`synth`] — program synthesis: data copies + SoA compute nests.
//! * [`opt`] — GEMM pattern matching, loop tiling, cross-layer fusion,
//!   parallelization.
//! * [`program`] — the compiled program handed to `latte-runtime`.
//!
//! The entry point is [`compile`]:
//!
//! ```
//! use latte_core::{compile, OptLevel};
//! use latte_core::dsl::{Ensemble, Mapping, Net};
//! use latte_core::dsl::stdlib::weighted_neuron;
//! use latte_tensor::{init, Tensor};
//!
//! let mut net = Net::new(4);
//! let data = net.add(Ensemble::data("data", vec![8]));
//! let fc = net.add(
//!     Ensemble::new("fc1", vec![2], weighted_neuron())
//!         .with_field("weights", vec![false], init::xavier(vec![2, 8], 8, 0))
//!         .with_field("bias", vec![false], Tensor::zeros(vec![2, 1]))
//!         .with_param("weights", 1.0)
//!         .with_param("bias", 2.0),
//! );
//! net.connect(data, fc, Mapping::all_to_all(vec![8]));
//! let compiled = compile(&net, &OptLevel::full())?;
//! assert_eq!(compiled.forward.len(), 1);
//! # Ok::<(), latte_core::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod compile;
pub mod dsl;
mod error;
pub mod names;
pub mod opt;
pub mod pass;
mod program;
pub mod synth;
pub mod trace;
pub mod tuned;

pub use compile::{compile, compile_tuned, compile_with, OptLevel};
pub use error::CompileError;
pub use pass::{Pass, PassContext, PassManager, PipelineState};
pub use program::{
    CompileStats, CompiledNet, Group, GroupMeta, InputBinding, ParamBinding, PassStat, Phase,
    StepShare, Upstream,
};
pub use trace::{structure_hash, Trace, TraceKey, TraceSession};
pub use tuned::TunedSchedule;
