//! Canonical buffer-name scheme shared by the compiler and the runtime.

/// The value (activation) buffer of an ensemble.
pub fn value(ens: &str) -> String {
    format!("{ens}.value")
}

/// The gradient buffer of an ensemble.
pub fn grad(ens: &str) -> String {
    format!("{ens}.grad")
}

/// The staged-input buffer of connection `c` of an ensemble.
pub fn input(ens: &str, c: usize) -> String {
    format!("{ens}.in{c}")
}

/// The staged input-gradient buffer of connection `c`.
pub fn grad_input(ens: &str, c: usize) -> String {
    format!("{ens}.gin{c}")
}

/// The SoA buffer of neuron field `field`.
pub fn field(ens: &str, field: &str) -> String {
    format!("{ens}.{field}")
}

/// The gradient buffer of neuron field `field`.
pub fn grad_field(ens: &str, field: &str) -> String {
    format!("{ens}.g_{field}")
}

/// A normalization ensemble's extra state buffer.
pub fn state(ens: &str, suffix: &str) -> String {
    format!("{ens}.state_{suffix}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_distinct_and_prefixed() {
        let all = [
            super::value("conv1"),
            super::grad("conv1"),
            super::input("conv1", 0),
            super::grad_input("conv1", 0),
            super::field("conv1", "weights"),
            super::grad_field("conv1", "weights"),
            super::state("conv1", "prob"),
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(a.starts_with("conv1."));
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
