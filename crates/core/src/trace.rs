//! Lazy traces: eager op recording and shape-aware structure hashing.
//!
//! This module splits *describing* a computation from *compiling* it.
//! A [`TraceSession`] records ensemble additions and connections as
//! they happen — it derefs to [`Net`], so every existing `latte-nn`
//! builder works unchanged as an eager op recorder — and
//! [`TraceSession::finish`] seals the recording into a [`Trace`]: the
//! recorded network plus its canonical [`TraceKey`].
//!
//! The key is the contract with the JIT cache
//! (`latte_runtime::trace::TraceCache`): two traces with equal keys
//! compile to interchangeable programs, so the second execution of any
//! `(structure, dynamic dims)` pair never touches the pass pipeline.
//! It factors as **structure fingerprint × dynamic dims**:
//!
//! * [`structure_hash`] fingerprints everything that determines the
//!   compiled program *except* the dynamic dimensions: ensemble names,
//!   grid shapes, kinds (including full normalization specs), neuron
//!   types (field declarations plus the *built* forward/backward bodies
//!   — closures are hashed by the IR they emit against a probe
//!   context), field storage (sharing flags, init shape, and the exact
//!   init bits, since compiled programs carry parameter initializers),
//!   parameter declarations, and every connection's mapping (probed
//!   over a deterministic sample of the sink index space).
//! * The dynamic dims — batch size and, for bucketed variable-length
//!   sequence workloads, the power-of-two length bucket — stay out of
//!   the hash and live as explicit key fields, so plan caches
//!   specialize per shape while sharing one structural identity.

use std::ops::{Deref, DerefMut};

use crate::dsl::{EnsembleKind, Net, SourceRegion};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An FNV-1a accumulator with length-prefixed field framing (so
/// `("ab","c")` and `("a","bc")` hash differently).
struct Hasher(u64);

impl Hasher {
    fn new() -> Self {
        Hasher(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.u64(v as u64);
    }

    fn f32(&mut self, v: f32) {
        self.u64(v.to_bits() as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// The canonical identity of a trace: what must match for a cached
/// compiled program to be reusable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// [`structure_hash`] of the recorded network (batch-independent).
    pub structure: u64,
    /// Batch size the trace will execute at.
    pub batch: usize,
    /// Power-of-two sequence-length bucket for variable-length
    /// recurrent workloads; `None` for fixed-shape networks.
    pub seq_bucket: Option<usize>,
}

impl TraceKey {
    /// A filesystem-safe label, used for `LATTE_DUMP_IR` dump names:
    /// `trace-<hash>-b<batch>[-l<bucket>]`.
    pub fn label(&self) -> String {
        match self.seq_bucket {
            Some(l) => format!("trace-{:016x}-b{}-l{}", self.structure, self.batch, l),
            None => format!("trace-{:016x}-b{}", self.structure, self.batch),
        }
    }
}

/// A sealed recording: the network plus its canonical key.
#[derive(Debug, Clone)]
pub struct Trace {
    net: Net,
    key: TraceKey,
}

impl Trace {
    /// Seals an already-built network as a fixed-shape trace.
    pub fn from_net(net: Net) -> Trace {
        let key = TraceKey {
            structure: structure_hash(&net),
            batch: net.batch(),
            seq_bucket: None,
        };
        Trace { net, key }
    }

    /// Seals a network that realizes the given sequence-length bucket
    /// of a variable-length workload. The bucket becomes part of the
    /// key's dynamic dims, alongside the batch.
    pub fn from_net_bucketed(net: Net, seq_bucket: usize) -> Trace {
        let key = TraceKey {
            structure: structure_hash(&net),
            batch: net.batch(),
            seq_bucket: Some(seq_bucket),
        };
        Trace { net, key }
    }

    /// The canonical key.
    pub fn key(&self) -> TraceKey {
        self.key
    }

    /// The recorded network.
    pub fn net(&self) -> &Net {
        &self.net
    }

    /// Unwraps the recorded network.
    pub fn into_net(self) -> Net {
        self.net
    }
}

/// An eager recorder: ops applied to the session build up a [`Net`]
/// exactly as they would directly — the session derefs to [`Net`], so
/// the whole `latte-nn` builder vocabulary records through it — and
/// [`finish`](TraceSession::finish) seals the result into a [`Trace`].
///
/// # Examples
///
/// ```
/// use latte_core::trace::TraceSession;
/// use latte_core::dsl::Ensemble;
///
/// let mut s = TraceSession::new(4);
/// s.add(Ensemble::data("data", vec![8])); // any &mut Net op records
/// assert_eq!(s.ops(), 1);
/// let trace = s.finish();
/// assert_eq!(trace.key().batch, 4);
/// ```
#[derive(Debug)]
pub struct TraceSession {
    net: Net,
    seq_bucket: Option<usize>,
}

impl TraceSession {
    /// Starts recording at a batch size.
    pub fn new(batch: usize) -> Self {
        TraceSession {
            net: Net::new(batch),
            seq_bucket: None,
        }
    }

    /// Starts recording one sequence-length bucket of a variable-length
    /// workload.
    pub fn for_bucket(batch: usize, seq_bucket: usize) -> Self {
        TraceSession {
            net: Net::new(batch),
            seq_bucket: Some(seq_bucket),
        }
    }

    /// Wraps an existing network (e.g. the output of
    /// [`Net::unroll`](crate::dsl::Net::unroll)) so further ops keep
    /// recording onto it.
    pub fn from_net(net: Net) -> Self {
        TraceSession {
            net,
            seq_bucket: None,
        }
    }

    /// Recorded op count: ensembles plus connections.
    pub fn ops(&self) -> usize {
        let conns: usize = self
            .net
            .ensembles()
            .map(|(id, _)| self.net.connections(id).len())
            .sum();
        self.net.len() + conns
    }

    /// Seals the recording.
    pub fn finish(self) -> Trace {
        match self.seq_bucket {
            Some(b) => Trace::from_net_bucketed(self.net, b),
            None => Trace::from_net(self.net),
        }
    }
}

impl Deref for TraceSession {
    type Target = Net;

    fn deref(&self) -> &Net {
        &self.net
    }
}

impl DerefMut for TraceSession {
    fn deref_mut(&mut self) -> &mut Net {
        &mut self.net
    }
}

/// How many sink indices a connection's mapping is probed at. Small
/// ensembles are probed exhaustively; larger ones at this many strided
/// samples (always including the first and last sink).
const MAPPING_SAMPLES: usize = 64;

/// Deterministic sample of the flat sink index space.
fn sample_indices(len: usize) -> Vec<usize> {
    if len <= MAPPING_SAMPLES {
        return (0..len).collect();
    }
    let stride = len / MAPPING_SAMPLES;
    let mut v: Vec<usize> = (0..MAPPING_SAMPLES).map(|i| i * stride).collect();
    if *v.last().unwrap() != len - 1 {
        v.push(len - 1);
    }
    v
}

/// Decodes a flat index into a row-major multi-index over `dims`.
fn unflatten(mut flat: usize, dims: &[usize]) -> Vec<usize> {
    let mut idx = vec![0; dims.len()];
    for d in (0..dims.len()).rev() {
        idx[d] = flat % dims[d];
        flat /= dims[d];
    }
    idx
}

fn hash_region(h: &mut Hasher, region: &SourceRegion) {
    h.usize(region.ranges.len());
    for r in &region.ranges {
        h.i64(r.start as i64);
        h.i64(r.stop as i64);
    }
}

/// The batch-independent structural fingerprint of a network.
///
/// Everything that flows into `compile` *except* the batch size is
/// hashed: two nets with equal hashes synthesize identical programs at
/// any common batch (and carry identical parameter initializers, so a
/// cached compiled program — which embeds them — is safe to reuse).
/// Mapping closures are opaque, so they are fingerprinted by *probing*:
/// the mapping is evaluated over a deterministic sample of the sink
/// index space ([`MAPPING_SAMPLES`] strided indices, endpoints always
/// included; exhaustive below that) and the resulting source regions
/// are hashed. Neuron bodies are likewise hashed by the IR they emit
/// against a probe context sized from the real connections. This is the
/// one place the key is an under-approximation — a pathological mapping
/// differing only between sample points collides — and the bucketing
/// policy in DESIGN.md §15 spells out why recorded workloads never do
/// that.
pub fn structure_hash(net: &Net) -> u64 {
    let mut h = Hasher::new();
    h.usize(net.len());
    for (id, ens) in net.ensembles() {
        h.str("E");
        h.str(ens.name());
        h.usize(ens.dims().len());
        for &d in ens.dims() {
            h.usize(d);
        }
        match ens.kind() {
            EnsembleKind::Standard => h.u64(0),
            EnsembleKind::Activation => h.u64(1),
            EnsembleKind::Normalization(spec) => {
                h.u64(2);
                h.str(&spec.op);
                h.usize(spec.attrs.len());
                for (k, v) in &spec.attrs {
                    h.str(k);
                    h.f64(*v);
                }
                h.usize(spec.state.len());
                for (suffix, shape, shared) in &spec.state {
                    h.str(suffix);
                    h.usize(shape.len());
                    for &d in shape {
                        h.usize(d);
                    }
                    h.bool(*shared);
                }
                h.bool(spec.loss);
            }
            EnsembleKind::Data => h.u64(3),
            EnsembleKind::Concat => h.u64(4),
        }
        // Input lengths for the body probe: each connection's region
        // size at sink 0 (constant across sinks for affine mappings).
        let zero = vec![0usize; ens.dims().len()];
        let input_lens: Vec<usize> = net
            .connections(id)
            .iter()
            .map(|c| c.mapping.eval(&zero).len())
            .collect();
        if let Some(neuron) = ens.neuron() {
            h.str("N");
            h.str(neuron.name());
            h.usize(neuron.fields().len());
            let mut field_lens = std::collections::HashMap::new();
            for spec in neuron.fields() {
                h.str(&spec.name);
                let len = match spec.len {
                    crate::dsl::FieldLen::Scalar => 1,
                    crate::dsl::FieldLen::Fixed(n) => n,
                    crate::dsl::FieldLen::InputLen(c) => {
                        input_lens.get(c).copied().unwrap_or(0)
                    }
                };
                h.usize(len);
                h.bool(spec.with_grad);
                field_lens.insert(spec.name.clone(), len);
            }
            // Closures are opaque; the IR they emit is not.
            let ctx = crate::dsl::BodyCtx::new(input_lens.clone(), field_lens);
            h.str(&format!("{:?}", neuron.build_forward(&ctx)));
            h.str(&format!("{:?}", neuron.build_backward(&ctx)));
        }
        h.usize(ens.fields().len());
        for f in ens.fields() {
            h.str(&f.name);
            h.usize(f.shared_dims.len());
            for &s in &f.shared_dims {
                h.bool(s);
            }
            h.usize(f.init.shape().dims().len());
            for &d in f.init.shape().dims() {
                h.usize(d);
            }
            // Compiled programs embed parameter initializers, so the
            // exact bits are part of the identity.
            for &v in f.init.as_slice() {
                h.f32(v);
            }
            match &f.share_global {
                Some(src) => {
                    h.u64(1);
                    h.str(src);
                }
                None => h.u64(0),
            }
        }
        h.usize(ens.params().len());
        for p in ens.params() {
            h.str(&p.field);
            h.f32(p.lr_mult);
        }
        h.str("C");
        h.usize(net.connections(id).len());
        for conn in net.connections(id) {
            h.usize(conn.source.index());
            h.bool(conn.recurrent);
            for flat in sample_indices(ens.len()) {
                let idx = unflatten(flat, ens.dims());
                h.usize(flat);
                hash_region(&mut h, &conn.mapping.eval(&idx));
            }
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::stdlib::weighted_neuron;
    use crate::dsl::{Ensemble, Mapping};
    use latte_tensor::{init, Tensor};

    fn fc_net(batch: usize, seed: u64) -> Net {
        let mut net = Net::new(batch);
        let data = net.add(Ensemble::data("data", vec![8]));
        let fc = net.add(
            Ensemble::new("fc1", vec![2], weighted_neuron())
                .with_field("weights", vec![false], init::xavier(vec![2, 8], 8, seed))
                .with_field("bias", vec![false], Tensor::zeros(vec![2, 1]))
                .with_param("weights", 1.0)
                .with_param("bias", 2.0),
        );
        net.connect(data, fc, Mapping::all_to_all(vec![8]));
        net
    }

    #[test]
    fn hash_is_batch_invariant() {
        assert_eq!(structure_hash(&fc_net(1, 0)), structure_hash(&fc_net(16, 0)));
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(structure_hash(&fc_net(4, 0)), structure_hash(&fc_net(4, 0)));
    }

    #[test]
    fn hash_sees_param_values() {
        assert_ne!(structure_hash(&fc_net(4, 0)), structure_hash(&fc_net(4, 1)));
    }

    #[test]
    fn hash_sees_structure() {
        let mut other = fc_net(4, 0);
        let fc = other.find("fc1").unwrap();
        let extra = other.add(Ensemble::data("extra", vec![3]));
        let _ = (fc, extra);
        assert_ne!(structure_hash(&fc_net(4, 0)), structure_hash(&other));
    }

    #[test]
    fn session_records_and_keys() {
        let mut s = TraceSession::new(4);
        let data = s.add(Ensemble::data("data", vec![8]));
        let fc = s.add(
            Ensemble::new("fc1", vec![2], weighted_neuron())
                .with_field("weights", vec![false], init::xavier(vec![2, 8], 8, 0))
                .with_field("bias", vec![false], Tensor::zeros(vec![2, 1]))
                .with_param("weights", 1.0)
                .with_param("bias", 2.0),
        );
        s.connect(data, fc, Mapping::all_to_all(vec![8]));
        assert_eq!(s.ops(), 3);
        let trace = s.finish();
        assert_eq!(trace.key().batch, 4);
        assert_eq!(trace.key().seq_bucket, None);
        assert_eq!(trace.key().structure, structure_hash(&fc_net(4, 0)));
    }

    #[test]
    fn bucketed_sessions_key_on_the_bucket() {
        let a = TraceSession::for_bucket(2, 4).finish();
        let b = TraceSession::for_bucket(2, 8).finish();
        assert_eq!(a.key().structure, b.key().structure);
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key().label(), format!("trace-{:016x}-b2-l4", a.key().structure));
    }

    #[test]
    fn key_label_is_filesystem_safe() {
        let t = Trace::from_net(fc_net(3, 0));
        let label = t.key().label();
        assert!(label.starts_with("trace-"));
        assert!(label.ends_with("-b3"));
        assert!(label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
    }
}
