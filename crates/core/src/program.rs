//! The compiler's output: groups of optimized loop nests plus the buffer
//! plan, ready for the runtime to lower and execute.

use latte_ir::{BufferDecl, BufferKind, Stmt};
use std::fmt;

/// Which pass of network execution a group belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Forward propagation.
    Forward,
    /// Backward propagation.
    Backward,
}

/// A step-sharing annotation: this group's statements are identical to
/// the named group's under the buffer rename `@t{j}` → `@t{j + delta}`
/// (unrolled recurrent time steps are clones of one another). Lowering
/// may compile the named group once and rebind its buffers through the
/// rename instead of re-lowering each step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepShare {
    /// Name of the group whose compiled body can be reused.
    pub group: String,
    /// Time-step offset applied to every `@t{j}` buffer name when
    /// rebinding (may be negative: backward groups run latest-step
    /// first).
    pub delta: i64,
}

/// Fusion/tiling metadata of a group, derived from the connection
/// structure during synthesis.
#[derive(Debug, Clone, Default)]
pub struct GroupMeta {
    /// Extent of the group's tileable outermost dimension, when every
    /// statement in the group iterates it (spatial ensembles of rank ≥ 2
    /// whose staging keeps dimension 0).
    pub dim0_extent: Option<usize>,
    /// The producing ensemble this group consumes, with the consumption
    /// `stride` and `halo` along dimension 0 — present only when the
    /// group's ensemble has exactly one non-recurrent connection with
    /// affine dim-0 structure. `halo == 0` is the fusion precondition.
    pub upstream: Option<Upstream>,
    /// Set by the step-share pass when this group is an α-equivalent
    /// clone of an earlier unrolled time step.
    pub share_body_with: Option<StepShare>,
    /// Set by the parallelize pass when a tuned schedule decided this
    /// group runs faster serially. The loops stay `parallel`-annotated —
    /// the annotation fixes the gradient-lane accumulation structure,
    /// which must not change with the decision — and the runtime drives
    /// all lanes from the calling thread instead of broadcasting to the
    /// pool.
    pub serial_hint: bool,
}

/// Producer relation used by the fusion pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Upstream {
    /// Name of the producing ensemble.
    pub ensemble: String,
    /// Source rows of dimension 0 consumed per sink row.
    pub stride: usize,
    /// Extra source rows overlapped beyond the stride (overlapping
    /// windows); non-zero halo prevents fusion.
    pub halo: usize,
    /// Whether this group's ensemble is the *only* consumer of the
    /// producer. Backward fusion requires it: with several consumers the
    /// producer's gradient is complete only after every consumer's
    /// scatter, so no single consumer's tile may trigger the producer's
    /// backward.
    pub sole_consumer: bool,
}

/// A schedulable unit: the synthesized (and later optimized) statements of
/// one ensemble-phase, or of several fused ensembles.
#[derive(Debug, Clone)]
pub struct Group {
    /// Human-readable name, e.g. `"conv1.fwd"` or `"conv1+relu1+pool1.fwd"`.
    pub name: String,
    /// The ensemble(s) this group computes, in execution order.
    pub ensembles: Vec<String>,
    /// The phase the group runs in.
    pub phase: Phase,
    /// The statements, executed in order for each batch item.
    pub stmts: Vec<Stmt>,
    /// Fusion-preventing groups (normalization ensembles) are barriers.
    pub barrier: bool,
    /// Tiling/fusion metadata.
    pub meta: GroupMeta,
}

impl Group {
    /// Pretty-prints the group's statements.
    pub fn pretty(&self) -> String {
        format!("group {} {{\n{}}}\n", self.name, latte_ir::print_stmts(&self.stmts))
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pretty())
    }
}

/// A learnable parameter: its value and gradient buffers plus the
/// learning-rate multiplier.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamBinding {
    /// The value buffer name.
    pub value: String,
    /// The gradient buffer name.
    pub grad: String,
    /// Per-parameter learning-rate multiplier.
    pub lr_mult: f32,
}

/// An input (data) ensemble the runtime feeds each iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct InputBinding {
    /// The data ensemble's name.
    pub ensemble: String,
    /// Its value buffer.
    pub buffer: String,
    /// Per-item element count.
    pub len: usize,
}

/// Per-pass record written by the pass manager: one entry for every pass
/// in the pipeline, whether it ran or was disabled by the
/// [`OptLevel`](crate::OptLevel), so `CompileStats` is populated
/// uniformly across all configurations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStat {
    /// The pass's name, e.g. `"pattern-match"`.
    pub name: String,
    /// Whether the `OptLevel` enabled the pass (disabled passes record
    /// zero time and no size change).
    pub enabled: bool,
    /// Wall time the pass took, in microseconds.
    pub wall_micros: u128,
    /// Group count (both phases) before the pass ran.
    pub groups_before: usize,
    /// Group count (both phases) after the pass ran.
    pub groups_after: usize,
    /// Total IR statement count (both phases, nested statements included)
    /// before the pass ran.
    pub stmts_before: usize,
    /// Total IR statement count after the pass ran.
    pub stmts_after: usize,
}

impl PassStat {
    /// One-line human-readable rendering, used by reports.
    pub fn render(&self) -> String {
        if self.enabled {
            format!(
                "{:<20} {:>8} us  groups {:>3} -> {:<3} stmts {:>5} -> {:<5}",
                self.name,
                self.wall_micros,
                self.groups_before,
                self.groups_after,
                self.stmts_before,
                self.stmts_after
            )
        } else {
            format!("{:<20} (disabled)", self.name)
        }
    }
}

/// Statistics recorded by the compiler, used by tests and reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Number of multiply-accumulate nests replaced by GEMM calls.
    pub gemms_matched: usize,
    /// Number of groups whose outer loop was tiled.
    pub groups_tiled: usize,
    /// Number of fusions performed (each merges two groups).
    pub fusions: usize,
    /// Number of buffers that alias other storage (dropped copies /
    /// in-place activations / shared inputs).
    pub aliased_buffers: usize,
    /// Number of staging buffer dimensions dropped by shared-variable
    /// analysis.
    pub dims_dropped: usize,
    /// Per-pass timing and IR-size deltas, in pipeline order. One entry
    /// per pass regardless of `OptLevel`, so every compile populates the
    /// same rows.
    pub passes: Vec<PassStat>,
    /// Every group's batch-parallel decision, `(group name, parallel)`,
    /// forward groups first then backward — whether the parallel-marking
    /// pass annotated the group's loops for the worker pool's static
    /// interleaved schedule. Makes bench output self-describing.
    pub group_parallel: Vec<(String, bool)>,
    /// Groups whose schedule runs batch-parallel (the `true` entries of
    /// [`CompileStats::group_parallel`]). Together with
    /// [`CompileStats::groups_serial`] this summarizes the per-group
    /// serial/parallel decisions a tuned schedule made.
    pub groups_parallel: usize,
    /// Groups left serial — no loop marked parallel, executed on the
    /// calling thread.
    pub groups_serial: usize,
    /// Unrolled time-step groups marked α-equivalent to an earlier step
    /// by the step-share pass (lowering reuses one compiled body for
    /// each).
    pub step_groups_shared: usize,
    /// IR statements in shared step groups — the duplicate-IR delta the
    /// lowering no longer has to re-compile.
    pub step_stmts_deduped: usize,
}

/// A compiled network: the runtime's entire input.
#[derive(Debug, Clone)]
pub struct CompiledNet {
    /// Batch size the program was compiled for.
    pub batch: usize,
    /// Every buffer, allocation order = declaration order (aliases after
    /// their targets).
    pub buffers: Vec<BufferDecl>,
    /// Forward groups in execution order.
    pub forward: Vec<Group>,
    /// Backward groups in execution order.
    pub backward: Vec<Group>,
    /// Learnable parameters.
    pub params: Vec<ParamBinding>,
    /// Data ensembles to feed.
    pub inputs: Vec<InputBinding>,
    /// Loss buffers (per-item loss values) to report.
    pub losses: Vec<String>,
    /// Initial contents of every field buffer, `(buffer name, values)`.
    /// The runtime writes these once at executor construction and on
    /// `reset_params`.
    pub param_inits: Vec<(String, Vec<f32>)>,
    /// Whether the runtime may lower unit-stride inner loops to native
    /// slice kernels (the compiler's `vectorize` flag).
    pub vectorize: bool,
    /// Compiler statistics.
    pub stats: CompileStats,
}

impl CompiledNet {
    /// Looks up a buffer declaration by name.
    pub fn buffer(&self, name: &str) -> Option<&BufferDecl> {
        self.buffers.iter().find(|b| b.name == name)
    }

    /// The buffers a numerical sentinel should scan: every primary
    /// (non-alias) declaration with its kind. Aliases share storage with
    /// their target, so scanning them too would report the same trip
    /// twice under two names.
    pub fn sentinel_buffers(&self) -> impl Iterator<Item = (&str, BufferKind)> {
        self.buffers
            .iter()
            .filter(|b| b.alias_of.is_none())
            .map(|b| (b.name.as_str(), b.kind))
    }

    /// A stable identity hash of the compiled *model*: buffer plan
    /// (names, per-item shapes, kinds, aliases), parameter and input
    /// bindings, loss buffers, initial parameter values, the vectorize
    /// flag, and the full pretty-printed program of both phases.
    ///
    /// The batch size is deliberately **excluded**: per-item structure is
    /// batch-invariant, so two compiles of the same network at different
    /// batch sizes fingerprint identically. Plan caches key on
    /// `(fingerprint(), batch)` — the LazyTensor-style split that lets an
    /// odd-sized tail batch reuse a cached `ExecutionPlan` instead of
    /// recompiling (see `latte-serve`). `CompileStats` is excluded too:
    /// it carries wall-clock pass timings, not program identity.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a, 64-bit: dependency-free and stable across platforms.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        for b in &self.buffers {
            eat(b.name.as_bytes());
            eat(format!(";{:?};{:?};{:?}|", b.shape.dims(), b.kind, b.alias_of).as_bytes());
        }
        for p in &self.params {
            eat(p.value.as_bytes());
            eat(p.grad.as_bytes());
            eat(&p.lr_mult.to_bits().to_le_bytes());
        }
        for i in &self.inputs {
            eat(i.ensemble.as_bytes());
            eat(i.buffer.as_bytes());
        }
        for l in &self.losses {
            eat(l.as_bytes());
        }
        for (name, init) in &self.param_inits {
            eat(name.as_bytes());
            for v in init {
                eat(&v.to_bits().to_le_bytes());
            }
        }
        eat(&[u8::from(self.vectorize)]);
        eat(self.pretty().as_bytes());
        h
    }

    /// Pretty-prints the whole program (both phases), mainly for tests
    /// and debugging.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        s.push_str("== forward ==\n");
        for g in &self.forward {
            s.push_str(&g.pretty());
        }
        s.push_str("== backward ==\n");
        for g in &self.backward {
            s.push_str(&g.pretty());
        }
        s
    }
}
