//! Tuned schedules: measured overrides for the compiler's fixed
//! scheduling heuristics.
//!
//! The standard pipeline schedules every network with constants — the
//! `PREFERRED_TILES` ladder, unconditional parallel marking, the GEMM
//! engine's default `(kc, nc, mc)` blocking. A [`TunedSchedule`] carries
//! the *measured* alternatives an autotuner found faster on a concrete
//! `(shapes, thread count, CPU features)` point, and threads them through
//! the same passes: [`compile_tuned`](crate::compile_tuned) hands the
//! schedule to the [`PassManager`](crate::PassManager) via
//! [`PassContext::tuned`](crate::PassContext), where the tiling/fusion
//! passes honour [`TunedSchedule::tile_size`] and the parallelize pass
//! consults [`TunedSchedule::decide_parallel`] per group.
//!
//! Every choice expressible here is **bit-preserving** by construction:
//! tile sizes restructure loops without reassociating any reduction,
//! per-group serial/parallel decisions ride on the fixed-lane runtime
//! schedule (bit-identical at every thread count), and the GEMM blocking
//! search space pins `kc` — the reduction block, the one knob that *does*
//! change floating-point association — to the default. Tuning may change
//! speed, never bits; the oracle differential tests hold the compiler to
//! that.

use std::collections::BTreeMap;

/// A measured schedule override, produced by an autotuner (see
/// `latte_runtime::tune`) or written by hand.
///
/// `Default` is the identity schedule: no tile override, no blocking
/// override, every group parallel — compiling with it is equivalent to
/// compiling without a schedule at all.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedSchedule {
    /// Tile-size override for the tiling and fusion passes. Wins over
    /// [`OptLevel::tile_size`](crate::OptLevel) when set; the usual
    /// divisibility rules still apply (an override that does not divide a
    /// group's extent falls back to the preferred ladder for that group).
    pub tile_size: Option<usize>,
    /// `(kc, nc, mc)` GEMM engine blocking the runtime should configure
    /// its worker pool with. Carried here so one cache entry describes
    /// the whole schedule; the compiler passes do not consume it.
    pub gemm_blocking: Option<(usize, usize, usize)>,
    /// Parallel decision for groups not named in
    /// [`TunedSchedule::group_parallel`]. `true` (the default) preserves
    /// the untuned pipeline's behaviour of marking every tiled,
    /// non-barrier group parallel.
    pub parallel_default: bool,
    /// Per-group serial/parallel decisions, keyed by the group's
    /// post-fusion name (e.g. `"conv1+relu1.fwd"`). Groups measured
    /// faster serial map to `false` and are left unmarked, so the runtime
    /// executes them on the calling thread.
    pub group_parallel: BTreeMap<String, bool>,
}

impl Default for TunedSchedule {
    fn default() -> Self {
        TunedSchedule {
            tile_size: None,
            gemm_blocking: None,
            parallel_default: true,
            group_parallel: BTreeMap::new(),
        }
    }
}

impl TunedSchedule {
    /// A schedule that forces every group serial — the autotuner's
    /// all-serial measurement candidate, and the right schedule for hosts
    /// where fan-out never pays (single-core containers).
    pub fn all_serial() -> Self {
        TunedSchedule {
            parallel_default: false,
            ..TunedSchedule::default()
        }
    }

    /// The parallel decision for `group`: its explicit entry, or
    /// [`TunedSchedule::parallel_default`] when unnamed.
    pub fn decide_parallel(&self, group: &str) -> bool {
        self.group_parallel.get(group).copied().unwrap_or(self.parallel_default)
    }

    /// The tile size the scheduling passes should request: this
    /// schedule's override, else the opt level's.
    pub fn effective_tile(&self, opt_tile: Option<usize>) -> Option<usize> {
        self.tile_size.or(opt_tile)
    }

    /// Whether this schedule changes anything over the identity schedule.
    pub fn is_identity(&self) -> bool {
        self.tile_size.is_none()
            && self.gemm_blocking.is_none()
            && self.parallel_default
            && self.group_parallel.values().all(|&p| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_identity() {
        let s = TunedSchedule::default();
        assert!(s.is_identity());
        assert!(s.decide_parallel("anything.fwd"));
        assert_eq!(s.effective_tile(Some(4)), Some(4));
    }

    #[test]
    fn overrides_win() {
        let mut s = TunedSchedule {
            tile_size: Some(8),
            ..TunedSchedule::default()
        };
        s.group_parallel.insert("conv1.fwd".into(), false);
        assert!(!s.is_identity());
        assert_eq!(s.effective_tile(Some(4)), Some(8));
        assert!(!s.decide_parallel("conv1.fwd"));
        assert!(s.decide_parallel("conv2.fwd"));
        assert!(!TunedSchedule::all_serial().decide_parallel("conv2.fwd"));
    }
}
