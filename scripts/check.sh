#!/usr/bin/env bash
# The full local gate, mirroring .github/workflows/ci.yml.
# All dependencies are vendored; the build never touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1, includes fault-injection end-to-end)"
cargo test -q

echo "==> cargo test -p latte-serve -q (serving: batching identity, flush, crash supervision)"
cargo test -p latte-serve -q

echo "==> cargo test -p latte-oracle -q (compiler-correctness oracle, fast subset)"
cargo test -p latte-oracle -q

echo "==> golden-IR snapshots (regenerate with UPDATE_GOLDEN=1 cargo test --test golden_ir)"
cargo test --test golden_ir -q
git diff --exit-code -- tests/golden/ || {
  echo "tests/golden/ has uncommitted changes" >&2
  exit 1
}

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace -q with LATTE_THREADS=4 (persistent worker pool)"
LATTE_THREADS=4 cargo test --workspace -q

echo "==> distributed training over loopback TCP (4 real processes)"
cargo test --release --test distributed -q

echo "==> serving over loopback TCP (framed protocol, adversaries, SIGTERM drain; incl. chaos soak)"
LATTE_FAULT_SWEEP=1 cargo test --release -p latte-serve --test net_loopback -q

echo "==> autotuner smoke (cold tune -> warm replay with zero re-measurements, corrupt-cache rejection)"
cargo test --release -p latte-runtime --test tune_smoke -q
cargo test --release -p latte-oracle --test tuned -q

echo "==> throughput bench smoke + artifact schema validation (incl. checked-in artifact)"
cargo run --release --quiet -p latte-bench --bin throughput -- --smoke --out target/BENCH_smoke.json
cargo run --release --quiet -p latte-bench --bin throughput -- --validate target/BENCH_smoke.json
cargo run --release --quiet -p latte-bench --bin throughput -- --validate BENCH_throughput.json

echo "==> cluster bench smoke + artifact schema validation"
cargo run --release --quiet -p latte-bench --bin cluster -- --smoke --out target/BENCH_cluster_smoke.json
cargo run --release --quiet -p latte-bench --bin cluster -- --validate target/BENCH_cluster_smoke.json

echo "==> serving bench smoke + artifact schema validation (incl. checked-in artifact)"
cargo run --release --quiet -p latte-bench --bin serving -- --smoke --out target/BENCH_serving_smoke.json
cargo run --release --quiet -p latte-bench --bin serving -- --validate target/BENCH_serving_smoke.json
cargo run --release --quiet -p latte-bench --bin serving -- --validate BENCH_serving.json

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> examples smoke run (release)"
for ex in examples/*.rs; do
  name="$(basename "$ex" .rs)"
  echo "   -> $name"
  cargo run --release --quiet --example "$name" >/dev/null
done

echo "All checks passed."
