//! # latte
//!
//! Facade crate for the Latte workspace — a Rust reproduction of
//! *"Latte: A Language, Compiler, and Runtime for Elegant and Efficient
//! Deep Neural Networks"* (Truong et al., PLDI 2016).
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single crate. See the individual crates
//! for the full API:
//!
//! * [`tensor`] — dense tensors, GEMM, convolution primitives.
//! * [`ir`] — the compiler's expression and loop-nest IR.
//! * [`core`] — the DSL (neurons, ensembles, connections) and compiler.
//! * [`runtime`] — executor, solvers, accelerator & cluster simulators.
//! * [`nn`] — the standard library of layers and model zoo.
//! * [`baselines`] — Caffe-style and Mocha-style reference stacks.

pub use latte_baselines as baselines;
pub use latte_core as core;
pub use latte_ir as ir;
pub use latte_nn as nn;
pub use latte_runtime as runtime;
pub use latte_tensor as tensor;
