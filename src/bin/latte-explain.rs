//! `latte-explain`: a compiler explorer for the Latte pipeline.
//!
//! Prints the synthesized program of a model at successive optimization
//! levels so the effect of each pass is visible — the textual analogue of
//! the paper's Figures 9, 10, and 12.
//!
//! ```text
//! cargo run --release --bin latte-explain -- [convblock|mlp|lenet|lstm] [--diff-only]
//! ```

use latte::core::dsl::Net;
use latte::core::{compile, OptLevel};
use latte::nn::layers::{convolution, data, fully_connected, max_pool, relu, softmax_loss, ConvSpec};
use latte::nn::models::{lenet, mlp, ModelConfig};

fn convblock() -> Net {
    let mut net = Net::new(2);
    let d = data(&mut net, "data", vec![8, 8, 3]);
    let c = convolution(&mut net, "conv1", d, ConvSpec::same(4, 3), 1);
    let r = relu(&mut net, "relu1", c);
    max_pool(&mut net, "pool1", r, 2, 2);
    net
}

fn mlp_net() -> Net {
    let cfg = ModelConfig {
        batch: 2,
        input_size: 8,
        channel_div: 1,
        classes: 3,
        with_loss: true,
        seed: 1,
    };
    mlp(&cfg, &[6]).net
}

fn lenet_net() -> Net {
    let cfg = ModelConfig {
        batch: 2,
        input_size: 12,
        channel_div: 16,
        classes: 4,
        with_loss: true,
        seed: 1,
    };
    lenet(&cfg).net
}

fn lstm_net() -> Net {
    let mut step = Net::new(2);
    let x = step.add(latte::core::dsl::Ensemble::data("x", vec![4]));
    latte::nn::rnn::lstm(&mut step, "lstm", x, 3, 1);
    let mut net = step.unroll(2);
    let last = net.find("lstm_h@t1").expect("unrolled output");
    let head = fully_connected(&mut net, "head", last, 2, 5);
    let label = data(&mut net, "label", vec![1]);
    softmax_loss(&mut net, "loss", head, label);
    net
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("convblock");
    let net = match which {
        "convblock" => convblock(),
        "mlp" => mlp_net(),
        "lenet" => lenet_net(),
        "lstm" => lstm_net(),
        other => {
            eprintln!("unknown model `{other}`; use convblock|mlp|lenet|lstm");
            std::process::exit(2);
        }
    };
    let stages: Vec<(&str, OptLevel)> = vec![
        ("synthesized (analysis only)", OptLevel::none()),
        (
            "+ GEMM pattern matching",
            OptLevel::none().with_pattern_match(true),
        ),
        (
            "+ tiling",
            OptLevel::none().with_pattern_match(true).with_tiling(true),
        ),
        (
            "+ cross-layer fusion",
            OptLevel::none()
                .with_pattern_match(true)
                .with_tiling(true)
                .with_fusion(true),
        ),
        ("+ parallel annotations (full)", OptLevel::full()),
    ];
    for (name, opt) in stages {
        let compiled = match compile(&net, &opt) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("compile failed at `{name}`: {e}");
                std::process::exit(1);
            }
        };
        println!("================================================================");
        println!(
            "== {name}   [gemms {}, tiled {}, fusions {}, aliased {}, dims dropped {}]",
            compiled.stats.gemms_matched,
            compiled.stats.groups_tiled,
            compiled.stats.fusions,
            compiled.stats.aliased_buffers,
            compiled.stats.dims_dropped
        );
        println!("================================================================");
        print!("{}", compiled.pretty());
    }
}
