//! `latte-worker`: one rank of a real multi-process data-parallel ring.
//!
//! Every rank builds the same deterministic MLP (so the transport
//! handshake's net fingerprint matches), rendezvouses with its peers
//! over TCP, and trains with layer-by-layer overlapped ring all-reduce.
//! Ranks shard data deterministically by `(step, rank)`, so a
//! synchronized run produces bit-identical parameters on every rank —
//! the final `param_crc` below is the proof.
//!
//! ```text
//! latte-worker --rank R --addrs 127.0.0.1:7101,127.0.0.1:7102,... \
//!              [--steps N] [--die-at-step S] [--op-timeout-ms T] [--seed S]
//! ```
//!
//! `--die-at-step S` makes the process exit abruptly before step `S`
//! (a real `ProcessDeath` fault): survivors time the rank out, evict
//! it, heal the ring, and finish in the lossy degraded mode.
//!
//! The last stdout line is machine-parseable for the integration tests
//! and CI:
//!
//! ```text
//! LATTE_WORKER_RESULT rank=0 steps=4 param_crc=1a2b3c4d mode=sync \
//!     live=4 peers_evicted=0 lossy_steps=0
//! ```

use std::process::exit;
use std::time::Duration;

use latte::core::{compile, OptLevel};
use latte::nn::models::{mlp, ModelConfig};
use latte::runtime::checkpoint::crc32;
use latte::runtime::cluster::SyncMode;
use latte::runtime::dist::{net_fingerprint, DistTrainer};
use latte::runtime::ring::CommPolicy;
use latte::runtime::solver::{LrPolicy, MomPolicy, Sgd, Solver, SolverParams};
use latte::runtime::transport::{tcp_rendezvous, TcpConfig};
use latte::runtime::Executor;

struct Args {
    rank: usize,
    addrs: Vec<String>,
    steps: u32,
    die_at_step: Option<u32>,
    op_timeout_ms: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut rank = None;
    let mut addrs = Vec::new();
    let mut steps = 4u32;
    let mut die_at_step = None;
    let mut op_timeout_ms = 2_000u64;
    let mut seed = 7u64;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--rank" => {
                rank = Some(
                    value(&mut i, "--rank")?
                        .parse()
                        .map_err(|e| format!("--rank: {e}"))?,
                );
            }
            "--addrs" => {
                addrs = value(&mut i, "--addrs")?
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--steps" => {
                steps = value(&mut i, "--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?;
            }
            "--die-at-step" => {
                die_at_step = Some(
                    value(&mut i, "--die-at-step")?
                        .parse()
                        .map_err(|e| format!("--die-at-step: {e}"))?,
                );
            }
            "--op-timeout-ms" => {
                op_timeout_ms = value(&mut i, "--op-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--op-timeout-ms: {e}"))?;
            }
            "--seed" => {
                seed = value(&mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    let rank = rank.ok_or("--rank is required")?;
    if addrs.is_empty() {
        return Err("--addrs is required (comma-separated host:port per rank)".into());
    }
    if rank >= addrs.len() {
        return Err(format!("--rank {rank} out of range for {} addrs", addrs.len()));
    }
    Ok(Args {
        rank,
        addrs,
        steps,
        die_at_step,
        op_timeout_ms,
        seed,
    })
}

const BATCH: usize = 4;
const INPUT: usize = 6;
const CLASSES: usize = 3;

fn build_executor(seed: u64) -> Executor {
    let cfg = ModelConfig {
        batch: BATCH,
        input_size: INPUT,
        channel_div: 1,
        classes: CLASSES,
        with_loss: true,
        seed,
    };
    Executor::new(compile(&mlp(&cfg, &[8]).net, &OptLevel::full()).expect("compile"))
        .expect("executor")
}

/// The shard rank `rank` consumes at `step`: a deterministic function of
/// `(seed, step, rank)`, identical across processes, so the serial
/// oracle can reproduce it.
fn shard(seed: u64, step: u32, rank: usize) -> Vec<(String, Vec<f32>)> {
    let mut inputs = Vec::with_capacity(BATCH * INPUT);
    let mut labels = Vec::with_capacity(BATCH);
    for item in 0..BATCH {
        let g = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((step as u64) << 24)
            .wrapping_add((rank as u64) << 12)
            .wrapping_add(item as u64);
        let class = (g % CLASSES as u64) as usize;
        for j in 0..INPUT {
            let base = if j % CLASSES == class { 1.0 } else { 0.1 };
            inputs.push(base + ((g >> 8).wrapping_add(j as u64) % 7) as f32 * 0.01);
        }
        labels.push(class as f32);
    }
    vec![("data".into(), inputs), ("label".into(), labels)]
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("latte-worker: {e}");
            exit(2);
        }
    };

    let exec = build_executor(args.seed);
    let fingerprint = net_fingerprint(&exec);
    let mut cfg = TcpConfig::new(args.rank, args.addrs.clone(), fingerprint);
    cfg.rendezvous_timeout = Duration::from_secs(20);
    let transport = match tcp_rendezvous(cfg) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("latte-worker rank {}: rendezvous failed: {e}", args.rank);
            exit(1);
        }
    };

    let policy = CommPolicy {
        op_timeout_ms: args.op_timeout_ms,
        ..CommPolicy::default()
    };
    let mut trainer = match DistTrainer::new(exec, Box::new(transport), policy) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("latte-worker rank {}: {e}", args.rank);
            exit(1);
        }
    };

    let mut solver = Sgd::new(SolverParams {
        lr_policy: LrPolicy::Fixed { lr: 0.05 },
        mom_policy: MomPolicy::Fixed { mom: 0.9 },
        regu_coef: 0.0,
        max_epoch: 1,
    });

    let mut done = 0u32;
    for step in 0..args.steps {
        if args.die_at_step == Some(step) {
            // A real process death: no goodbye, no flush — survivors
            // must detect the silence, evict this rank, and heal.
            eprintln!("latte-worker rank {}: dying at step {step}", args.rank);
            exit(3);
        }
        let batch = shard(args.seed, step, trainer.rank());
        match trainer.step(&batch, &mut |e| solver.step(e)) {
            Ok(report) => {
                done += 1;
                eprintln!(
                    "latte-worker rank {}: step {step} loss={:.5} mode={:?} live={} comm_ms={:.2} exposed_ms={:.2}",
                    args.rank, report.loss, report.mode, report.live, report.comm_ms, report.exposed_ms
                );
            }
            Err(e) => {
                eprintln!("latte-worker rank {}: step {step} failed: {e}", args.rank);
                exit(1);
            }
        }
    }

    let mut bytes = Vec::new();
    let names: Vec<String> = trainer
        .exec()
        .params()
        .iter()
        .map(|p| p.value.clone())
        .collect();
    for name in names {
        for v in trainer.exec().read_buffer(&name).expect("param readable") {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    let param_crc = crc32(&bytes);
    let snap = trainer.metrics().snapshot();
    let mode = match trainer.mode() {
        SyncMode::Synchronized => "sync",
        SyncMode::LossyDegraded => "lossy",
    };
    println!(
        "LATTE_WORKER_RESULT rank={} steps={} param_crc={:08x} mode={} live={} peers_evicted={} lossy_steps={}",
        trainer.rank(),
        done,
        param_crc,
        mode,
        trainer.live(),
        snap.peers_evicted,
        snap.lossy_steps,
    );
}
